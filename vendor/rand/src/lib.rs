//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line) providing exactly the surface the OPERA workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()` and `gen_range(..)`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a deterministic xoshiro256** generator.
//!
//! The build environment for this repository has no access to a crate
//! registry, so the workspace vendors the few hundred lines it needs instead
//! of depending on crates.io. The generator is *not* the same stream as the
//! real `StdRng` (which is ChaCha12); all uses in this workspace only rely on
//! seed-determinism, not on a specific stream.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number-generator interface: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the subset of
/// `rand`'s `Standard` distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire); the span is tiny compared
                // to 2^64 in every use in this workspace, so a single draw
                // with rejection on the short window is plenty.
                let zone = u64::MAX - u64::MAX % span;
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == hi {
                    return lo;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Seed-determinism (same seed → same stream, different seed →
    /// different stream) is the only property the workspace relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let x = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let through_ref = draw(&mut rng);
        assert!((0.0..1.0).contains(&through_ref));
    }
}
