//! Offline, API-compatible subset of the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate, providing the surface the OPERA workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//!   [`strategy::Just`], numeric-range and tuple strategies, and
//!   [`collection::vec`].
//!
//! The build environment has no crate-registry access, so the workspace
//! vendors this minimal implementation. Unlike real proptest there is no
//! shrinking: a failing case reports the case number and the per-test seed,
//! which is deterministic, so failures are reproducible by re-running the
//! test. Generation quality (uniform draws from the declared ranges) is
//! equivalent for the property tests in this repository.

#![deny(missing_docs)]

pub use rand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected ([`prop_assume!`]) cases tolerated before
    /// the test aborts.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by a [`prop_assume!`] precondition.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test seed derived from the test's path (FNV-1a).
pub fn seed_for_test(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The case-running loop behind the [`proptest!`] macro.
///
/// `run_one` generates inputs from the provided RNG and runs the body,
/// returning `Err(Reject)` to skip a case and `Err(Fail)` to fail the test.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) when a case fails or when too
/// many cases are rejected.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut run_one: impl FnMut(&mut StdRng) -> TestCaseResult,
) {
    let seed = seed_for_test(test_name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case_index: u64 = 0;
    while passed < config.cases {
        case_index += 1;
        match run_one(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passing cases, seed {seed:#x})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: property failed at case {case_index} (seed {seed:#x}): {msg}")
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// A source of generated values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe generation, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut StdRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies ([`prop_oneof!`]).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds the union; `options` must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Length specification for [`vec()`]: an exact length or a `[lo, hi)`
    /// range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` is expected to provide.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config = $config;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    |rng| {
                        $(let $arg = ($strat).generate(rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)*),
                left,
                right
            )));
        }
    }};
}

/// Skips the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_values_respect_ranges(x in 0.5f64..2.0, n in 3usize..9) {
            prop_assert!((0.5..2.0).contains(&x), "x out of range: {x}");
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_strategy_honours_size_and_element_ranges(
            v in collection::vec(-1.0f64..1.0, 2..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
            for x in &v {
                prop_assert!((-1.0..1.0).contains(x));
            }
        }

        #[test]
        fn flat_map_threads_dependent_sizes(
            (n, v) in (2usize..6).prop_flat_map(|n| (Just(n), collection::vec(0usize..10, n))),
        ) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn oneof_only_yields_listed_options(s in prop_oneof![Just(-1.0f64), Just(1.0f64)]) {
            prop_assert!(s == -1.0 || s == 1.0);
        }

        #[test]
        fn assume_rejections_are_skipped(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn per_test_seeds_are_stable() {
        assert_eq!(
            crate::seed_for_test("demo::case"),
            crate::seed_for_test("demo::case")
        );
        assert_ne!(
            crate::seed_for_test("demo::case"),
            crate::seed_for_test("demo::other")
        );
    }
}
