//! Offline, API-compatible subset of the [`rayon`](https://crates.io/crates/rayon)
//! data-parallelism crate, providing the surface the OPERA workspace uses:
//!
//! * `prelude::*` with [`IntoParallelIterator`] and [`ParallelIterator`]
//!   (`into_par_iter().map(..).collect()`, `for_each`, `sum`),
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] to bound the worker
//!   count (the `Parallelism` knob threads through this),
//! * [`current_num_threads`].
//!
//! The build environment has no crate-registry access, so the workspace
//! vendors this minimal implementation. Unlike real rayon there is no
//! work-stealing pool: each parallel call splits its items into contiguous
//! chunks and runs them on `std::thread::scope` threads. For the coarse
//! per-sample / per-coefficient work OPERA parallelizes (each item is a full
//! transient solve, i.e. milliseconds to seconds), chunked scoped threads
//! capture essentially all of the available speedup.

#![deny(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Worker budget installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls on this thread will use.
///
/// This is the installed pool size if inside [`ThreadPool::install`],
/// otherwise the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error building a thread pool (kept for API compatibility; the shim's
/// builder cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a bounded worker count.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Bounds the number of worker threads (`0` means "use all cores", as in
    /// real rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }),
        })
    }
}

/// A bounded-width scope for parallel calls.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op`; parallel iterator calls made inside it use at most this
    /// pool's worker count. The previous width is restored even if `op`
    /// panics.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.num_threads)));
        let _guard = RestoreWidth(prev);
        op()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Restores the caller's installed width on drop (unwind-safe).
struct RestoreWidth(Option<usize>);

impl Drop for RestoreWidth {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|t| t.set(self.0));
    }
}

/// Runs `f` over the items on up to [`current_num_threads`] scoped threads,
/// preserving item order in the output. Worker threads run with an installed
/// width of 1, so parallel calls nested inside `f` stay bounded instead of
/// fanning out to full machine width.
fn run_chunked<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let mut results: Vec<Vec<R>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    INSTALLED_THREADS.with(|t| t.set(Some(1)));
                    chunk.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// A materialized parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced by the iterator.
    type Item: Send;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<&'a T>;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel slice shorthand (`slice.par_iter()`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over references to the elements.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        self.into_par_iter()
    }
}

/// The parallel iterator interface (map/collect/for_each/sum subset).
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Consumes the iterator into its items (implementation hook).
    fn into_items(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> MapIter<Self::Item, F> {
        MapIter {
            items: self.into_items(),
            f,
        }
    }

    /// Runs `f` on each item in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        run_chunked(self.into_items(), &|item| f(item));
    }

    /// Collects the items, preserving order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter_vec(self.into_items())
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.into_items().into_iter().sum()
    }

    /// Reduces with `op` starting from `identity` (sequential fold over the
    /// parallel-computed items; associative `op` gives rayon-equivalent
    /// results).
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        self.into_items().into_iter().fold(identity(), op)
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator; the map runs on worker threads when the chain
/// is consumed.
pub struct MapIter<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for MapIter<T, F> {
    type Item = R;
    fn into_items(self) -> Vec<R> {
        run_chunked(self.items, &self.f)
    }
}

/// Collection types a parallel iterator can collect into.
pub trait FromParallelIterator<T> {
    /// Builds the collection from the ordered item vector.
    fn from_par_iter_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let ok: Result<Vec<usize>, String> = (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn install_bounds_and_restores_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 2);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn install_restores_width_after_a_panic() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = current_num_threads();
        let caught = std::panic::catch_unwind(|| pool.install(|| panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_num_threads(), before);
    }

    #[test]
    fn nested_parallelism_is_bounded_on_worker_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let widths: Vec<usize> = pool.install(|| {
            (0..4usize)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        for w in widths {
            assert_eq!(w, 1, "worker threads must not fan out to machine width");
        }
    }

    #[test]
    fn parallel_results_match_serial_for_fixed_input() {
        let serial: Vec<f64> = (0..257usize).map(|i| (i as f64).sqrt()).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let parallel: Vec<f64> = pool.install(|| {
            (0..257usize)
                .into_par_iter()
                .map(|i| (i as f64).sqrt())
                .collect()
        });
        assert_eq!(serial, parallel);
    }
}
