//! Workspace umbrella crate for the OPERA reproduction.
//!
//! This crate exists so that the repository-level `examples/` and `tests/`
//! directories have a package to attach to. The actual functionality lives in
//! the member crates:
//!
//! * [`opera_sparse`] — sparse linear algebra substrate
//! * [`opera_pce`] — orthogonal polynomial (polynomial chaos) machinery
//! * [`opera_grid`] — RC power-grid modelling and synthetic grid generation
//! * [`opera_netlist`] — SPICE-style deck front end (parse/lower/export)
//! * [`opera_variation`] — process-variation models
//! * [`opera_collocation`] — the stochastic-collocation driver (Smolyak
//!   sweeps of deterministic solves sharing one symbolic analysis)
//! * [`opera`] — the OPERA engine (Galerkin stochastic solver), the
//!   collocation cross-check and the Monte Carlo baseline
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system inventory.

pub use opera;
pub use opera_collocation;
pub use opera_grid;
pub use opera_netlist;
pub use opera_pce;
pub use opera_sparse;
pub use opera_variation;
