//! Self-tests for opera-lint: the seeded-violation fixtures must produce
//! exactly the expected findings, the malformed-directive fixture must be
//! a tool error, the real workspace must be clean, and the `--json` output
//! must round-trip through the workspace's own JSON parser.

use std::path::{Path, PathBuf};

use opera_lint::check;
use opera_lint::report::Report;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn count(report: &Report, lint: &str) -> usize {
    report.findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn seeded_violations_are_found_exactly() {
    let r = check(&fixture("violations"));

    // L001: two un-allowed panic sites in `panics_twice`; the string and
    // comment mentions, the `#[cfg(test)]` unwrap and the allowed site
    // must not count.
    assert_eq!(count(&r, "L001"), 2, "findings: {:#?}", r.findings);
    // L002: `Vec::new` + `.clone()` + the non-counter `opera_trace::span`
    // call inside the declared hot region; the `vec![…]` in `cold_alloc`
    // is outside and the `opera_trace::count` increment is the permitted
    // allocation-free fast path, so neither counts.
    assert_eq!(count(&r, "L002"), 3, "findings: {:#?}", r.findings);
    // L003: `ghost_symbol()`, `missing/file.rs`, `FIXTURE_MISSING_ENV`.
    assert_eq!(count(&r, "L003"), 3, "findings: {:#?}", r.findings);
    // L004: one par_iter→sum reduction + one HashMap use; the BTreeMap
    // alternative must not count.
    assert_eq!(count(&r, "L004"), 2, "findings: {:#?}", r.findings);
    // L005: the attribute-gated kernel without a comment and the bare
    // unsafe block; the SAFETY-commented sites (block above, through an
    // attribute, trailing) and the `#[cfg(test)]` use must not count.
    assert_eq!(count(&r, "L005"), 2, "findings: {:#?}", r.findings);

    assert_eq!(r.findings.len(), 12);
    assert_eq!(r.allows.len(), 1, "allows: {:#?}", r.allows);
    assert_eq!(r.unused_allows.len(), 1, "unused: {:#?}", r.unused_allows);
    assert!(r.errors.is_empty(), "errors: {:#?}", r.errors);
    assert_eq!(r.exit_code(), 1);

    // Findings are sorted by (path, line, lint) so reports are stable.
    let keys: Vec<_> = r
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.lint))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn malformed_directives_are_tool_errors() {
    let r = check(&fixture("malformed"));
    // Allow without a reason, unknown lint code, unknown directive verb.
    assert_eq!(r.errors.len(), 3, "errors: {:#?}", r.errors);
    assert!(r.findings.is_empty(), "findings: {:#?}", r.findings);
    assert_eq!(r.exit_code(), 2);
}

#[test]
fn real_workspace_is_clean() {
    // The contract the CI job enforces, asserted from the test suite too:
    // zero findings, zero stale allows, zero tool errors on the repo.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let r = check(&root);
    assert!(r.findings.is_empty(), "findings: {:#?}", r.findings);
    assert!(r.unused_allows.is_empty(), "stale: {:#?}", r.unused_allows);
    assert!(r.errors.is_empty(), "errors: {:#?}", r.errors);
    assert_eq!(r.exit_code(), 0);
    assert!(r.files_scanned > 50, "scanned {} files", r.files_scanned);
    assert!(!r.allows.is_empty(), "expected documented allow sites");
}

#[test]
fn json_report_round_trips_through_opera_bench_parser() {
    let r = check(&fixture("violations"));
    let json = r.to_json();
    let doc = opera_bench::json::parse(&json).expect("valid JSON");

    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("opera-lint/v1")
    );
    let findings = doc
        .get("findings")
        .and_then(|v| v.as_arr())
        .expect("findings array");
    assert_eq!(findings.len(), r.findings.len());
    for (j, f) in findings.iter().zip(&r.findings) {
        assert_eq!(j.get("lint").and_then(|v| v.as_str()), Some(f.lint));
        assert_eq!(
            j.get("path").and_then(|v| v.as_str()),
            Some(f.path.as_str())
        );
        assert_eq!(j.get("line").and_then(|v| v.as_num()), Some(f.line as f64));
        assert_eq!(
            j.get("message").and_then(|v| v.as_str()),
            Some(f.message.as_str())
        );
    }
    let summary = doc.get("summary").expect("summary object");
    assert_eq!(
        summary.get("findings").and_then(|v| v.as_num()),
        Some(r.findings.len() as f64)
    );
    assert_eq!(
        summary.get("exit_code").and_then(|v| v.as_num()),
        Some(f64::from(r.exit_code()))
    );
}
