//! Seeded L005 violations: every `unsafe` token in non-test code must be
//! justified by a `SAFETY:` comment on the same line or in the comment
//! block immediately above (attributes in between are skipped).

// SAFETY: fixture — the justified site must NOT be flagged.
pub unsafe fn justified_kernel() {}

// SAFETY: fixture — the comment block reaches through the attribute.
#[target_feature(enable = "avx2")]
pub unsafe fn justified_through_attribute() {}

#[target_feature(enable = "avx2")]
pub unsafe fn missing_justification() {}

pub fn call_site() {
    // a comment that does not contain the magic word
    let _p = unsafe { fixture_deref() };
    let _q = unsafe { fixture_deref() }; // SAFETY: fixture — trailing form.
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_unsafe_freely() {
        let _ = unsafe { super::fixture_deref() };
    }
}
