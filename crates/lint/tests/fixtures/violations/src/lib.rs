//! Seeded-violation fixture for the opera-lint self-tests.
//!
//! Every violation below is deliberate; `fixture_tests.rs` asserts the
//! exact counts. This file is never compiled by cargo (it lives under
//! `tests/fixtures/`), only scanned by the lint.

pub fn panics_twice(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = Some(a).expect("seeded violation");
    a + b
}

// A comment mentioning .unwrap() must NOT be flagged.
pub fn masked_string() -> &'static str {
    ".unwrap() inside a string literal is data, not code"
}

// lint: allow(L001, fixture: deliberately allowed panic site)
pub fn allowed_panic() -> u32 { None::<u32>.unwrap() }

// lint: allow(L001, fixture: stale allow with nothing to suppress)
pub fn clean() -> u32 { 7 }

// lint: hot(fixture-kernel)
pub fn hot_alloc() -> Vec<u32> {
    let v: Vec<u32> = Vec::new();
    let w = v.clone();
    let _span = opera_trace::span("fixture.kernel");
    opera_trace::count("fixture.iterations", 1);
    w
}
// lint: end-hot

pub fn cold_alloc() -> Vec<u32> {
    // Allocation outside a hot region is fine.
    vec![1, 2, 3]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let _ = Some(1).unwrap();
    }
}
