//! Seeded L004 violations: this fixture file sits under `src/`, which the
//! lint treats as a bit-identity crate.

pub fn par_sum(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x + 1.0).sum::<f64>();
    0.0
}

pub fn hash_iteration() {
    let _m: HashMap<u32, u32> = HashMap::new();
}

pub fn ordered_is_fine() {
    let _m: BTreeMap<u32, u32> = BTreeMap::new();
}
