//! Fixture with malformed lint directives: every case below is a tool
//! error (exit 2), not a finding.

// lint: allow(L001)
pub fn allow_without_reason() -> u32 { 1 }

// lint: allow(L999, no such lint code)
pub fn allow_unknown_code() -> u32 { 2 }

// lint: frobnicate(all)
pub fn unknown_directive() -> u32 { 3 }
