//! Workspace discovery: which files each lint sees.
//!
//! The scan scope is deliberately narrow and deterministic:
//!
//! * **Library sources** — `src/**/*.rs` of the root package and of every
//!   `crates/*` member, excluding `/bin/` (CLI glue may print/panic on bad
//!   argv), `tests/`, `examples/` and `benches/` (test code is allowed to
//!   unwrap), and all of `vendor/` (third-party shims are not ours to lint).
//! * **Documents** — `docs/*.md`, `DESIGN.md`, `README.md` for L003.
//! * **Corpus** — the raw text of every workspace `.rs` file (here
//!   *including* `bin/`, `tests/`, `examples/` and `benches/`) plus the
//!   fixture decks, `Cargo.toml`s and CI config, used to resolve doc
//!   symbols that are not Rust definitions (feature names, env vars,
//!   deck node names, file paths).
//!
//! Paths are sorted before scanning so reports are byte-identical between
//! runs — the same determinism bar the engine itself is held to.

use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::SourceFile;

/// All inputs for one lint run.
#[derive(Debug)]
pub struct Workspace {
    /// Workspace root directory (for file-existence checks on doc paths).
    pub root: PathBuf,
    /// Scanned library sources, sorted by path.
    pub sources: Vec<SourceFile>,
    /// `(root-relative path, raw text)` of the markdown documents, sorted.
    pub docs: Vec<(String, String)>,
    /// Concatenated raw text of all `.rs` files, fixtures, manifests and
    /// CI config.
    pub corpus: String,
    /// Files that could not be read.
    pub io_errors: Vec<(String, String)>,
}

impl Workspace {
    /// Discovers and scans everything under `root`.
    pub fn load(root: &Path) -> Workspace {
        let mut ws = Workspace {
            root: root.to_path_buf(),
            sources: Vec::new(),
            docs: Vec::new(),
            corpus: String::new(),
            io_errors: Vec::new(),
        };

        let mut rs_paths: Vec<PathBuf> = Vec::new();
        collect_rs(&root.join("src"), true, &mut rs_paths);
        let crates_dir = root.join("crates");
        for member in sorted_dir_entries(&crates_dir) {
            collect_rs(&member.join("src"), true, &mut rs_paths);
        }
        rs_paths.sort();
        for p in rs_paths {
            let rel = rel_path(root, &p);
            match fs::read_to_string(&p) {
                Ok(raw) => {
                    ws.corpus.push_str(&raw);
                    ws.corpus.push('\n');
                    ws.sources.push(SourceFile::scan(rel, raw));
                }
                Err(e) => ws.io_errors.push((rel, e.to_string())),
            }
        }

        // Corpus-only Rust: CLI glue, tests, examples and benches are not
        // linted (test code may unwrap) but doc symbols must still resolve
        // against them.
        let mut corpus_rs: Vec<PathBuf> = Vec::new();
        collect_bin_rs(&root.join("src"), &mut corpus_rs);
        collect_rs(&root.join("tests"), false, &mut corpus_rs);
        collect_rs(&root.join("examples"), false, &mut corpus_rs);
        for member in sorted_dir_entries(&crates_dir) {
            collect_bin_rs(&member.join("src"), &mut corpus_rs);
            collect_rs(&member.join("tests"), false, &mut corpus_rs);
            collect_rs(&member.join("examples"), false, &mut corpus_rs);
            collect_rs(&member.join("benches"), false, &mut corpus_rs);
        }
        // Fixture decks: docs cite node/element names from them.
        for p in sorted_dir_entries(&root.join("tests/fixtures")) {
            if p.is_file() {
                corpus_rs.push(p);
            }
        }
        corpus_rs.sort();
        for p in corpus_rs {
            if let Ok(raw) = fs::read_to_string(&p) {
                ws.corpus.push_str(&raw);
                ws.corpus.push('\n');
            }
        }

        let mut doc_paths: Vec<PathBuf> = vec![root.join("DESIGN.md"), root.join("README.md")];
        for p in sorted_dir_entries(&root.join("docs")) {
            if p.extension().and_then(|e| e.to_str()) == Some("md") {
                doc_paths.push(p);
            }
        }
        doc_paths.sort();
        for p in doc_paths {
            if !p.is_file() {
                continue;
            }
            let rel = rel_path(root, &p);
            match fs::read_to_string(&p) {
                Ok(raw) => ws.docs.push((rel, raw)),
                Err(e) => ws.io_errors.push((rel, e.to_string())),
            }
        }

        // Manifests and CI config round out the corpus so feature names,
        // job names and crate names in docs resolve.
        let mut extra: Vec<PathBuf> = vec![
            root.join("Cargo.toml"),
            root.join(".github/workflows/ci.yml"),
            root.join("clippy.toml"),
            root.join("rust-toolchain.toml"),
        ];
        for member in sorted_dir_entries(&crates_dir) {
            extra.push(member.join("Cargo.toml"));
        }
        for p in extra {
            if let Ok(raw) = fs::read_to_string(&p) {
                ws.corpus.push_str(&raw);
                ws.corpus.push('\n');
            }
        }

        ws
    }

    /// Builds the definition index: every identifier the workspace defines
    /// via `fn`/`struct`/`enum`/`trait`/`mod`/`type`/`const`/`static`/
    /// `union`/`macro_rules!`, harvested from masked code so strings and
    /// comments cannot fabricate definitions.
    pub fn definition_index(&self) -> std::collections::BTreeSet<String> {
        let mut defs = std::collections::BTreeSet::new();
        const KEYWORDS: [&str; 9] = [
            "fn", "struct", "enum", "trait", "mod", "type", "const", "static", "union",
        ];
        for src in &self.sources {
            for line in &src.masked {
                let mut toks = line
                    .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '!'))
                    .filter(|t| !t.is_empty())
                    .peekable();
                while let Some(tok) = toks.next() {
                    if tok == "macro_rules!" {
                        if let Some(name) = toks.peek() {
                            defs.insert((*name).to_string());
                        }
                    } else if KEYWORDS.contains(&tok) {
                        if let Some(name) = toks.peek() {
                            let name = name.trim_end_matches('!');
                            if !name.is_empty()
                                && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                            {
                                defs.insert(name.to_string());
                            }
                        }
                    }
                }
            }
        }
        defs
    }
}

/// Recursively collects `.rs` files under `dir`, skipping `/bin/` when
/// `skip_bin` is set.
fn collect_rs(dir: &Path, skip_bin: bool, out: &mut Vec<PathBuf>) {
    for entry in sorted_dir_entries(dir) {
        if entry.is_dir() {
            if skip_bin && entry.file_name().and_then(|n| n.to_str()) == Some("bin") {
                continue;
            }
            collect_rs(&entry, skip_bin, out);
        } else if entry.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(entry);
        }
    }
}

/// Collects only the `bin/**/*.rs` files under a `src/` directory.
fn collect_bin_rs(src_dir: &Path, out: &mut Vec<PathBuf>) {
    collect_rs(&src_dir.join("bin"), false, out);
}

/// Directory entries in sorted order (empty when unreadable).
fn sorted_dir_entries(dir: &Path) -> Vec<PathBuf> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(_) => Vec::new(),
    };
    entries.sort();
    entries
}

/// Root-relative path with forward slashes.
fn rel_path(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Extracts the inline backticked spans from a markdown document as
/// `(1-based line, span text)`, skipping fenced code blocks.
pub fn inline_code_spans(doc: &str) -> Vec<(usize, String)> {
    let mut spans = Vec::new();
    let mut in_fence = false;
    for (idx, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let span = &after[..close];
            if !span.is_empty() {
                spans.push((idx + 1, span.to_string()));
            }
            rest = &after[close + 1..];
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_skip_fenced_blocks() {
        let doc = "Use `foo()` here.\n```rust\nlet x = `not_a_span`;\n```\nAnd `bar` too.\n";
        let spans = inline_code_spans(doc);
        assert_eq!(
            spans,
            vec![(1, "foo()".to_string()), (5, "bar".to_string())]
        );
    }

    #[test]
    fn multiple_spans_per_line() {
        let spans = inline_code_spans("`a` and `b::c` and `d-e`\n");
        assert_eq!(spans.len(), 3);
    }
}
