//! `opera-lint`: workspace static analysis for the OPERA reproduction.
//!
//! The engine stakes three hard guarantees — a panic-free library surface,
//! zero allocations on warm hot-loop iterations, and bit-identical
//! floating-point statistics for any thread count — that until this crate
//! were enforced only dynamically (the `SolveWorkspace` allocation counter,
//! thread-checksum tests) or by ad-hoc shell greps in CI. `opera-lint`
//! machine-checks them statically on every CI run:
//!
//! * **L001 panic-surface** — no `unwrap()`/`expect(`/`panic!`/
//!   `unreachable!` in non-test library code,
//! * **L002 hot-loop allocation** — no allocating calls inside
//!   `// lint: hot` regions,
//! * **L003 doc-symbol rot** — every backticked symbol in the docs
//!   resolves to a workspace definition,
//! * **L004 fp-determinism** — no order-nondeterministic float reductions
//!   in the crates that promise bit-identity,
//! * **L005 unsafe-justification** — every `unsafe` token carries a
//!   `// SAFETY:` comment on the same line or immediately above.
//!
//! Run it with `cargo run -p opera-lint -- check [--json]`; see
//! `docs/LINTS.md` for the full rationale, the `// lint: allow(...)` /
//! `// lint: hot(...)` comment grammar and the allowlist policy.
//!
//! The crate is dependency-free by design (like `opera-bench`'s JSON
//! layer): the lint gate must build fast and can never be blocked by the
//! crates it checks.
#![deny(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod lints;
pub mod report;
pub mod scan;
pub mod workspace;

use std::path::Path;

/// Runs the full lint pass over the workspace rooted at `root`.
pub fn check(root: &Path) -> report::Report {
    let ws = workspace::Workspace::load(root);
    lints::run_all(&ws)
}
