//! Lexical source scanner: string/comment masking, `#[cfg(test)]` region
//! tracking and the `// lint:` directive grammar.
//!
//! The lints in this crate are lexical, so their one hard prerequisite is
//! never confusing *mentions* of a pattern with *uses* of it: `"unwrap()"`
//! inside a string literal, `.unwrap()` inside a doc-comment example and a
//! panic site inside a `#[cfg(test)]` module must all be invisible to a
//! panic-surface lint. This module produces that view once per file:
//!
//! * [`mask_source`] replaces the contents of every string/char literal and
//!   every comment with spaces (preserving line/column structure) while
//!   collecting the text of each `//` comment for directive parsing;
//! * [`SourceFile::scan`] layers test-region tracking (`#[cfg(test)]` /
//!   `#[test]` attributes followed by a braced item) and the directive
//!   grammar on top:
//!
//! ```text
//! // lint: allow(L001, <mandatory reason>)   – suppress one finding on the
//! //                                           next line (or this line, when
//! //                                           trailing after code)
//! // lint: hot(<region name>)                – open a hot region (L002)
//! // lint: end-hot                           – close it
//! ```
//!
//! Malformed directives (unknown lint code, missing reason, unbalanced hot
//! markers) are collected as [`DirectiveError`]s and fail the run outright:
//! a suppression that does not parse must never silently suppress nothing.

/// Lint codes the directive grammar accepts.
pub const LINT_CODES: [&str; 5] = ["L001", "L002", "L003", "L004", "L005"];

/// A parsed `// lint: allow(...)` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowDirective {
    /// The lint code being suppressed (one of [`LINT_CODES`]).
    pub lint: String,
    /// The mandatory human reason.
    pub reason: String,
    /// 1-based line of the comment itself.
    pub comment_line: usize,
    /// 1-based line the suppression applies to.
    pub target_line: usize,
}

/// A contiguous `// lint: hot(...)` … `// lint: end-hot` region.
#[derive(Debug, Clone, PartialEq)]
pub struct HotRegion {
    /// The region name given in the opening marker.
    pub name: String,
    /// 1-based first line covered (the line after the opening marker).
    pub start_line: usize,
    /// 1-based last line covered (the line before the closing marker).
    pub end_line: usize,
}

/// A directive that failed to parse (these fail the whole run).
#[derive(Debug, Clone, PartialEq)]
pub struct DirectiveError {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

/// One scanned source file, ready for the lexical lints.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path with forward slashes.
    pub path: String,
    /// Raw file text (used by the doc-symbol corpus).
    pub raw: String,
    /// Per-line code with string/char literals and comments blanked out.
    pub masked: Vec<String>,
    /// Per-line flag: the line belongs to a `#[cfg(test)]`/`#[test]` region.
    pub in_test: Vec<bool>,
    /// Parsed allow directives.
    pub allows: Vec<AllowDirective>,
    /// Parsed hot regions.
    pub hot: Vec<HotRegion>,
    /// Malformed directives.
    pub directive_errors: Vec<DirectiveError>,
}

impl SourceFile {
    /// Scans one file: masks literals/comments, computes test regions and
    /// parses the directive comments.
    pub fn scan(path: String, raw: String) -> SourceFile {
        let (masked_text, comments) = mask_source(&raw);
        let masked: Vec<String> = masked_text.split('\n').map(str::to_string).collect();
        let in_test = test_regions(&masked);
        let mut allows = Vec::new();
        let mut hot = Vec::new();
        let mut directive_errors = Vec::new();
        parse_directives(
            &masked,
            &comments,
            &mut allows,
            &mut hot,
            &mut directive_errors,
        );
        SourceFile {
            path,
            raw,
            masked,
            in_test,
            allows,
            hot,
            directive_errors,
        }
    }

    /// Whether 1-based `line` lies inside a hot region, and that region's
    /// name.
    pub fn hot_region_at(&self, line: usize) -> Option<&HotRegion> {
        self.hot
            .iter()
            .find(|r| r.start_line <= line && line <= r.end_line)
    }
}

/// Masking state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes (`r##"…"##`).
    RawStr(u32),
    CharLit,
}

/// Replaces the contents of comments and string/char literals with spaces,
/// preserving the line structure exactly, and returns the text of every
/// `//` line comment as `(0-based line, text after the slashes)`.
pub fn mask_source(raw: &str) -> (String, Vec<(usize, String)>) {
    let bytes = raw.as_bytes();
    let mut out = String::with_capacity(raw.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut state = State::Code;
    let mut line = 0usize;
    let mut comment_buf = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            if state == State::LineComment {
                comments.push((line, std::mem::take(&mut comment_buf)));
                state = State::Code;
            }
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    comment_buf.clear();
                    out.push_str("  ");
                    i += 2;
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == b'"' {
                    state = State::Str;
                    out.push('"');
                    i += 1;
                } else if c == b'r' && is_raw_string_start(bytes, i) {
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    // is_raw_string_start guarantees the quote is here.
                    state = State::RawStr(hashes);
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                } else if c == b'\'' {
                    if let Some(len) = char_literal_len(bytes, i) {
                        state = State::CharLit;
                        out.push('\'');
                        i += 1;
                        // Mask the literal body; the closing quote is
                        // handled by the CharLit arm below.
                        let _ = len;
                    } else {
                        // A lifetime (`'a`) — plain code.
                        out.push('\'');
                        i += 1;
                    }
                } else {
                    out.push(c as char);
                    i += 1;
                }
            }
            State::LineComment => {
                comment_buf.push(c as char);
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    out.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                } else if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    out.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == b'"' {
                    out.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == b'"' && raw_string_ends(bytes, i, hashes) {
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::CharLit => {
                if c == b'\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == b'\'' {
                    out.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment {
        comments.push((line, comment_buf));
    }
    (out, comments)
}

/// Whether `bytes[i] == b'r'` starts a raw string literal (`r"` / `r#"`),
/// as opposed to an identifier that merely contains `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Whether the `"` at `bytes[i]` closes a raw string with `hashes` hashes.
fn raw_string_ends(bytes: &[u8], i: usize, hashes: u32) -> bool {
    for k in 0..hashes as usize {
        if bytes.get(i + 1 + k) != Some(&b'#') {
            return false;
        }
    }
    true
}

/// Distinguishes a char literal from a lifetime at a `'`. Returns the
/// literal's byte length when it is one.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1)? {
        b'\\' => {
            // Escape: scan to the closing quote (bounded, escapes are short).
            let mut j = i + 2;
            while j < bytes.len() && j < i + 12 {
                if bytes[j] == b'\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        b'\'' => None, // `''` is not a literal
        _ => {
            // `'x'` (possibly multi-byte UTF-8): find a quote within 5 bytes.
            let mut j = i + 2;
            while j < bytes.len() && j <= i + 5 {
                if bytes[j] == b'\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Computes, per masked line, whether it belongs to a test region: a
/// `#[cfg(test)]`-style or `#[test]` attribute followed by a braced item
/// marks everything up to the matching close brace as test code.
fn test_regions(masked: &[String]) -> Vec<bool> {
    let mut flags = vec![false; masked.len()];
    let mut depth = 0i64;
    // Depths at which a test region opened.
    let mut stack: Vec<i64> = Vec::new();
    let mut pending = false;
    for (idx, line) in masked.iter().enumerate() {
        let start_in_test = !stack.is_empty();
        if line_has_test_attribute(line) {
            pending = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending {
                        stack.push(depth);
                        pending = false;
                    }
                }
                '}' => {
                    if stack.last() == Some(&depth) {
                        stack.pop();
                    }
                    depth -= 1;
                }
                // `#[cfg(test)] use …;` — attribute consumed by a
                // braceless item.
                ';' if pending && depth >= 0 => pending = false,
                _ => {}
            }
        }
        flags[idx] = start_in_test || !stack.is_empty() || pending;
    }
    flags
}

/// Whether a masked line carries a `#[cfg(… test …)]` or `#[test]` attribute.
fn line_has_test_attribute(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("#[") {
        let attr = &rest[pos + 2..];
        if let Some(end) = attr.find(']') {
            let body = &attr[..end];
            if body == "test"
                || (body.starts_with("cfg") && contains_word(body, "test"))
                || (body.starts_with("cfg_attr") && contains_word(body, "test"))
            {
                return true;
            }
            rest = &attr[end + 1..];
        } else {
            return false;
        }
    }
    false
}

/// Word-boundary substring search over ASCII identifiers.
pub fn contains_word(haystack: &str, needle: &str) -> bool {
    let h = haystack.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = haystack[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(h[at - 1]);
        let after = at + needle.len();
        let after_ok = after >= h.len() || !is_ident_byte(h[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Parses every `lint:` comment into allow directives and hot regions.
fn parse_directives(
    masked: &[String],
    comments: &[(usize, String)],
    allows: &mut Vec<AllowDirective>,
    hot: &mut Vec<HotRegion>,
    errors: &mut Vec<DirectiveError>,
) {
    let mut open_hot: Option<(String, usize)> = None;
    for (line0, text) in comments {
        let text = text.trim();
        let Some(body) = text.strip_prefix("lint:") else {
            continue;
        };
        let body = body.trim();
        let line = line0 + 1; // 1-based
        if let Some(args) = body.strip_prefix("allow(") {
            let Some(args) = args.strip_suffix(')') else {
                errors.push(DirectiveError {
                    line,
                    message: "unterminated `lint: allow(…)` directive".to_string(),
                });
                continue;
            };
            let Some((code, reason)) = args.split_once(',') else {
                errors.push(DirectiveError {
                    line,
                    message: "`lint: allow` needs a reason: `allow(L00x, <reason>)`".to_string(),
                });
                continue;
            };
            let code = code.trim();
            let reason = reason.trim();
            if !LINT_CODES.contains(&code) {
                errors.push(DirectiveError {
                    line,
                    message: format!("unknown lint code `{code}` in allow directive"),
                });
                continue;
            }
            if reason.is_empty() {
                errors.push(DirectiveError {
                    line,
                    message: format!("allow({code}) without a reason; the reason is mandatory"),
                });
                continue;
            }
            // Trailing comment → same line; standalone comment → next line.
            let standalone = masked
                .get(*line0)
                .map(|l| l.trim().is_empty())
                .unwrap_or(true);
            let target_line = if standalone { line + 1 } else { line };
            allows.push(AllowDirective {
                lint: code.to_string(),
                reason: reason.to_string(),
                comment_line: line,
                target_line,
            });
        } else if let Some(args) = body.strip_prefix("hot(") {
            let Some(name) = args.strip_suffix(')') else {
                errors.push(DirectiveError {
                    line,
                    message: "unterminated `lint: hot(…)` directive".to_string(),
                });
                continue;
            };
            let name = name.trim();
            if name.is_empty() {
                errors.push(DirectiveError {
                    line,
                    message: "`lint: hot()` needs a region name".to_string(),
                });
                continue;
            }
            if let Some((open_name, open_line)) = &open_hot {
                errors.push(DirectiveError {
                    line,
                    message: format!(
                        "hot region `{name}` opened while `{open_name}` (line {open_line}) \
                         is still open"
                    ),
                });
                continue;
            }
            open_hot = Some((name.to_string(), line));
        } else if body == "end-hot" {
            match open_hot.take() {
                Some((name, start)) => hot.push(HotRegion {
                    name,
                    start_line: start + 1,
                    end_line: line - 1,
                }),
                None => errors.push(DirectiveError {
                    line,
                    message: "`lint: end-hot` without an open hot region".to_string(),
                }),
            }
        } else {
            errors.push(DirectiveError {
                line,
                message: format!(
                    "unrecognised lint directive `{body}`; expected \
                     `allow(L00x, reason)`, `hot(name)` or `end-hot`"
                ),
            });
        }
    }
    if let Some((name, line)) = open_hot {
        errors.push(DirectiveError {
            line,
            message: format!("hot region `{name}` is never closed with `lint: end-hot`"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_comments_and_char_literals() {
        let src = "let s = \"has .unwrap() inside\"; // trailing .unwrap()\nlet c = 'x';\n";
        let (masked, comments) = mask_source(src);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let s = \""));
        assert!(masked.contains("let c = '"));
        assert_eq!(comments.len(), 1);
        assert!(comments[0].1.contains(".unwrap()"));
    }

    #[test]
    fn masks_raw_strings_and_nested_block_comments() {
        let src = "let r = r#\"panic!(\"no\")\"#; /* outer /* panic! */ still */ code()\n";
        let (masked, _) = mask_source(src);
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("code()"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\n";
        let (masked, _) = mask_source(src);
        assert!(masked.contains("fn f<'a>(x: &'a str) -> &'a str { x }"));
    }

    #[test]
    fn cfg_test_region_covers_nested_modules() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    mod nested {\n        fn t() {}\n    }\n}\nfn lib2() {}\n";
        let f = SourceFile::scan("x.rs".into(), src.into());
        assert!(!f.in_test[0]);
        assert!(f.in_test[2] && f.in_test[4] && f.in_test[6]);
        assert!(!f.in_test[7]);
    }

    #[test]
    fn directive_grammar_round_trips() {
        let src = "\
// lint: hot(kernel)
fn hot_code() {}
// lint: end-hot
// lint: allow(L001, registry poisoning is unrecoverable)
fn allowed() {}
let x = 1; // lint: allow(L002, trailing)
";
        let f = SourceFile::scan("x.rs".into(), src.into());
        assert!(f.directive_errors.is_empty(), "{:?}", f.directive_errors);
        assert_eq!(f.hot.len(), 1);
        assert_eq!(f.hot[0].start_line, 2);
        assert_eq!(f.hot[0].end_line, 2);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].target_line, 5);
        assert_eq!(f.allows[1].target_line, 6);
    }

    #[test]
    fn malformed_directives_are_errors() {
        for bad in [
            "// lint: allow(L001)\n",
            "// lint: allow(L001, )\n",
            "// lint: allow(L999, because)\n",
            "// lint: hot(x)\n",
            "// lint: end-hot\n",
            "// lint: frobnicate\n",
        ] {
            let f = SourceFile::scan("x.rs".into(), bad.into());
            assert!(!f.directive_errors.is_empty(), "{bad:?} should error");
        }
    }
}
