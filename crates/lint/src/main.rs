//! CLI for `opera-lint`.
//!
//! ```text
//! opera-lint check [--json] [--root <dir>]
//! ```
//!
//! Exit codes: 0 clean, 1 findings or unused allows, 2 tool error
//! (malformed directive, unreadable file, bad usage).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut cmd: Option<&str> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" if cmd.is_none() => cmd = Some("check"),
            "--json" => json = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => {
                        eprintln!("error: --root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: opera-lint check [--json] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("check") {
        eprintln!("usage: opera-lint check [--json] [--root <dir>]");
        return ExitCode::from(2);
    }

    let report = opera_lint::check(&root);
    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    ExitCode::from(report.exit_code() as u8)
}
