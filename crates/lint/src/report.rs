//! Findings, the run report and its dependency-free JSON emission.

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Lint code (`L001`…`L005`).
    pub lint: &'static str,
    /// Root-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human message (what matched, and where relevant the hot-region name).
    pub message: String,
}

/// One applied suppression, surfaced so the allowlist is auditable and its
/// count can only shrink.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedAllow {
    /// Lint code being suppressed.
    pub lint: String,
    /// Root-relative file path.
    pub path: String,
    /// 1-based line the suppression applies to.
    pub line: usize,
    /// The mandatory reason from the directive.
    pub reason: String,
}

/// A tool-level error (malformed directive, unreadable file): exit code 2.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolError {
    /// Root-relative file path (empty for global errors).
    pub path: String,
    /// 1-based line number (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

/// The full result of one `opera-lint check` run.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (path, line, lint).
    pub findings: Vec<Finding>,
    /// Applied allow directives.
    pub allows: Vec<AppliedAllow>,
    /// Allow directives that matched no finding (these fail the run: a
    /// stale suppression hides nothing and must be deleted).
    pub unused_allows: Vec<AppliedAllow>,
    /// Malformed directives and I/O failures.
    pub errors: Vec<ToolError>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of markdown documents checked by L003.
    pub docs_checked: usize,
}

impl Report {
    /// Process exit code for this report: 2 on tool errors, 1 on findings
    /// or unused allows, 0 when clean.
    pub fn exit_code(&self) -> i32 {
        if !self.errors.is_empty() {
            2
        } else if !self.findings.is_empty() || !self.unused_allows.is_empty() {
            1
        } else {
            0
        }
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.errors {
            if e.line == 0 {
                out.push_str(&format!("error: {}: {}\n", e.path, e.message));
            } else {
                out.push_str(&format!("error: {}:{}: {}\n", e.path, e.line, e.message));
            }
        }
        for f in &self.findings {
            out.push_str(&format!(
                "{}: {}:{}: {}\n",
                f.lint, f.path, f.line, f.message
            ));
        }
        for a in &self.unused_allows {
            out.push_str(&format!(
                "unused-allow: {}:{}: allow({}) matched no finding — delete it\n",
                a.path, a.line, a.lint
            ));
        }
        out.push_str(&format!(
            "opera-lint: {} file(s), {} doc(s) scanned; {} finding(s), \
             {} allow(s) in use, {} unused allow(s), {} error(s)\n",
            self.files_scanned,
            self.docs_checked,
            self.findings.len(),
            self.allows.len(),
            self.unused_allows.len(),
            self.errors.len()
        ));
        out
    }

    /// Renders the report as JSON (schema `opera-lint/v1`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"opera-lint/v1\",\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
                json_str(f.lint),
                json_str(&f.path),
                f.line,
                json_str(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"path\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(&a.lint),
                json_str(&a.path),
                a.line,
                json_str(&a.reason)
            ));
        }
        if !self.allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"unused_allows\": [");
        for (i, a) in self.unused_allows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": {}, \"path\": {}, \"line\": {}}}",
                json_str(&a.lint),
                json_str(&a.path),
                a.line
            ));
        }
        if !self.unused_allows.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"errors\": [");
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&e.path),
                e.line,
                json_str(&e.message)
            ));
        }
        if !self.errors.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"files_scanned\": {}, \"docs_checked\": {}, \
             \"findings\": {}, \"allows\": {}, \"unused_allows\": {}, \
             \"errors\": {}, \"exit_code\": {}}}\n}}\n",
            self.files_scanned,
            self.docs_checked,
            self.findings.len(),
            self.allows.len(),
            self.unused_allows.len(),
            self.errors.len(),
            self.exit_code()
        ));
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_rank_errors_over_findings() {
        let mut r = Report::default();
        assert_eq!(r.exit_code(), 0);
        r.findings.push(Finding {
            lint: "L001",
            path: "a.rs".into(),
            line: 1,
            message: "x".into(),
        });
        assert_eq!(r.exit_code(), 1);
        r.errors.push(ToolError {
            path: "a.rs".into(),
            line: 2,
            message: "bad".into(),
        });
        assert_eq!(r.exit_code(), 2);
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
