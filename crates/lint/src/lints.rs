//! The five lint passes and the allow-directive application layer.
//!
//! | code | contract it proves |
//! |------|--------------------|
//! | L001 | no `unwrap()`/`expect(`/`panic!`/`unreachable!` in non-test library code |
//! | L002 | no allocation (`Vec::new`, `vec![`, `.to_vec()`, `.clone()`, `.collect()`) and no non-counter `opera_trace` call inside `// lint: hot` regions |
//! | L003 | every backticked symbol in the docs resolves to a workspace definition |
//! | L004 | no order-nondeterministic float reductions in bit-identity crates |
//! | L005 | every `unsafe` token in non-test code is justified by a `SAFETY:` comment |
//!
//! Each pass emits raw findings; [`run_all`] then applies the per-line
//! allow directives, reports the allows it used and flags the stale ones.

use std::collections::BTreeSet;

use crate::report::{AppliedAllow, Finding, Report, ToolError};
use crate::scan::{contains_word, SourceFile};
use crate::workspace::{inline_code_spans, Workspace};

/// Crates that promise bit-identical floating-point results regardless of
/// thread count (see `docs/PERFORMANCE.md`); L004 applies only to these.
const DETERMINISTIC_CRATES: [&str; 8] = [
    "src/",
    "crates/sparse/",
    "crates/simd/",
    "crates/pce/",
    "crates/core/",
    "crates/collocation/",
    "crates/trace/",
    "crates/variation/",
];

/// Runs every lint over the workspace and applies the allow directives.
pub fn run_all(ws: &Workspace) -> Report {
    let mut report = Report {
        files_scanned: ws.sources.len(),
        docs_checked: ws.docs.len(),
        ..Report::default()
    };

    for (path, msg) in &ws.io_errors {
        report.errors.push(ToolError {
            path: path.clone(),
            line: 0,
            message: msg.clone(),
        });
    }
    for src in &ws.sources {
        for e in &src.directive_errors {
            report.errors.push(ToolError {
                path: src.path.clone(),
                line: e.line,
                message: e.message.clone(),
            });
        }
    }

    let mut findings: Vec<Finding> = Vec::new();
    for src in &ws.sources {
        lint_panic_surface(src, &mut findings);
        lint_hot_alloc(src, &mut findings);
        lint_fp_determinism(src, &mut findings);
        lint_unsafe_justification(src, &mut findings);
    }
    lint_doc_symbols(ws, &mut findings);

    // Apply the allow directives: an allow suppresses findings of its code
    // on its target line; each allow must suppress at least one finding.
    let mut used = vec![false; 0];
    let mut all_allows: Vec<AppliedAllow> = Vec::new();
    for src in &ws.sources {
        for a in &src.allows {
            all_allows.push(AppliedAllow {
                lint: a.lint.clone(),
                path: src.path.clone(),
                line: a.target_line,
                reason: a.reason.clone(),
            });
        }
    }
    used.resize(all_allows.len(), false);
    findings.retain(|f| {
        let mut suppressed = false;
        for (i, a) in all_allows.iter().enumerate() {
            if a.lint == f.lint && a.path == f.path && a.line == f.line {
                used[i] = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    for (i, a) in all_allows.into_iter().enumerate() {
        if used[i] {
            report.allows.push(a);
        } else {
            report.unused_allows.push(a);
        }
    }

    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.lint).cmp(&(b.path.as_str(), b.line, b.lint)));
    report.findings = findings;
    report
}

/// L001: panic-free library surface outside test code.
fn lint_panic_surface(src: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in src.masked.iter().enumerate() {
        if src.in_test[idx] {
            continue;
        }
        // `.unwrap()`/`.expect(` are dot-prefixed on purpose: a local
        // `fn expect(…)` (e.g. the JSON parser's) is not a panic site.
        for needle in [".unwrap()", ".expect("] {
            if line.contains(needle) {
                findings.push(Finding {
                    lint: "L001",
                    path: src.path.clone(),
                    line: idx + 1,
                    message: format!("`{needle}` in non-test library code"),
                });
            }
        }
        for mac in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            let bare = &mac[..mac.len() - 1];
            if line.contains(mac) && contains_word(line, bare) {
                findings.push(Finding {
                    lint: "L001",
                    path: src.path.clone(),
                    line: idx + 1,
                    message: format!("`{mac}` in non-test library code"),
                });
            }
        }
    }
}

/// L002: no allocation inside declared hot regions.
fn lint_hot_alloc(src: &SourceFile, findings: &mut Vec<Finding>) {
    const NEEDLES: [&str; 6] = [
        "Vec::new",
        "vec![",
        ".to_vec()",
        ".clone()",
        ".collect()",
        ".collect::<",
    ];
    for region in &src.hot {
        for line_no in region.start_line..=region.end_line {
            let Some(line) = src.masked.get(line_no - 1) else {
                continue;
            };
            for needle in NEEDLES {
                if line.contains(needle) {
                    findings.push(Finding {
                        lint: "L002",
                        path: src.path.clone(),
                        line: line_no,
                        message: format!(
                            "`{needle}` allocates inside hot region `{}`",
                            region.name
                        ),
                    });
                }
            }
            // Tracing inside a hot region must stay on the allocation-free
            // fast path: `opera_trace::count(` is a branch plus an add, but
            // spans, gauges and events take the sink lock and may allocate.
            if line.contains("opera_trace::") && !line.contains("opera_trace::count(") {
                findings.push(Finding {
                    lint: "L002",
                    path: src.path.clone(),
                    line: line_no,
                    message: format!(
                        "non-counter `opera_trace` call inside hot region `{}`: \
                         only `opera_trace::count(` is allowed in hot code",
                        region.name
                    ),
                });
            }
        }
    }
}

/// L004: flags order-nondeterministic float reductions in the crates that
/// promise bit-identity.
fn lint_fp_determinism(src: &SourceFile, findings: &mut Vec<Finding>) {
    if !DETERMINISTIC_CRATES.iter().any(|p| src.path.starts_with(p)) {
        return;
    }
    // Rule A: a statement that starts a parallel iterator and ends in a
    // float reduction combines partial sums in nondeterministic order.
    const PAR_STARTS: [&str; 3] = ["par_iter(", "into_par_iter(", "par_chunks("];
    const REDUCERS: [&str; 4] = [".sum", ".fold(", ".reduce(", ".product"];
    let n = src.masked.len();
    for idx in 0..n {
        if src.in_test[idx] {
            continue;
        }
        let line = &src.masked[idx];
        if !PAR_STARTS.iter().any(|p| line.contains(p)) {
            continue;
        }
        // Scan the statement window: this line until one ending in `;`
        // (bounded look-ahead; chained builders are short).
        let mut window = String::new();
        let mut end = idx;
        for j in idx..n.min(idx + 30) {
            window.push_str(&src.masked[j]);
            window.push('\n');
            end = j;
            if src.masked[j].trim_end().ends_with(';') {
                break;
            }
        }
        if REDUCERS.iter().any(|r| window.contains(r)) {
            findings.push(Finding {
                lint: "L004",
                path: src.path.clone(),
                line: idx + 1,
                message: format!(
                    "parallel iterator feeds a float reduction (statement ends line {}): \
                     partial-sum order is nondeterministic",
                    end + 1
                ),
            });
        }
    }
    // Rule B: HashMap/HashSet iteration order is randomized per process;
    // any use in a bit-identity crate risks order-dependent fp results.
    for (idx, line) in src.masked.iter().enumerate() {
        if src.in_test[idx] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(line, ty) {
                findings.push(Finding {
                    lint: "L004",
                    path: src.path.clone(),
                    line: idx + 1,
                    message: format!(
                        "`{ty}` in a bit-identity crate: iteration order is \
                         nondeterministic; use `BTreeMap`/`BTreeSet` or index maps"
                    ),
                });
            }
        }
    }
}

/// L005: every `unsafe` token in non-test code must carry a `SAFETY:`
/// justification — on the same line (trailing comment) or in the contiguous
/// `//` comment block immediately above. Attribute lines (`#[target_feature]`,
/// `#[cfg(…)]`) between the comment block and the code are skipped, so
/// feature-gated kernels document in the natural place.
///
/// The *detection* runs on masked lines (mentions of `unsafe` in strings,
/// comments and doc examples are invisible); the *justification* is looked
/// up in the raw text, because masking blanks out the very comments that
/// hold it.
fn lint_unsafe_justification(src: &SourceFile, findings: &mut Vec<Finding>) {
    let raw_lines: Vec<&str> = src.raw.split('\n').collect();
    for (idx, line) in src.masked.iter().enumerate() {
        if src.in_test[idx] || !contains_word(line, "unsafe") {
            continue;
        }
        if unsafe_is_justified(&raw_lines, idx) {
            continue;
        }
        findings.push(Finding {
            lint: "L005",
            path: src.path.clone(),
            line: idx + 1,
            message: "`unsafe` without a `// SAFETY:` comment on the same line or \
                      in the comment block above"
                .to_string(),
        });
    }
}

/// Whether the `unsafe` on 0-based raw line `idx` has a `SAFETY:` comment
/// in scope: trailing on the line itself, or in the contiguous comment
/// block above (attribute lines in between are skipped).
fn unsafe_is_justified(raw_lines: &[&str], idx: usize) -> bool {
    if raw_lines.get(idx).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let above = raw_lines.get(i).map(|l| l.trim()).unwrap_or("");
        if above.starts_with("//") {
            if above.contains("SAFETY:") {
                return true;
            }
        } else if above.starts_with("#[") || above.starts_with("#![") {
            // Attributes sit between the justification and the item.
        } else {
            return false;
        }
    }
    false
}

/// L003: every backticked symbol in the docs must resolve somewhere in the
/// workspace.
fn lint_doc_symbols(ws: &Workspace, findings: &mut Vec<Finding>) {
    let defs: BTreeSet<String> = ws.definition_index();
    for (path, text) in &ws.docs {
        for (line, span) in inline_code_spans(text) {
            if let Some(message) = check_doc_span(&span, &defs, ws) {
                findings.push(Finding {
                    lint: "L003",
                    path: path.clone(),
                    line,
                    message,
                });
            }
        }
    }
}

/// Classifies one backticked span and checks it resolves. Returns the
/// finding message when it does not.
fn check_doc_span(span: &str, defs: &BTreeSet<String>, ws: &Workspace) -> Option<String> {
    // Spans with whitespace are prose/commands (`cargo test -q`), not
    // symbols; skip them.
    if span.chars().any(|c| c.is_whitespace()) {
        return None;
    }
    // Globs, elided arguments, brace shorthand and `<placeholder>` tokens
    // are patterns the reader expands, not symbols the workspace defines.
    if span.contains('*')
        || span.contains('…')
        || span.contains('{')
        || span.contains("_<")
        || span.contains("=<")
    {
        return None;
    }
    // Paths into the standard library cannot rot with the workspace.
    if span.starts_with("std::") || span.starts_with("core::") || span.starts_with("alloc::") {
        return None;
    }
    // Rust-ish symbols: `a::b::c`, `f()`, `vec!`, `engine.method(arg)`.
    // Checked before the path heuristic so `ceil(k/8)`-style spans with a
    // `/` in the argument list are not mistaken for file paths.
    let symbolish = span.contains("::") || span.ends_with('!') || span.contains('(');
    if symbolish {
        if ws.corpus.contains(span) {
            return None;
        }
        // Name = everything before the argument list, then the last
        // `::`/`.`-separated segment, generics stripped.
        let callee = span.split('(').next().unwrap_or(span);
        let last = callee
            .rsplit("::")
            .next()
            .unwrap_or(callee)
            .rsplit('.')
            .next()
            .unwrap_or(callee)
            .trim_end_matches(['!', ';'])
            .trim_start_matches(['&', '*']);
        let name = last.split('<').next().unwrap_or(last);
        if name.is_empty() || name.len() == 1 {
            // Single letters are math notation (`O(nnz)`), not symbols.
            return None;
        }
        if defs.contains(name) {
            return None;
        }
        // Fields and re-exported methods don't appear in the definition
        // index; accept them when the code uses the name as one.
        for usage in [format!(".{name}"), format!("{name}:"), format!("{name}(")] {
            if ws.corpus.contains(&usage) {
                return None;
            }
        }
        return Some(format!(
            "`{span}` does not resolve: no workspace definition or use of `{name}`"
        ));
    }
    // File paths: the file must exist (or be cited verbatim in the corpus,
    // for files generated at run time).
    let looks_like_path = span.contains('/')
        || [".rs", ".md", ".toml", ".yml", ".sp", ".json", ".lock"]
            .iter()
            .any(|ext| span.ends_with(ext));
    if looks_like_path {
        if ws.root.join(span).exists() || ws.corpus.contains(span) || doc_exists(ws, span) {
            return None;
        }
        return Some(format!("`{span}` looks like a path but resolves nowhere"));
    }
    // Hyphenated/underscored/uppercase tokens (feature names, env vars,
    // crate names, flags): require a verbatim corpus or definition match.
    let structured = span.contains('-')
        || span.contains('_')
        || span.chars().any(|c| c.is_ascii_uppercase())
        || span.contains('=');
    if structured {
        // `VAR=value` settings resolve through the variable name alone.
        let bare = span.trim_start_matches("--");
        let bare = bare.split('=').next().unwrap_or(bare);
        if ws.corpus.contains(bare) || defs.contains(bare) {
            return None;
        }
        return Some(format!(
            "`{span}` is not mentioned anywhere in the workspace"
        ));
    }
    // Plain lowercase single words (`etree`, `rust`, `panel`) are prose
    // emphasis, not checkable symbols.
    None
}

/// Whether a span names a doc file we loaded.
fn doc_exists(ws: &Workspace, span: &str) -> bool {
    ws.docs
        .iter()
        .any(|(p, _)| p == span || p.ends_with(&format!("/{span}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn ws_of(path: &str, src: &str) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("/nonexistent-lint-test-root"),
            sources: vec![SourceFile::scan(path.into(), src.into())],
            docs: Vec::new(),
            corpus: src.to_string(),
            io_errors: Vec::new(),
        }
    }

    #[test]
    fn l001_skips_strings_comments_and_tests() {
        let src = "\
fn lib() {
    let x = maybe().unwrap();
}
// a comment mentioning .unwrap() is fine
fn doc() { let s = \".unwrap()\"; }
#[cfg(test)]
mod tests {
    fn t() { none().unwrap(); }
}
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].line, 2);
    }

    #[test]
    fn l002_flags_alloc_in_hot_regions_only() {
        let src = "\
fn cold() { let v = vec![1]; }
// lint: hot(kernel)
fn hot() {
    let v = Vec::new();
    let w = x.to_vec();
}
// lint: end-hot
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        assert_eq!(r.findings.len(), 2);
        assert!(r.findings.iter().all(|f| f.lint == "L002"));
    }

    #[test]
    fn l002_permits_only_counter_increments_from_opera_trace() {
        let src = "\
fn cold() { let _s = opera_trace::span(\"ok-outside\"); }
// lint: hot(kernel)
fn hot() {
    opera_trace::count(\"iters\", 1);
    let _s = opera_trace::span(\"too-heavy\");
    opera_trace::gauge_set(\"width\", 4.0);
}
// lint: end-hot
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        assert_eq!(r.findings.len(), 2, "findings: {:#?}", r.findings);
        assert!(r.findings.iter().all(|f| f.lint == "L002"));
        assert_eq!(r.findings[0].line, 5);
        assert_eq!(r.findings[1].line, 6);
    }

    #[test]
    fn l004_flags_par_reduction_and_hash_iteration() {
        let src = "\
fn f(xs: &[f64]) -> f64 {
    xs.par_iter()
        .map(|x| x * 2.0)
        .sum::<f64>();
    let m: HashMap<u32, f64> = HashMap::new();
    0.0
}
";
        let r = run_all(&ws_of("crates/sparse/src/lib.rs", src));
        let l004: Vec<_> = r.findings.iter().filter(|f| f.lint == "L004").collect();
        // one par reduction + two HashMap mentions (decl line has two tokens
        // but findings are per (needle, line): HashMap appears on one line).
        assert_eq!(l004.len(), 2);
    }

    #[test]
    fn l004_ignores_nondeterministic_patterns_outside_promise_crates() {
        let src = "fn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let r = run_all(&ws_of("crates/grid/src/lib.rs", src));
        assert!(r.findings.is_empty());
    }

    #[test]
    fn l005_requires_safety_justification_for_unsafe() {
        let src = "\
// SAFETY: the slice outlives the derived pointer.
unsafe fn justified() {}

#[target_feature(enable = \"avx2\")]
unsafe fn attribute_without_comment() {}

// SAFETY: feature availability is checked by the dispatcher.
#[target_feature(enable = \"avx2\")]
unsafe fn justified_through_attribute() {}

fn call_sites() {
    let _a = unsafe { deref() }; // SAFETY: trailing justification counts.
    let _b = unsafe { deref() };
}
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        let l005: Vec<_> = r.findings.iter().filter(|f| f.lint == "L005").collect();
        assert_eq!(l005.len(), 2, "findings: {:#?}", r.findings);
        assert_eq!(l005[0].line, 5);
        assert_eq!(l005[1].line, 13);
    }

    #[test]
    fn l005_ignores_mentions_and_test_code() {
        let src = "\
// a comment mentioning unsafe code is invisible
fn lib() { let s = \"unsafe in a string\"; }
fn named() { let unsafe_free = 1; let _ = unsafe_free; }
#[cfg(test)]
mod tests {
    fn t() {
        let _ = unsafe { poke() };
    }
}
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        assert!(
            r.findings.iter().all(|f| f.lint != "L005"),
            "findings: {:#?}",
            r.findings
        );
    }

    #[test]
    fn allows_suppress_and_stale_allows_fail() {
        let src = "\
// lint: allow(L001, this invariant is structural)
fn lib() { let x = maybe().unwrap(); }
// lint: allow(L001, nothing here to suppress)
fn clean() {}
";
        let r = run_all(&ws_of("crates/x/src/lib.rs", src));
        assert!(r.findings.is_empty());
        assert_eq!(r.allows.len(), 1);
        assert_eq!(r.unused_allows.len(), 1);
        assert_eq!(r.exit_code(), 1);
    }

    #[test]
    fn doc_symbols_resolve_against_definitions() {
        let mut ws = ws_of("crates/x/src/lib.rs", "pub fn factor_supernodal() {}\n");
        ws.docs.push((
            "docs/TEST.md".into(),
            "Call `factor_supernodal()` but never `ghost_symbol()`.\n".into(),
        ));
        let r = run_all(&ws);
        assert_eq!(r.findings.len(), 1);
        assert!(r.findings[0].message.contains("ghost_symbol"));
    }
}
