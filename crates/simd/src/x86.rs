//! AVX2 and AVX-512 kernel backends, generated from one width-generic macro.
//!
//! Every function here is an `unsafe fn` gated on a `#[target_feature]`
//! attribute; the *only* safety obligation is that the named CPU feature is
//! present at runtime, which the dispatch layer in `lib.rs` verifies before
//! every call. All memory accesses are derived from slices with explicit
//! in-bounds arithmetic (`i + W <= len`, or `LANES`-sized row sub-slices),
//! so no kernel can read or write out of bounds even for malformed factor
//! inputs — those panic on the same asserts as the scalar kernels.
//!
//! Bit-identity with the scalar reference holds because the kernels use only
//! `mul`/`add`/`sub`/`div` intrinsics (IEEE-754 correctly rounded per lane,
//! never FMA-contracted) and keep each lane's operation order equal to the
//! scalar loop's.

/// Expands one complete kernel backend for a vector width of `$w` f64 lanes.
macro_rules! vector_backend {
    ($mod_name:ident, $feature:literal, $w:literal,
     $loadu:ident, $storeu:ident, $set1:ident,
     $add:ident, $sub:ident, $mul:ident, $div:ident) => {
        pub mod $mod_name {
            use core::arch::x86_64::*;

            /// f64 lanes per vector register for this backend.
            const W: usize = $w;
            /// Vector registers per interleaved row of `crate::LANES` lanes.
            const CHUNKS: usize = crate::LANES / $w;

            // These kernels run on the per-step transient path and inside
            // the supernodal factorisation; none of them may allocate.
            // lint: hot(simd-vector-kernels)

            // SAFETY: every function in this module requires only that the
            // `$feature` CPU feature is available at runtime; the dispatch
            // layer in lib.rs checks availability before each call.
            #[target_feature(enable = $feature)]
            pub unsafe fn axpy(y: &mut [f64], x: &[f64], c: f64) {
                let len = y.len().min(x.len());
                let cv = $set1(c);
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    $storeu(yp, $add($loadu(yp), $mul(cv, $loadu(x.as_ptr().add(i)))));
                    i += W;
                }
                while i < len {
                    y[i] += c * x[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn sub_axpy(y: &mut [f64], x: &[f64], c: f64) {
                let len = y.len().min(x.len());
                let cv = $set1(c);
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    $storeu(yp, $sub($loadu(yp), $mul(cv, $loadu(x.as_ptr().add(i)))));
                    i += W;
                }
                while i < len {
                    y[i] -= c * x[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn axpy4(ys: [&mut [f64]; 4], x: &[f64], cs: [f64; 4]) {
                let [y0, y1, y2, y3] = ys;
                let len = x
                    .len()
                    .min(y0.len())
                    .min(y1.len())
                    .min(y2.len())
                    .min(y3.len());
                let c0 = $set1(cs[0]);
                let c1 = $set1(cs[1]);
                let c2 = $set1(cs[2]);
                let c3 = $set1(cs[3]);
                let mut i = 0;
                while i + W <= len {
                    let xv = $loadu(x.as_ptr().add(i));
                    let p0 = y0.as_mut_ptr().add(i);
                    let p1 = y1.as_mut_ptr().add(i);
                    let p2 = y2.as_mut_ptr().add(i);
                    let p3 = y3.as_mut_ptr().add(i);
                    $storeu(p0, $add($loadu(p0), $mul(c0, xv)));
                    $storeu(p1, $add($loadu(p1), $mul(c1, xv)));
                    $storeu(p2, $add($loadu(p2), $mul(c2, xv)));
                    $storeu(p3, $add($loadu(p3), $mul(c3, xv)));
                    i += W;
                }
                while i < len {
                    let xv = x[i];
                    y0[i] += cs[0] * xv;
                    y1[i] += cs[1] * xv;
                    y2[i] += cs[2] * xv;
                    y3[i] += cs[3] * xv;
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn rank4_sub(y: &mut [f64], ts: [&[f64]; 4], cs: [f64; 4]) {
                let [t0, t1, t2, t3] = ts;
                let len = y
                    .len()
                    .min(t0.len())
                    .min(t1.len())
                    .min(t2.len())
                    .min(t3.len());
                let c0 = $set1(cs[0]);
                let c1 = $set1(cs[1]);
                let c2 = $set1(cs[2]);
                let c3 = $set1(cs[3]);
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    let s01 = $add(
                        $mul(c0, $loadu(t0.as_ptr().add(i))),
                        $mul(c1, $loadu(t1.as_ptr().add(i))),
                    );
                    let s012 = $add(s01, $mul(c2, $loadu(t2.as_ptr().add(i))));
                    let s = $add(s012, $mul(c3, $loadu(t3.as_ptr().add(i))));
                    $storeu(yp, $sub($loadu(yp), s));
                    i += W;
                }
                while i < len {
                    y[i] -= cs[0] * t0[i] + cs[1] * t1[i] + cs[2] * t2[i] + cs[3] * t3[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn div_assign(y: &mut [f64], d: f64) {
                let len = y.len();
                let dv = $set1(d);
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    $storeu(yp, $div($loadu(yp), dv));
                    i += W;
                }
                while i < len {
                    y[i] /= d;
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn scale_assign(y: &mut [f64], s: f64) {
                let len = y.len();
                let sv = $set1(s);
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    $storeu(yp, $mul($loadu(yp), sv));
                    i += W;
                }
                while i < len {
                    y[i] *= s;
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn add_assign(y: &mut [f64], x: &[f64]) {
                let len = y.len().min(x.len());
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    $storeu(yp, $add($loadu(yp), $loadu(x.as_ptr().add(i))));
                    i += W;
                }
                while i < len {
                    y[i] += x[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn add2_assign(y: &mut [f64], a: &[f64], b: &[f64]) {
                let len = y.len().min(a.len()).min(b.len());
                let mut i = 0;
                while i + W <= len {
                    let yp = y.as_mut_ptr().add(i);
                    let s = $add($loadu(a.as_ptr().add(i)), $loadu(b.as_ptr().add(i)));
                    $storeu(yp, $add($loadu(yp), s));
                    i += W;
                }
                while i < len {
                    y[i] += a[i] + b[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn weighted_sum3(out: &mut [f64], srcs: [&[f64]; 3], ws: [f64; 3]) {
                let [a, b, d] = srcs;
                let len = out.len().min(a.len()).min(b.len()).min(d.len());
                let wa = $set1(ws[0]);
                let wb = $set1(ws[1]);
                let wd = $set1(ws[2]);
                let mut i = 0;
                while i + W <= len {
                    let s = $add(
                        $add(
                            $mul(wa, $loadu(a.as_ptr().add(i))),
                            $mul(wb, $loadu(b.as_ptr().add(i))),
                        ),
                        $mul(wd, $loadu(d.as_ptr().add(i))),
                    );
                    $storeu(out.as_mut_ptr().add(i), s);
                    i += W;
                }
                while i < len {
                    out[i] = ws[0] * a[i] + ws[1] * b[i] + ws[2] * d[i];
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); all accesses bounded by `i + W <= len`.
            #[target_feature(enable = $feature)]
            pub unsafe fn welford_update(
                mean: &mut [f64],
                m2: &mut [f64],
                sample: &[f64],
                count: f64,
            ) {
                let len = mean.len().min(m2.len()).min(sample.len());
                let cv = $set1(count);
                let mut i = 0;
                while i + W <= len {
                    let mp = mean.as_mut_ptr().add(i);
                    let qp = m2.as_mut_ptr().add(i);
                    let sv = $loadu(sample.as_ptr().add(i));
                    let mv = $loadu(mp);
                    let delta = $sub(sv, mv);
                    let mnew = $add(mv, $div(delta, cv));
                    $storeu(mp, mnew);
                    $storeu(qp, $add($loadu(qp), $mul(delta, $sub(sv, mnew))));
                    i += W;
                }
                while i < len {
                    let delta = sample[i] - mean[i];
                    mean[i] += delta / count;
                    m2[i] += delta * (sample[i] - mean[i]);
                    i += 1;
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); row sub-slices have exactly `crate::LANES`
            // elements, so chunk offsets `c * W + W <= LANES` stay in
            // bounds; factor indices are bounds-checked by the slicing.
            #[target_feature(enable = $feature)]
            pub unsafe fn lower_solve_interleaved(
                indptr: &[usize],
                indices: &[usize],
                data: &[f64],
                n: usize,
                x: &mut [f64],
            ) {
                const LANES: usize = crate::LANES;
                assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
                for j in 0..n {
                    let start = indptr[j];
                    let end = indptr[j + 1];
                    assert!(
                        start < end && indices[start] == j,
                        "missing diagonal entry in lower triangular column {j}"
                    );
                    let d = $set1(data[start]);
                    let mut xv = [$set1(0.0); CHUNKS];
                    {
                        let row = &mut x[j * LANES..(j + 1) * LANES];
                        for (c, slot) in xv.iter_mut().enumerate() {
                            let p = row.as_mut_ptr().add(c * W);
                            *slot = $div($loadu(p), d);
                            $storeu(p, *slot);
                        }
                    }
                    for e in start + 1..end {
                        let i = indices[e];
                        let v = $set1(data[e]);
                        let row = &mut x[i * LANES..(i + 1) * LANES];
                        for (c, xc) in xv.iter().enumerate() {
                            let p = row.as_mut_ptr().add(c * W);
                            $storeu(p, $sub($loadu(p), $mul(v, *xc)));
                        }
                    }
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); same in-bounds argument as
            // `lower_solve_interleaved`.
            #[target_feature(enable = $feature)]
            pub unsafe fn lower_transpose_solve_interleaved(
                indptr: &[usize],
                indices: &[usize],
                data: &[f64],
                n: usize,
                x: &mut [f64],
            ) {
                const LANES: usize = crate::LANES;
                assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
                for j in (0..n).rev() {
                    let start = indptr[j];
                    let end = indptr[j + 1];
                    assert!(
                        start < end && indices[start] == j,
                        "missing diagonal entry in lower triangular column {j}"
                    );
                    let mut acc = [$set1(0.0); CHUNKS];
                    {
                        let row = &x[j * LANES..(j + 1) * LANES];
                        for (c, slot) in acc.iter_mut().enumerate() {
                            *slot = $loadu(row.as_ptr().add(c * W));
                        }
                    }
                    for e in start + 1..end {
                        let i = indices[e];
                        let v = $set1(data[e]);
                        let row = &x[i * LANES..(i + 1) * LANES];
                        for (c, slot) in acc.iter_mut().enumerate() {
                            *slot = $sub(*slot, $mul(v, $loadu(row.as_ptr().add(c * W))));
                        }
                    }
                    let d = $set1(data[start]);
                    let row = &mut x[j * LANES..(j + 1) * LANES];
                    for (c, slot) in acc.iter().enumerate() {
                        $storeu(row.as_mut_ptr().add(c * W), $div(*slot, d));
                    }
                }
            }

            // SAFETY: requires only the `$feature` CPU feature (checked by
            // the dispatcher); same in-bounds argument as
            // `lower_solve_interleaved`.
            #[target_feature(enable = $feature)]
            pub unsafe fn upper_solve_interleaved(
                indptr: &[usize],
                indices: &[usize],
                data: &[f64],
                n: usize,
                x: &mut [f64],
            ) {
                const LANES: usize = crate::LANES;
                assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
                for j in (0..n).rev() {
                    let start = indptr[j];
                    let end = indptr[j + 1];
                    assert!(
                        start < end && indices[end - 1] == j,
                        "missing diagonal entry in upper triangular column {j}"
                    );
                    let d = $set1(data[end - 1]);
                    let mut xv = [$set1(0.0); CHUNKS];
                    {
                        let row = &mut x[j * LANES..(j + 1) * LANES];
                        for (c, slot) in xv.iter_mut().enumerate() {
                            let p = row.as_mut_ptr().add(c * W);
                            *slot = $div($loadu(p), d);
                            $storeu(p, *slot);
                        }
                    }
                    for e in start..end - 1 {
                        let i = indices[e];
                        let v = $set1(data[e]);
                        let row = &mut x[i * LANES..(i + 1) * LANES];
                        for (c, xc) in xv.iter().enumerate() {
                            let p = row.as_mut_ptr().add(c * W);
                            $storeu(p, $sub($loadu(p), $mul(v, *xc)));
                        }
                    }
                }
            }

            // lint: end-hot
        }
    };
}

vector_backend!(
    avx2,
    "avx2",
    4,
    _mm256_loadu_pd,
    _mm256_storeu_pd,
    _mm256_set1_pd,
    _mm256_add_pd,
    _mm256_sub_pd,
    _mm256_mul_pd,
    _mm256_div_pd
);

vector_backend!(
    avx512,
    "avx512f",
    8,
    _mm512_loadu_pd,
    _mm512_storeu_pd,
    _mm512_set1_pd,
    _mm512_add_pd,
    _mm512_sub_pd,
    _mm512_mul_pd,
    _mm512_div_pd
);
