//! Runtime-dispatched vector kernels for the OPERA hot loops.
//!
//! This crate is the workspace's single SIMD surface: a **safe** API over
//! three interchangeable backends —
//!
//! * [`Backend::Scalar`] — plain Rust reference kernels, the bit-identity
//!   baseline the whole test suite is built on (and the only backend on
//!   non-x86 targets),
//! * [`Backend::Avx2`] — 4-lane `f64` kernels behind
//!   `#[target_feature(enable = "avx2")]`,
//! * [`Backend::Avx512`] — 8-lane `f64` kernels behind
//!   `#[target_feature(enable = "avx512f")]`.
//!
//! # Dispatch model
//!
//! Availability is detected at runtime with `is_x86_feature_detected!` (the
//! standard library caches the CPUID probe, so [`Backend::is_available`] is
//! an atomic load after the first call). Every public kernel takes an
//! explicit [`Backend`] argument and silently falls back to scalar when the
//! requested backend is not available on the executing CPU — that check is
//! what keeps the API safe to call with *any* `Backend` value.
//!
//! The process-wide choice lives in [`active`]/[`set_active`]: `active()`
//! reads the `OPERA_SIMD` environment variable (`auto`, `avx512`, `avx2` or
//! `scalar`) exactly once and caches the answer; unrecognised or unavailable
//! values fall back to [`Backend::Scalar`], which is also the default when
//! the variable is unset — **scalar remains the reference path unless SIMD
//! is opted into**. Engine-level code overrides the cached choice through
//! [`set_active`] (the `EngineBuilder` knob).
//!
//! # Equivalence policy
//!
//! Every vector kernel is **bit-identical** to its scalar reference — the
//! pinned ULP budget is zero. Two rules make that possible:
//!
//! 1. lanes run along an axis whose elements the scalar kernel treats
//!    independently (the RHS column of an interleaved panel strip, or the
//!    element index of an axpy/fold), so no floating-point reduction order
//!    changes; and
//! 2. no FMA contraction — kernels use only `mul`/`add`/`sub`/`div`
//!    intrinsics, each of which is IEEE-754 correctly rounded per lane,
//!    exactly like the scalar `*`/`+`/`-`//` the reference path executes.
//!
//! Equivalence is enforced by unit tests here, by the property suite in
//! `tests/property_simd.rs`, and by the CI matrix that re-runs the kernel
//! tests under `OPERA_SIMD=scalar|avx2|auto`.

#![deny(missing_docs)]

mod aligned;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use aligned::AlignedVec;

use std::sync::atomic::{AtomicU8, Ordering};

/// Lane count of the interleaved panel kernels: one row of the interleaved
/// scratch holds the values of [`LANES`] right-hand sides for one unknown.
/// Matches the 8-wide RHS strips of `opera_sparse`'s blocked panel solves
/// and fills exactly one AVX-512 register (two AVX2 registers).
pub const LANES: usize = 8;

/// Byte alignment of [`AlignedVec`] storage: one cache line, which is also
/// the natural alignment of a full 8-lane `f64` AVX-512 register.
pub const ALIGN: usize = 64;

/// A vector kernel backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Plain Rust reference kernels; always available, bit-identity baseline.
    Scalar,
    /// 256-bit kernels (4 × f64) requiring the `avx2` CPU feature.
    Avx2,
    /// 512-bit kernels (8 × f64) requiring the `avx512f` CPU feature.
    Avx512,
}

impl Backend {
    /// All backends, scalar first.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Avx2, Backend::Avx512];

    /// Stable lower-case name, matching the `OPERA_SIMD` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// `f64` lanes processed per vector operation (1 for scalar).
    pub fn width(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Avx2 => 4,
            Backend::Avx512 => 8,
        }
    }

    /// Whether the executing CPU supports this backend. Scalar is always
    /// available; on non-x86 targets the vector backends never are.
    pub fn is_available(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The widest backend the executing CPU supports (what `OPERA_SIMD=auto`
/// resolves to).
pub fn detect_best() -> Backend {
    if Backend::Avx512.is_available() {
        Backend::Avx512
    } else if Backend::Avx2.is_available() {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// Every backend available on the executing CPU, scalar first.
pub fn available_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Parses an `OPERA_SIMD`-style selector. `auto` resolves to
/// [`detect_best`]; naming a backend the CPU lacks is an error (callers in
/// infallible positions fall back to scalar instead).
pub fn parse_backend(s: &str) -> Result<Backend, String> {
    let backend = match s.trim().to_ascii_lowercase().as_str() {
        "auto" => return Ok(detect_best()),
        "scalar" => Backend::Scalar,
        "avx2" => Backend::Avx2,
        "avx512" => Backend::Avx512,
        other => {
            return Err(format!(
                "unknown SIMD backend `{other}` (expected auto|avx512|avx2|scalar)"
            ))
        }
    };
    if !backend.is_available() {
        return Err(format!(
            "SIMD backend `{}` is not available on this CPU",
            backend.name()
        ));
    }
    Ok(backend)
}

/// Sentinel: the process-wide choice has not been resolved yet.
const ACTIVE_UNSET: u8 = u8::MAX;

/// Process-wide active backend, cached after the first [`active`] call.
static ACTIVE: AtomicU8 = AtomicU8::new(ACTIVE_UNSET);

fn encode(b: Backend) -> u8 {
    match b {
        Backend::Scalar => 0,
        Backend::Avx2 => 1,
        Backend::Avx512 => 2,
    }
}

fn decode(v: u8) -> Backend {
    match v {
        1 => Backend::Avx2,
        2 => Backend::Avx512,
        _ => Backend::Scalar,
    }
}

/// The process-wide active backend.
///
/// Resolved lazily on first call from the `OPERA_SIMD` environment variable
/// (`auto|avx512|avx2|scalar`); unset, unrecognised or unavailable values
/// all resolve to [`Backend::Scalar`] — the bit-identity reference stays the
/// default unless SIMD is explicitly opted into. The resolution is cached;
/// later env changes have no effect, but [`set_active`] overrides it.
pub fn active() -> Backend {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != ACTIVE_UNSET {
        return decode(v);
    }
    let resolved = match std::env::var("OPERA_SIMD") {
        Ok(s) => parse_backend(&s).unwrap_or(Backend::Scalar),
        Err(_) => Backend::Scalar,
    };
    ACTIVE.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Overrides the process-wide active backend (the engine-builder knob and
/// the benchmark harness use this). Errors when the backend is not
/// available on the executing CPU; on success returns the backend now
/// active.
pub fn set_active(backend: Backend) -> Result<Backend, String> {
    if !backend.is_available() {
        return Err(format!(
            "SIMD backend `{}` is not available on this CPU",
            backend.name()
        ));
    }
    ACTIVE.store(encode(backend), Ordering::Relaxed);
    Ok(backend)
}

/// Clamps a requested backend to what the CPU can actually run.
fn effective(backend: Backend) -> Backend {
    if backend.is_available() {
        backend
    } else {
        Backend::Scalar
    }
}

/// Dispatches one kernel to the requested backend, falling back to scalar
/// when the backend is unavailable (which is what makes the wrappers safe).
macro_rules! dispatch_kernel {
    ($backend:expr, $fn:ident($($arg:expr),* $(,)?)) => {{
        match effective($backend) {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returns Avx2 only when runtime feature
            // detection confirmed `avx2` on the executing CPU.
            Backend::Avx2 => unsafe { x86::avx2::$fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `effective` returns Avx512 only when runtime feature
            // detection confirmed `avx512f` on the executing CPU.
            Backend::Avx512 => unsafe { x86::avx512::$fn($($arg),*) },
            _ => scalar::$fn($($arg),*),
        }
    }};
}

/// `y[i] += c * x[i]` over the common prefix of `y` and `x`.
pub fn axpy(y: &mut [f64], x: &[f64], c: f64, backend: Backend) {
    dispatch_kernel!(backend, axpy(y, x, c))
}

/// `y[i] -= c * x[i]` over the common prefix of `y` and `x`.
pub fn sub_axpy(y: &mut [f64], x: &[f64], c: f64, backend: Backend) {
    dispatch_kernel!(backend, sub_axpy(y, x, c))
}

/// Four simultaneous axpys off one shared source: `ys[b][i] += cs[b] * x[i]`
/// for `b` in `0..4`, over the common prefix of every destination and `x`.
/// The supernodal descendant update's 4-column register block.
pub fn axpy4(ys: [&mut [f64]; 4], x: &[f64], cs: [f64; 4], backend: Backend) {
    dispatch_kernel!(backend, axpy4(ys, x, cs))
}

/// Rank-4 update `y[i] -= ((cs[0]*ts[0][i] + cs[1]*ts[1][i]) + cs[2]*ts[2][i]) + cs[3]*ts[3][i]`
/// over the common prefix — the dense-Cholesky panel update's inner loop,
/// with the scalar left-to-right summation order preserved per lane.
pub fn rank4_sub(y: &mut [f64], ts: [&[f64]; 4], cs: [f64; 4], backend: Backend) {
    dispatch_kernel!(backend, rank4_sub(y, ts, cs))
}

/// `y[i] /= d` over all of `y`.
pub fn div_assign(y: &mut [f64], d: f64, backend: Backend) {
    dispatch_kernel!(backend, div_assign(y, d))
}

/// `y[i] *= s` over all of `y`.
pub fn scale_assign(y: &mut [f64], s: f64, backend: Backend) {
    dispatch_kernel!(backend, scale_assign(y, s))
}

/// `y[i] += x[i]` over the common prefix of `y` and `x`.
pub fn add_assign(y: &mut [f64], x: &[f64], backend: Backend) {
    dispatch_kernel!(backend, add_assign(y, x))
}

/// `y[i] += a[i] + b[i]` over the common prefix of all three slices.
pub fn add2_assign(y: &mut [f64], a: &[f64], b: &[f64], backend: Backend) {
    dispatch_kernel!(backend, add2_assign(y, a, b))
}

/// Three-term weighted combination
/// `out[i] = (ws[0]*srcs[0][i] + ws[1]*srcs[1][i]) + ws[2]*srcs[2][i]`
/// over the common prefix — the TR-BDF2 dense-output interpolant and the
/// embedded error estimate share this shape.
pub fn weighted_sum3(out: &mut [f64], srcs: [&[f64]; 3], ws: [f64; 3], backend: Backend) {
    dispatch_kernel!(backend, weighted_sum3(out, srcs, ws))
}

/// One Welford fold step over a sample row: per element,
/// `delta = sample[i] - mean[i]; mean[i] += delta / count;
/// m2[i] += delta * (sample[i] - mean[i])`, over the common prefix.
pub fn welford_update(
    mean: &mut [f64],
    m2: &mut [f64],
    sample: &[f64],
    count: f64,
    backend: Backend,
) {
    dispatch_kernel!(backend, welford_update(mean, m2, sample, count))
}

/// Forward substitution `L·X = B` on an interleaved panel strip: `x` is
/// row-major `n × LANES` (row `j` holds unknown `j` of all [`LANES`]
/// right-hand sides), `L` is CSC with the diagonal stored **first** in each
/// column. Per lane this performs exactly the scalar kernel's operations in
/// the scalar order.
///
/// # Panics
///
/// Panics if `x.len() != n * LANES`, if a diagonal entry is missing, or if
/// the factor arrays are inconsistent.
pub fn lower_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
    backend: Backend,
) {
    dispatch_kernel!(
        backend,
        lower_solve_interleaved(indptr, indices, data, n, x)
    )
}

/// Backward substitution `Lᵀ·X = B` on an interleaved panel strip (same
/// layout and factor convention as [`lower_solve_interleaved`]).
///
/// # Panics
///
/// Panics under the same conditions as [`lower_solve_interleaved`].
pub fn lower_transpose_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
    backend: Backend,
) {
    dispatch_kernel!(
        backend,
        lower_transpose_solve_interleaved(indptr, indices, data, n, x)
    )
}

/// Backward substitution `U·X = B` on an interleaved panel strip, for upper
/// triangular `U` in CSC with the diagonal stored **last** in each column.
///
/// # Panics
///
/// Panics under the same conditions as [`lower_solve_interleaved`].
pub fn upper_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
    backend: Backend,
) {
    dispatch_kernel!(
        backend,
        upper_solve_interleaved(indptr, indices, data, n, x)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: f64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as f64 + seed) * 0.731).sin() * 3.0)
            .collect()
    }

    /// A small dense lower-triangular factor in CSC form (diag first).
    fn lower_factor(n: usize) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let mut indptr = vec![0];
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for j in 0..n {
            indices.push(j);
            data.push(2.0 + (j as f64 * 0.37).cos().abs());
            for i in (j + 1)..n {
                if (i + j) % 3 != 0 {
                    continue;
                }
                indices.push(i);
                data.push(((i * 7 + j) as f64 * 0.19).sin());
            }
            indptr.push(indices.len());
        }
        (indptr, indices, data)
    }

    /// The same factor transposed into upper CSC form (diag last).
    fn upper_of(
        lower: &(Vec<usize>, Vec<usize>, Vec<f64>),
        n: usize,
    ) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let (lp, li, lv) = lower;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for j in 0..n {
            for p in lp[j]..lp[j + 1] {
                cols[li[p]].push((j, lv[p]));
            }
        }
        let mut indptr = vec![0];
        let mut indices = Vec::new();
        let mut data = Vec::new();
        for col in cols {
            for (i, v) in col {
                indices.push(i);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        (indptr, indices, data)
    }

    #[test]
    fn detection_is_consistent() {
        let best = detect_best();
        assert!(best.is_available());
        assert!(available_backends().contains(&Backend::Scalar));
        assert_eq!(parse_backend("auto"), Ok(best));
        assert_eq!(parse_backend("scalar"), Ok(Backend::Scalar));
        assert!(parse_backend("neon").is_err());
    }

    #[test]
    fn unavailable_backends_fall_back_to_scalar_results() {
        // Whatever the CPU supports, calling through any Backend value must
        // produce the scalar answer bit-for-bit (available backends by the
        // no-FMA/lane-order rules, unavailable ones by fallback).
        for backend in Backend::ALL {
            let mut y = vals(37, 1.0);
            let x = vals(37, 2.0);
            let mut reference = y.clone();
            scalar::axpy(&mut reference, &x, 1.25);
            axpy(&mut y, &x, 1.25, backend);
            assert_eq!(y, reference, "backend {backend}");
        }
    }

    #[test]
    fn elementwise_kernels_match_scalar_bit_for_bit() {
        for backend in available_backends() {
            for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 101] {
                let x = vals(n, 3.0);
                let a = vals(n, 4.0);
                let b = vals(n, 5.0);
                let d = vals(n, 6.0);

                let mut y0 = vals(n, 7.0);
                let mut y1 = y0.clone();
                scalar::sub_axpy(&mut y0, &x, 0.73);
                sub_axpy(&mut y1, &x, 0.73, backend);
                assert_eq!(y0, y1, "sub_axpy {backend} n={n}");

                let mut y0 = vals(n, 8.0);
                let mut y1 = y0.clone();
                scalar::rank4_sub(&mut y0, [&x, &a, &b, &d], [0.1, -0.2, 0.3, -0.4]);
                rank4_sub(&mut y1, [&x, &a, &b, &d], [0.1, -0.2, 0.3, -0.4], backend);
                assert_eq!(y0, y1, "rank4_sub {backend} n={n}");

                let mut y0 = vals(n, 9.0);
                let mut y1 = y0.clone();
                scalar::div_assign(&mut y0, 1.7);
                div_assign(&mut y1, 1.7, backend);
                assert_eq!(y0, y1, "div_assign {backend} n={n}");

                let mut y0 = vals(n, 10.0);
                let mut y1 = y0.clone();
                scalar::scale_assign(&mut y0, -0.3);
                scale_assign(&mut y1, -0.3, backend);
                assert_eq!(y0, y1, "scale_assign {backend} n={n}");

                let mut y0 = vals(n, 11.0);
                let mut y1 = y0.clone();
                scalar::add_assign(&mut y0, &x);
                add_assign(&mut y1, &x, backend);
                assert_eq!(y0, y1, "add_assign {backend} n={n}");

                let mut y0 = vals(n, 12.0);
                let mut y1 = y0.clone();
                scalar::add2_assign(&mut y0, &a, &b);
                add2_assign(&mut y1, &a, &b, backend);
                assert_eq!(y0, y1, "add2_assign {backend} n={n}");

                let mut o0 = vec![0.0; n];
                let mut o1 = vec![1.0; n];
                scalar::weighted_sum3(&mut o0, [&a, &b, &d], [0.25, -1.5, 2.0]);
                weighted_sum3(&mut o1, [&a, &b, &d], [0.25, -1.5, 2.0], backend);
                assert_eq!(o0, o1, "weighted_sum3 {backend} n={n}");

                let mut mean0 = vals(n, 13.0);
                let mut m20 = vals(n, 14.0).iter().map(|v| v.abs()).collect::<Vec<_>>();
                let mut mean1 = mean0.clone();
                let mut m21 = m20.clone();
                scalar::welford_update(&mut mean0, &mut m20, &x, 5.0);
                welford_update(&mut mean1, &mut m21, &x, 5.0, backend);
                assert_eq!(mean0, mean1, "welford mean {backend} n={n}");
                assert_eq!(m20, m21, "welford m2 {backend} n={n}");

                let mut y0a = vals(n, 15.0);
                let mut y1a = vals(n, 16.0);
                let mut y2a = vals(n, 17.0);
                let mut y3a = vals(n, 18.0);
                let mut y0b = y0a.clone();
                let mut y1b = y1a.clone();
                let mut y2b = y2a.clone();
                let mut y3b = y3a.clone();
                let cs = [0.9, -0.8, 0.7, -0.6];
                scalar::axpy4([&mut y0a, &mut y1a, &mut y2a, &mut y3a], &x, cs);
                axpy4([&mut y0b, &mut y1b, &mut y2b, &mut y3b], &x, cs, backend);
                assert_eq!(
                    (y0a, y1a, y2a, y3a),
                    (y0b, y1b, y2b, y3b),
                    "axpy4 {backend} n={n}"
                );
            }
        }
    }

    #[test]
    fn interleaved_triangular_kernels_match_scalar_bit_for_bit() {
        for backend in available_backends() {
            for n in [1usize, 2, 5, 8, 13, 40] {
                let lower = lower_factor(n);
                let upper = upper_of(&lower, n);
                let b = vals(n * LANES, 20.0);

                let mut x0 = b.clone();
                let mut x1 = b.clone();
                scalar::lower_solve_interleaved(&lower.0, &lower.1, &lower.2, n, &mut x0);
                lower_solve_interleaved(&lower.0, &lower.1, &lower.2, n, &mut x1, backend);
                assert_eq!(x0, x1, "lower {backend} n={n}");

                let mut x0 = b.clone();
                let mut x1 = b.clone();
                scalar::lower_transpose_solve_interleaved(&lower.0, &lower.1, &lower.2, n, &mut x0);
                lower_transpose_solve_interleaved(
                    &lower.0, &lower.1, &lower.2, n, &mut x1, backend,
                );
                assert_eq!(x0, x1, "lower-transpose {backend} n={n}");

                let mut x0 = b.clone();
                let mut x1 = b.clone();
                scalar::upper_solve_interleaved(&upper.0, &upper.1, &upper.2, n, &mut x0);
                upper_solve_interleaved(&upper.0, &upper.1, &upper.2, n, &mut x1, backend);
                assert_eq!(x0, x1, "upper {backend} n={n}");
            }
        }
    }

    #[test]
    fn set_active_rejects_unavailable_backends_only() {
        assert_eq!(set_active(Backend::Scalar), Ok(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        for backend in Backend::ALL {
            if backend.is_available() {
                assert_eq!(set_active(backend), Ok(backend));
                assert_eq!(active(), backend);
            } else {
                assert!(set_active(backend).is_err());
            }
        }
        // Leave the reference default behind for other tests in the process.
        let _ = set_active(Backend::Scalar);
    }
}
