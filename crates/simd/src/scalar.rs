//! Scalar reference kernels: the bit-identity baseline every vector backend
//! must reproduce exactly (zero-ULP budget). These are plain Rust loops with
//! the same per-element operation order as the original hand-written hot
//! loops they replaced, so routing a call site through
//! [`crate::axpy`]-style dispatch with [`crate::Backend::Scalar`] is a
//! refactor, not a numerical change.

// The kernels below run on the per-step transient path and inside the
// supernodal factorisation; none of them may allocate.
// lint: hot(simd-scalar-kernels)

/// `y[i] += c * x[i]` over the common prefix.
pub fn axpy(y: &mut [f64], x: &[f64], c: f64) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += c * xv;
    }
}

/// `y[i] -= c * x[i]` over the common prefix.
pub fn sub_axpy(y: &mut [f64], x: &[f64], c: f64) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv -= c * xv;
    }
}

/// Four axpys off one shared source: `ys[b][i] += cs[b] * x[i]`.
pub fn axpy4(ys: [&mut [f64]; 4], x: &[f64], cs: [f64; 4]) {
    let [y0, y1, y2, y3] = ys;
    let len = x
        .len()
        .min(y0.len())
        .min(y1.len())
        .min(y2.len())
        .min(y3.len());
    for i in 0..len {
        let xv = x[i];
        y0[i] += cs[0] * xv;
        y1[i] += cs[1] * xv;
        y2[i] += cs[2] * xv;
        y3[i] += cs[3] * xv;
    }
}

/// Rank-4 update with left-to-right summation:
/// `y[i] -= ((cs[0]*ts[0][i] + cs[1]*ts[1][i]) + cs[2]*ts[2][i]) + cs[3]*ts[3][i]`.
pub fn rank4_sub(y: &mut [f64], ts: [&[f64]; 4], cs: [f64; 4]) {
    let [t0, t1, t2, t3] = ts;
    let len = y
        .len()
        .min(t0.len())
        .min(t1.len())
        .min(t2.len())
        .min(t3.len());
    for i in 0..len {
        y[i] -= cs[0] * t0[i] + cs[1] * t1[i] + cs[2] * t2[i] + cs[3] * t3[i];
    }
}

/// `y[i] /= d`.
pub fn div_assign(y: &mut [f64], d: f64) {
    for v in y {
        *v /= d;
    }
}

/// `y[i] *= s`.
pub fn scale_assign(y: &mut [f64], s: f64) {
    for v in y {
        *v *= s;
    }
}

/// `y[i] += x[i]` over the common prefix.
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += xv;
    }
}

/// `y[i] += a[i] + b[i]` over the common prefix.
pub fn add2_assign(y: &mut [f64], a: &[f64], b: &[f64]) {
    for ((yv, &av), &bv) in y.iter_mut().zip(a).zip(b) {
        *yv += av + bv;
    }
}

/// `out[i] = (ws[0]*srcs[0][i] + ws[1]*srcs[1][i]) + ws[2]*srcs[2][i]`.
pub fn weighted_sum3(out: &mut [f64], srcs: [&[f64]; 3], ws: [f64; 3]) {
    let [a, b, d] = srcs;
    for (((o, &av), &bv), &dv) in out.iter_mut().zip(a).zip(b).zip(d) {
        *o = ws[0] * av + ws[1] * bv + ws[2] * dv;
    }
}

/// One Welford fold step over a sample row.
pub fn welford_update(mean: &mut [f64], m2: &mut [f64], sample: &[f64], count: f64) {
    for ((m, q), &v) in mean.iter_mut().zip(m2.iter_mut()).zip(sample) {
        let delta = v - *m;
        *m += delta / count;
        *q += delta * (v - *m);
    }
}

/// Forward substitution `L·X = B` on a row-major `n × LANES` interleaved
/// strip (see [`crate::lower_solve_interleaved`]). Diagonal first per CSC
/// column.
///
/// # Panics
///
/// Panics on shape mismatch or a missing diagonal entry.
pub fn lower_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
) {
    const LANES: usize = crate::LANES;
    assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
    for j in 0..n {
        let start = indptr[j];
        let end = indptr[j + 1];
        assert!(
            start < end && indices[start] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let d = data[start];
        let mut xr = [0.0; LANES];
        for (c, slot) in xr.iter_mut().enumerate() {
            *slot = x[j * LANES + c] / d;
            x[j * LANES + c] = *slot;
        }
        for e in start + 1..end {
            let i = indices[e];
            let v = data[e];
            let row = &mut x[i * LANES..(i + 1) * LANES];
            for (rv, &xc) in row.iter_mut().zip(&xr) {
                *rv -= v * xc;
            }
        }
    }
}

/// Backward substitution `Lᵀ·X = B` on an interleaved strip (see
/// [`crate::lower_transpose_solve_interleaved`]).
///
/// # Panics
///
/// Panics on shape mismatch or a missing diagonal entry.
pub fn lower_transpose_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
) {
    const LANES: usize = crate::LANES;
    assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
    for j in (0..n).rev() {
        let start = indptr[j];
        let end = indptr[j + 1];
        assert!(
            start < end && indices[start] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let mut acc = [0.0; LANES];
        for (c, slot) in acc.iter_mut().enumerate() {
            *slot = x[j * LANES + c];
        }
        for e in start + 1..end {
            let i = indices[e];
            let v = data[e];
            let row = &x[i * LANES..(i + 1) * LANES];
            for (slot, &rv) in acc.iter_mut().zip(row) {
                *slot -= v * rv;
            }
        }
        let d = data[start];
        for (c, slot) in acc.iter().enumerate() {
            x[j * LANES + c] = *slot / d;
        }
    }
}

/// Backward substitution `U·X = B` on an interleaved strip, diagonal last
/// per CSC column (see [`crate::upper_solve_interleaved`]).
///
/// # Panics
///
/// Panics on shape mismatch or a missing diagonal entry.
pub fn upper_solve_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    x: &mut [f64],
) {
    const LANES: usize = crate::LANES;
    assert_eq!(x.len(), n * LANES, "interleaved strip length mismatch");
    for j in (0..n).rev() {
        let start = indptr[j];
        let end = indptr[j + 1];
        assert!(
            start < end && indices[end - 1] == j,
            "missing diagonal entry in upper triangular column {j}"
        );
        let d = data[end - 1];
        let mut xr = [0.0; LANES];
        for (c, slot) in xr.iter_mut().enumerate() {
            *slot = x[j * LANES + c] / d;
            x[j * LANES + c] = *slot;
        }
        for e in start..end - 1 {
            let i = indices[e];
            let v = data[e];
            let row = &mut x[i * LANES..(i + 1) * LANES];
            for (rv, &xc) in row.iter_mut().zip(&xr) {
                *rv -= v * xc;
            }
        }
    }
}

// lint: end-hot
