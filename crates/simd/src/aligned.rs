//! 64-byte-aligned `f64` storage for the vector kernels.
//!
//! [`AlignedVec`] keeps its logical contents starting on a 64-byte boundary
//! (one cache line, one AVX-512 register) without any unsafe code or custom
//! allocator: it over-allocates a plain `Vec<f64>` by up to
//! [`crate::ALIGN`]` / 8` slots and offsets the logical window to the first
//! aligned element, recomputing the offset whenever the buffer moves.

use crate::ALIGN;

/// Spare `f64` slots needed to guarantee a 64-byte-aligned window inside an
/// 8-byte-aligned allocation.
const PAD: usize = ALIGN / std::mem::size_of::<f64>();

/// A contiguous `f64` buffer whose contents start on a 64-byte boundary.
///
/// The logical contents are `as_slice()`; `len()` is their length. Empty
/// buffers make no alignment promise (there is nothing to load).
///
/// # Example
///
/// ```
/// use opera_simd::AlignedVec;
///
/// let mut v = AlignedVec::zeroed(5);
/// v.as_mut_slice()[3] = 2.5;
/// assert_eq!(v.len(), 5);
/// assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0, 2.5, 0.0]);
/// assert_eq!(v.as_slice().as_ptr() as usize % 64, 0);
/// ```
#[derive(Default)]
pub struct AlignedVec {
    /// Backing storage; the logical window is `raw[offset..offset + len]`
    /// and `raw.len() == offset + len` always holds.
    raw: Vec<f64>,
    offset: usize,
    len: usize,
}

impl AlignedVec {
    /// An empty buffer; storage is allocated on first growth.
    pub fn new() -> Self {
        AlignedVec::default()
    }

    /// An aligned buffer of `len` zeros.
    pub fn zeroed(len: usize) -> Self {
        let mut v = AlignedVec::new();
        v.resize(len);
        v
    }

    /// Takes ownership of an existing buffer, shifting its contents in
    /// place (one `memmove` of at most the buffer) so they start on a
    /// 64-byte boundary.
    pub fn from_vec(mut raw: Vec<f64>) -> Self {
        let len = raw.len();
        raw.reserve_exact(PAD);
        let offset = Self::offset_of(raw.as_ptr());
        raw.resize(offset + len, 0.0);
        raw.copy_within(0..len, offset);
        AlignedVec { raw, offset, len }
    }

    /// Consumes the buffer back into a plain `Vec<f64>` of the logical
    /// contents (shifting them back to the front in place).
    pub fn into_vec(mut self) -> Vec<f64> {
        self.raw.copy_within(self.offset..self.offset + self.len, 0);
        self.raw.truncate(self.len);
        self.raw
    }

    /// Logical length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The logical contents.
    pub fn as_slice(&self) -> &[f64] {
        &self.raw[self.offset..self.offset + self.len]
    }

    /// The logical contents, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.raw[self.offset..self.offset + self.len]
    }

    /// Resizes to `new_len`, zero-filling any growth and preserving the
    /// existing prefix (like `Vec::resize` with `0.0`). Growth reallocates;
    /// shrinking keeps the current allocation and alignment.
    pub fn resize(&mut self, new_len: usize) {
        if new_len <= self.len {
            self.raw.truncate(self.offset + new_len);
            self.len = new_len;
            return;
        }
        let mut next: Vec<f64> = Vec::with_capacity(new_len + PAD);
        let offset = Self::offset_of(next.as_ptr());
        next.resize(offset, 0.0);
        next.extend_from_slice(self.as_slice());
        next.resize(offset + new_len, 0.0);
        self.raw = next;
        self.offset = offset;
        self.len = new_len;
    }

    /// Slots to skip from `ptr` to the first 64-byte-aligned element.
    fn offset_of(ptr: *const f64) -> usize {
        let addr = ptr as usize;
        (ALIGN - addr % ALIGN) % ALIGN / std::mem::size_of::<f64>()
    }
}

// Clone/PartialEq/Debug are manual: deriving them would compare or copy the
// physical layout (`raw`, `offset`), which is allocation-dependent, instead
// of the logical contents.

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        let mut v = AlignedVec::zeroed(self.len);
        v.as_mut_slice().copy_from_slice(self.as_slice());
        v
    }
}

impl PartialEq for AlignedVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_aligned(v: &AlignedVec) {
        if !v.is_empty() {
            assert_eq!(
                v.as_slice().as_ptr() as usize % ALIGN,
                0,
                "contents must start on a {ALIGN}-byte boundary"
            );
        }
    }

    #[test]
    fn zeroed_resize_and_clone_stay_aligned() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let mut v = AlignedVec::zeroed(len);
            assert_eq!(v.len(), len);
            assert_aligned(&v);
            assert!(v.as_slice().iter().all(|&x| x == 0.0));
            for (i, x) in v.as_mut_slice().iter_mut().enumerate() {
                *x = i as f64;
            }
            let c = v.clone();
            assert_aligned(&c);
            assert_eq!(c, v);
            v.resize(len + 13);
            assert_aligned(&v);
            assert_eq!(&v.as_slice()[..len], c.as_slice());
            assert!(v.as_slice()[len..].iter().all(|&x| x == 0.0));
            v.resize(len / 2);
            assert_eq!(v.len(), len / 2);
            assert_eq!(v.as_slice(), &c.as_slice()[..len / 2]);
        }
    }

    #[test]
    fn vec_round_trip_preserves_contents_and_aligns() {
        for len in [0usize, 1, 5, 8, 100] {
            let data: Vec<f64> = (0..len).map(|i| (i as f64).sqrt()).collect();
            let v = AlignedVec::from_vec(data.clone());
            assert_aligned(&v);
            assert_eq!(v.as_slice(), &data[..]);
            assert_eq!(v.into_vec(), data);
        }
    }
}
