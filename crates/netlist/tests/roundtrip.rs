//! Property tests of the export → parse → lower round trip.
//!
//! The contract (ISSUE 4 / `docs/NETLIST.md`): any `GridSpec::small_test`
//! grid survives export → parse → stamp with **bit-identical** `G`/`C`
//! triplets, pad injection and source waveforms — floats compared with
//! `==`, not tolerances.

use proptest::prelude::*;

use opera_grid::GridSpec;
use opera_netlist::{export_grid, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn small_test_grids_round_trip_bitwise(
        target in 30usize..150,
        seed in 0u64..1_000,
        blocks in 1usize..6,
    ) {
        let grid = GridSpec::small_test(target)
            .with_seed(seed)
            .with_blocks(blocks)
            .build()
            .unwrap();
        let deck = export_grid(&grid, None).unwrap();
        let lowered = parse(&deck).unwrap().lower().unwrap();
        let again = &lowered.grid;

        // Structure: same nodes, same elements in the same order (this
        // covers branch kinds, capacitor classes, block ids and the full
        // breakpoint lists of every waveform).
        prop_assert_eq!(grid.node_count(), again.node_count());
        prop_assert_eq!(grid.vdd(), again.vdd());
        prop_assert_eq!(grid.branches(), again.branches());
        prop_assert_eq!(grid.capacitors(), again.capacitors());
        prop_assert_eq!(grid.sources(), again.sources());

        // Stamping: bit-identical triplets and vectors.
        prop_assert_eq!(grid.conductance_matrix(), again.conductance_matrix());
        prop_assert_eq!(grid.capacitance_matrix(), again.capacitance_matrix());
        prop_assert_eq!(grid.pad_injection_vector(), again.pad_injection_vector());
        let end = grid.waveform_end_time();
        for k in 0..=8 {
            let t = end * k as f64 / 8.0;
            prop_assert_eq!(grid.excitation(t), again.excitation(t));
        }

        // The exporter names nodes `n<i>` in index order.
        prop_assert_eq!(lowered.nodes.len(), grid.node_count());
        prop_assert_eq!(lowered.nodes.index("n0"), Some(0));
        let last = grid.node_count() - 1;
        let last_name = format!("n{last}");
        prop_assert_eq!(lowered.nodes.name(last), Some(last_name.as_str()));
    }

    /// Exporting the re-imported grid reproduces the deck byte-for-byte:
    /// the exporter is a fixed point of the round trip.
    #[test]
    fn export_is_a_fixed_point(target in 30usize..100, seed in 0u64..200) {
        let grid = GridSpec::small_test(target).with_seed(seed).build().unwrap();
        let deck = export_grid(&grid, None).unwrap();
        let lowered = parse(&deck).unwrap().lower().unwrap();
        let deck_again = export_grid(&lowered.grid, Some(&lowered.nodes)).unwrap();
        prop_assert_eq!(deck, deck_again);
    }
}
