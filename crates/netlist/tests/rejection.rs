//! Parser/lowering rejection suite: every malformed deck produces a
//! spanned, actionable `NetlistError` — never a panic.

use proptest::prelude::*;

use opera_netlist::{parse, NetlistError};

/// A well-formed prefix most cases build on (lines 1–3).
const HEADER: &str = "VDD p 0 1.2\nRpad p n1 0.1\nRw1 n1 n2 0.2\n";

fn fail(deck_tail: &str) -> NetlistError {
    let deck = format!("{HEADER}{deck_tail}");
    match parse(&deck).and_then(|netlist| netlist.lower().map(drop)) {
        Ok(()) => panic!("deck unexpectedly accepted:\n{deck}"),
        Err(e) => e,
    }
}

#[test]
fn malformed_cards_are_spanned_syntax_errors() {
    // Wrong arity.
    let e = fail("R9 n1 0.5\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // Bad float.
    let e = fail("R9 n1 n2 12..5\n");
    assert!(matches!(e, NetlistError::Value { line: 4, .. }), "{e}");
    // Unit letters are not values.
    let e = fail("C9 n1 0 10pf\n");
    assert!(matches!(e, NetlistError::Value { line: 4, .. }), "{e}");
    assert!(e.to_string().contains("10p"), "hint missing: {e}");
    // Unknown capacitor class.
    let e = fail("C9 n1 0 10p class=metal\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // PWL with an odd value count.
    let e = fail("I9 n1 0 PWL(0 0 1n)\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // PWL with decreasing times.
    let e = fail("I9 n1 0 PWL(1n 0 0 1m)\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // PULSE with the wrong arity.
    let e = fail("I9 n1 0 PULSE(0 1m 0 0.1n)\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // Unknown trailing parameter.
    let e = fail("I9 n1 0 1m frequency=2\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    // Repeated parameter (last-one-wins would hide a contradiction).
    let e = fail("C9 n1 0 2f class=gate class=interconnect\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
    assert!(e.to_string().contains("more than once"), "{e}");
}

#[test]
fn non_physical_values_are_rejected() {
    for bad in [
        "R9 n1 n2 0\n",
        "R9 n1 n2 -5\n",
        "R9 n1 n2 0S\n",
        "C9 n1 0 -1f\n",
        "I9 n1 0 1e400\n",
    ] {
        let e = fail(bad);
        assert!(
            matches!(e, NetlistError::Value { line: 4, .. }),
            "{bad}: {e}"
        );
    }
}

#[test]
fn unsupported_elements_and_directives_name_themselves() {
    let e = fail("L1 n1 n2 1n\n");
    let NetlistError::Unsupported { line, what, hint } = &e else {
        panic!("expected Unsupported, got {e}");
    };
    assert_eq!((*line, what.as_str()), (4, "l1"));
    assert!(hint.contains("R, C, I and V"), "{hint}");

    let e = fail("M1 d g s b nch\n");
    assert!(
        matches!(e, NetlistError::Unsupported { line: 4, .. }),
        "{e}"
    );
    let e = fail(".include other.sp\n");
    assert!(
        matches!(e, NetlistError::Unsupported { line: 4, .. }),
        "{e}"
    );
    let e = fail(".tran 1p 1n 0.5n\n");
    assert!(
        matches!(e, NetlistError::Unsupported { line: 4, .. }),
        "{e}"
    );
}

#[test]
fn duplicate_elements_and_supplies_are_flagged() {
    let e = fail("Rw1 n2 n3 0.2\n");
    assert_eq!(
        e,
        NetlistError::Duplicate {
            line: 4,
            previous_line: 3,
            name: "rw1".to_string(),
        }
    );
    // Two supplies pinning the same node.
    let e = fail("VDD2 p 0 1.2\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    assert!(e.to_string().contains("line 1"), "{e}");
    // Conflicting supply voltages on different nodes.
    let e = fail("VDD2 q 0 1.0\nRq q n2 0.1\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    // Ground-net (zero/negative) supplies are out of scope.
    let e = fail("VSS g 0 0\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
}

#[test]
fn structural_nonsense_is_rejected_at_lowering() {
    // Resistor to ground.
    let e = fail("R9 n2 0 1\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    // Resistor between two supply nodes.
    let e = fail("VDD2 q 0 1.2\nR9 p q 1\n");
    assert!(matches!(e, NetlistError::Lowering { line: 5, .. }), "{e}");
    // Self-loop.
    let e = fail("R9 n2 n2 1\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    // Coupling capacitor between two grid nodes.
    let e = fail("C9 n1 n2 1f\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    // Element on a supply node.
    let e = fail("C9 p 0 1f\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    let e = fail("I9 p 0 1m\n");
    assert!(matches!(e, NetlistError::Lowering { line: 4, .. }), "{e}");
    // Grid-node-second orientation.
    let e = fail("I9 0 n2 1m\n");
    assert!(matches!(e, NetlistError::Syntax { line: 4, .. }), "{e}");
}

#[test]
fn dangling_and_unreachable_nodes_are_named() {
    let e = fail("C9 orphan 0 1f\n");
    assert_eq!(
        e,
        NetlistError::Connectivity {
            node: "orphan".to_string(),
        }
    );
    // An island of wires with no pad is unreachable too.
    let e = fail("Risl island_a island_b 1\n");
    let NetlistError::Connectivity { node } = &e else {
        panic!("expected Connectivity, got {e}");
    };
    assert!(node.starts_with("island_"), "{node}");
}

#[test]
fn whole_deck_problems_have_dedicated_errors() {
    // Empty-ish decks.
    for deck in ["", "* only a comment\n", ".end\n"] {
        let e = parse(deck).unwrap().lower().unwrap_err();
        assert!(matches!(e, NetlistError::Deck { .. }), "{deck:?}: {e}");
    }
    // No supply.
    let e = parse("R1 a b 1\nC1 a 0 1f\n").unwrap().lower().unwrap_err();
    assert!(matches!(e, NetlistError::Deck { .. }), "{e}");
    assert!(e.to_string().contains("supply"), "{e}");
    // Continuation with nothing to continue.
    let e = parse("+ R1 a b 1\n").unwrap_err();
    assert!(matches!(e, NetlistError::Syntax { line: 1, .. }), "{e}");
}

#[test]
fn cards_after_end_are_ignored() {
    let deck = format!("{HEADER}C1 n2 0 1f\n.end\nL1 bogus cards 99\n");
    let netlist = parse(&deck).unwrap();
    assert_eq!(netlist.cards.len(), 4);
    netlist.lower().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary printable garbage never panics the front end: it either
    /// parses (and then lowers or errors) or reports a structured error.
    #[test]
    fn random_decks_never_panic(lines in proptest::collection::vec(
        proptest::collection::vec(32u32..127, 0..30),
        0..8,
    )) {
        let text = lines
            .iter()
            .map(|l| l.iter().map(|&c| char::from(c as u8)).collect::<String>())
            .collect::<Vec<_>>()
            .join("\n");
        if let Ok(netlist) = parse(&text) {
            let _ = netlist.lower();
        }
    }
}
