//! Exporting a [`PowerGrid`] as a deck this crate can re-parse.
//!
//! The exporter is the bridge from the synthetic-grid input path
//! ([`GridSpec`](opera_grid::GridSpec)) to the netlist path: any grid can be
//! written out as a SPICE-style deck and re-imported with **bit-identical
//! stamping** — the same `G`/`C` triplets, pad injection and source
//! waveforms. Three dialect conventions make that exactness possible:
//!
//! * resistor values are written as conductances with the `S` suffix
//!   (`25S`), because `1/(1/g)` is not `g` for every float — ohms would
//!   round-trip only approximately,
//! * all floats use the shortest round-trip representation
//!   ([`format_value`](crate::format_value)),
//! * element order follows the grid's internal element order, and — when
//!   the grid's capacitors would not already touch every node in index
//!   order — a block of zero-farad anchor capacitors pins the node-index
//!   assignment (first appearance) to the original indices.

use std::collections::HashSet;
use std::fmt::Write as _;

use opera_grid::{BranchKind, NodeMap, PowerGrid};

use crate::value::format_value;
use crate::{NetlistError, Result};

/// Writes `grid` as a deck string that [`parse`](crate::parse) +
/// [`lower`](crate::Netlist::lower) reconstruct with bit-identical
/// stamping.
///
/// `names` supplies the node names; pass `None` to use the synthetic
/// `n0`, `n1`, … scheme. The supply node is named `vdd` (uniquified if a
/// grid node already uses that name).
///
/// # Errors
///
/// Returns [`NetlistError::Deck`] if `names` is present but does not cover
/// every grid node.
///
/// # Example
///
/// ```
/// use opera_grid::GridSpec;
/// use opera_netlist::{export_grid, parse};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = GridSpec::small_test(60).build()?;
/// let deck = export_grid(&grid, None)?;
/// let again = parse(&deck)?.lower()?.grid;
/// assert_eq!(grid.conductance_matrix(), again.conductance_matrix());
/// assert_eq!(grid.capacitance_matrix(), again.capacitance_matrix());
/// assert_eq!(grid.sources(), again.sources());
/// # Ok(())
/// # }
/// ```
pub fn export_grid(grid: &PowerGrid, names: Option<&NodeMap>) -> Result<String> {
    let n = grid.node_count();
    let numbered;
    let names = match names {
        Some(map) => {
            if map.len() != n {
                return Err(NetlistError::Deck {
                    message: format!("node map covers {} nodes but the grid has {n}", map.len()),
                });
            }
            for (_, name) in map.iter() {
                validate_node_name(name)?;
            }
            map
        }
        None => {
            numbered = NodeMap::numbered(n);
            &numbered
        }
    };
    let supply = supply_name(names);

    let mut deck = String::new();
    let _ = writeln!(deck, "* OPERA power-grid deck exported by opera-netlist");
    let _ = writeln!(
        deck,
        "* {} nodes, {} resistive branches, {} capacitors, {} current sources",
        n,
        grid.branches().len(),
        grid.capacitors().len(),
        grid.sources().len()
    );
    let _ = writeln!(deck, "vsupply {supply} 0 {}", format_value(grid.vdd()));

    // Pin the node-index assignment when the natural element order would
    // not already visit the nodes in index order.
    if !first_appearance_is_identity(grid) {
        let _ = writeln!(deck, "* anchor block: pins node indices to deck order");
        for i in 0..n {
            let _ = writeln!(deck, "canchor{i} {} 0 0", covered_name(names, i)?);
        }
    }

    for (k, cap) in grid.capacitors().iter().enumerate() {
        let class = match cap.class {
            opera_grid::CapacitorClass::Gate => "gate",
            opera_grid::CapacitorClass::Diffusion => "diffusion",
            opera_grid::CapacitorClass::Interconnect => "interconnect",
        };
        let _ = writeln!(
            deck,
            "c{k} {} 0 {} class={class}",
            covered_name(names, cap.node)?,
            format_value(cap.capacitance)
        );
    }

    for (k, branch) in grid.branches().iter().enumerate() {
        let g = format_value(branch.conductance);
        match (branch.b, branch.kind) {
            (None, _) => {
                let _ = writeln!(
                    deck,
                    "rpad{k} {} {supply} {g}S",
                    covered_name(names, branch.a)?
                );
            }
            (Some(b), kind) => {
                let prefix = if kind == BranchKind::Via { "rv" } else { "rw" };
                let _ = writeln!(
                    deck,
                    "{prefix}{k} {} {} {g}S",
                    covered_name(names, branch.a)?,
                    covered_name(names, b)?
                );
            }
        }
    }

    for (k, source) in grid.sources().iter().enumerate() {
        let mut card = format!("i{k} {} 0 pwl(", covered_name(names, source.node)?);
        for (j, &(t, v)) in source.waveform.points().iter().enumerate() {
            if j > 0 {
                card.push(' ');
            }
            let _ = write!(card, "{} {}", format_value(t), format_value(v));
        }
        let _ = write!(card, ") block={}", source.block);
        deck.push_str(&card);
        deck.push('\n');
    }

    let end_time = grid.waveform_end_time();
    if end_time > 0.0 {
        let _ = writeln!(
            deck,
            ".tran {} {}",
            format_value(end_time / 100.0),
            format_value(end_time)
        );
    }
    deck.push_str(".end\n");
    Ok(deck)
}

/// Resolves a node index through the (length-checked) name map. A miss is
/// an internal inconsistency in the map, reported as a typed error rather
/// than a panic so export can never crash on a caller-supplied map.
fn covered_name(names: &NodeMap, index: usize) -> Result<&str> {
    names.name(index).ok_or_else(|| NetlistError::Deck {
        message: format!("internal: node {index} has no entry in the export node map"),
    })
}

/// `true` when emitting capacitors, then branches, then sources visits the
/// grid nodes for the first time in index order `0, 1, 2, …` — the common
/// case for generated grids, where every node carries capacitance.
fn first_appearance_is_identity(grid: &PowerGrid) -> bool {
    let mut next = 0usize;
    let mut seen = HashSet::new();
    let visit = |node: usize, next: &mut usize, seen: &mut HashSet<usize>| {
        if seen.insert(node) {
            if node != *next {
                return false;
            }
            *next += 1;
        }
        true
    };
    for cap in grid.capacitors() {
        if !visit(cap.node, &mut next, &mut seen) {
            return false;
        }
    }
    for branch in grid.branches() {
        if !visit(branch.a, &mut next, &mut seen) {
            return false;
        }
        if let Some(b) = branch.b {
            if !visit(b, &mut next, &mut seen) {
                return false;
            }
        }
    }
    for source in grid.sources() {
        if !visit(source.node, &mut next, &mut seen) {
            return false;
        }
    }
    next == grid.node_count()
}

/// Rejects caller-supplied node names the deck grammar cannot represent
/// faithfully: the parser lower-cases and re-tokenises everything, so a
/// name must already be lower-case, free of separator/comment characters,
/// and not a ground alias — otherwise the re-imported grid would not match.
fn validate_node_name(name: &str) -> Result<()> {
    let bad = |reason: &str| {
        Err(NetlistError::Deck {
            message: format!("node name `{name}` cannot round-trip through a deck: {reason}"),
        })
    };
    if name.is_empty() {
        return bad("it is empty");
    }
    if name.chars().any(|c| c.is_ascii_uppercase()) {
        return bad("deck names are case-insensitive and re-imported lower-cased");
    }
    if name
        .chars()
        .any(|c| c.is_whitespace() || "()=,$;*+".contains(c))
    {
        return bad("it contains separator or comment characters");
    }
    if crate::is_ground(name) {
        return bad("it denotes the ground net in the deck grammar");
    }
    Ok(())
}

/// Picks a supply-node name that does not collide with any grid node.
fn supply_name(names: &NodeMap) -> String {
    let mut name = "vdd".to_string();
    while names.index(&name).is_some() {
        name.push('_');
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use opera_grid::{CapacitorClass, GridSpec, Waveform};

    #[test]
    fn exported_spec_grid_round_trips_bitwise() {
        let grid = GridSpec::small_test(90).with_seed(11).build().unwrap();
        let deck = export_grid(&grid, None).unwrap();
        let lowered = parse(&deck).unwrap().lower().unwrap();
        assert_eq!(grid.node_count(), lowered.grid.node_count());
        assert_eq!(grid.vdd(), lowered.grid.vdd());
        assert_eq!(grid.branches(), lowered.grid.branches());
        assert_eq!(grid.capacitors(), lowered.grid.capacitors());
        assert_eq!(grid.sources(), lowered.grid.sources());
        assert_eq!(grid.conductance_matrix(), lowered.grid.conductance_matrix());
        assert_eq!(grid.capacitance_matrix(), lowered.grid.capacitance_matrix());
        assert_eq!(
            grid.pad_injection_vector(),
            lowered.grid.pad_injection_vector()
        );
    }

    #[test]
    fn anchor_block_pins_out_of_order_nodes() {
        // A grid whose first element touches node 2: without anchors the
        // re-parsed index assignment would start at `n2`.
        let mut grid = PowerGrid::new(3, 1.0).unwrap();
        grid.add_pad(2, 4.0).unwrap();
        grid.add_wire(2, 0, 1.0, BranchKind::MetalWire).unwrap();
        grid.add_wire(0, 1, 2.0, BranchKind::Via).unwrap();
        grid.add_capacitor(1, 1e-15, CapacitorClass::Gate).unwrap();
        grid.add_current_source(1, Waveform::constant(1e-3), 7)
            .unwrap();
        let deck = export_grid(&grid, None).unwrap();
        assert!(deck.contains("canchor0"));
        let lowered = parse(&deck).unwrap().lower().unwrap();
        assert_eq!(lowered.nodes.name(2), Some("n2"));
        assert_eq!(grid.branches(), lowered.grid.branches());
        assert_eq!(grid.conductance_matrix(), lowered.grid.conductance_matrix());
        assert_eq!(grid.capacitance_matrix(), lowered.grid.capacitance_matrix());
        assert_eq!(grid.sources(), lowered.grid.sources());
    }

    #[test]
    fn custom_names_and_supply_collision_are_handled() {
        let mut grid = PowerGrid::new(2, 1.0).unwrap();
        grid.add_pad(0, 1.0).unwrap();
        grid.add_wire(0, 1, 1.0, BranchKind::MetalWire).unwrap();
        grid.add_capacitor(0, 0.0, CapacitorClass::Diffusion)
            .unwrap();
        grid.add_capacitor(1, 1e-15, CapacitorClass::Diffusion)
            .unwrap();
        let mut names = NodeMap::new();
        names.get_or_insert("vdd"); // collides with the default supply name
        names.get_or_insert("core_1_1");
        let deck = export_grid(&grid, Some(&names)).unwrap();
        assert!(deck.contains("vsupply vdd_ 0 1.0"));
        let lowered = parse(&deck).unwrap().lower().unwrap();
        assert_eq!(lowered.nodes.index("vdd"), Some(0));
        assert_eq!(lowered.nodes.index("core_1_1"), Some(1));
        assert_eq!(grid.conductance_matrix(), lowered.grid.conductance_matrix());

        let short = NodeMap::numbered(1);
        assert!(matches!(
            export_grid(&grid, Some(&short)),
            Err(NetlistError::Deck { .. })
        ));
    }

    #[test]
    fn unrepresentable_names_are_rejected() {
        let mut grid = PowerGrid::new(2, 1.0).unwrap();
        grid.add_pad(0, 1.0).unwrap();
        grid.add_wire(0, 1, 1.0, BranchKind::MetalWire).unwrap();
        for bad in ["GND", "N1", "has space", "a=b", "semi;colon", "", "0"] {
            let mut names = NodeMap::new();
            names.get_or_insert(bad);
            names.get_or_insert("ok");
            let err = export_grid(&grid, Some(&names)).unwrap_err();
            assert!(
                matches!(err, NetlistError::Deck { .. }),
                "name {bad:?}: {err}"
            );
        }
    }
}
