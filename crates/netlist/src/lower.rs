//! Lowering: [`Netlist`] IR → [`PowerGrid`] + [`NodeMap`].
//!
//! Whole-circuit semantics live here:
//!
//! * **Supply extraction** — every `V` card pins its node to the external
//!   VDD; all supplies must agree on the voltage. Resistors touching a
//!   supply node lower to package pads (the Norton equivalent the MNA
//!   formulation uses), so supply nodes carry no unknown.
//! * **Node indexing** — every other non-ground node gets an index at its
//!   first appearance, in deck order; the mapping is returned as a
//!   [`NodeMap`] so reports can name real nodes.
//! * **Stamping order** — branches, capacitors and sources are added in
//!   deck order, which is what makes export → parse → stamp round trips
//!   bit-identical.
//! * **Connectivity** — every grid node must have a resistive path to a
//!   pad, otherwise the conductance matrix would be singular; the error
//!   names the offending node.

use std::collections::HashMap;

use opera_grid::{BranchKind, NodeMap, PowerGrid, Waveform};

use crate::deck::{Card, Netlist, SourceWaveform, TranSpec};
use crate::parser::is_ground;
use crate::{NetlistError, Result};

/// Hard cap on the breakpoints a single `PULSE` source may expand to.
const MAX_PULSE_BREAKPOINTS: usize = 100_000;

/// A lowered deck: the stamped grid, the node-name mapping and the deck's
/// transient window.
///
/// ```
/// use opera_netlist::parse;
///
/// let lowered = parse(
///     "VDD s 0 1.2\nRp s a 0.1\nRw a b 0.2\nC1 b 0 1f\nI1 b 0 1m\n.tran 10p 1n\n",
/// )
/// .unwrap()
/// .lower()
/// .unwrap();
/// assert_eq!(lowered.grid.node_count(), 2);
/// assert_eq!(lowered.nodes.name(0), Some("a"));
/// assert_eq!(lowered.nodes.index("b"), Some(1));
/// assert_eq!(lowered.grid.pad_nodes(), vec![0]);
/// assert_eq!(lowered.tran.unwrap().end_time, 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct LoweredNetlist {
    /// The stamped power grid (VDD net, Norton pad equivalents).
    pub grid: PowerGrid,
    /// Node-name ↔ node-index mapping (first appearance in deck order).
    pub nodes: NodeMap,
    /// The deck's `.tran` window, when it had one.
    pub tran: Option<TranSpec>,
}

impl Netlist {
    /// Lowers the deck to a [`PowerGrid`] plus its [`NodeMap`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Deck`] for a deck with no supply or no grid
    /// nodes, [`NetlistError::Lowering`] for electrically meaningless cards
    /// (resistor to ground, element on a supply node, conflicting
    /// supplies, …) and [`NetlistError::Connectivity`] for nodes with no
    /// resistive path to a pad.
    pub fn lower(&self) -> Result<LoweredNetlist> {
        let _span = opera_trace::span("netlist.lower");
        // --- Pass 1: supplies.
        let mut supplies: HashMap<&str, (f64, usize)> = HashMap::new();
        let mut vdd: Option<(f64, usize)> = None;
        for s in self.supplies() {
            if let Some(&(_, previous)) = supplies.get(s.node.as_str()) {
                return Err(NetlistError::Lowering {
                    line: s.line,
                    message: format!(
                        "node `{}` is already pinned by the supply on line {previous}",
                        s.node
                    ),
                });
            }
            if let Some((volts, line)) = vdd {
                if volts != s.volts {
                    return Err(NetlistError::Lowering {
                        line: s.line,
                        message: format!(
                            "conflicting supply voltages: {volts} V (line {line}) vs {} V; \
                             the VDD-net model needs a single supply level",
                            s.volts
                        ),
                    });
                }
            } else {
                vdd = Some((s.volts, s.line));
            }
            supplies.insert(&s.node, (s.volts, s.line));
        }
        let Some((vdd, _)) = vdd else {
            return Err(NetlistError::Deck {
                message: "no V supply card: at least one node must be pinned to VDD".to_string(),
            });
        };

        // --- Pass 2: node indexing by first appearance, in deck order.
        let mut nodes = NodeMap::new();
        for card in &self.cards {
            let mut touch = |name: &str| {
                if !is_ground(name) && !supplies.contains_key(name) {
                    nodes.get_or_insert(name);
                }
            };
            match card {
                Card::Resistor(r) => {
                    touch(&r.a);
                    touch(&r.b);
                }
                Card::Capacitor(c) => touch(&c.node),
                Card::Current(i) => touch(&i.node),
                Card::Supply(_) => {}
            }
        }
        if nodes.is_empty() {
            return Err(NetlistError::Deck {
                message: "deck defines no grid nodes (every node is a supply or ground)"
                    .to_string(),
            });
        }

        // --- Pass 3: stamp, in deck order.
        let mut grid = PowerGrid::new(nodes.len(), vdd).map_err(|e| NetlistError::Deck {
            message: e.to_string(),
        })?;
        let element = |line: usize| {
            move |e: opera_grid::GridError| NetlistError::Lowering {
                line,
                message: e.to_string(),
            }
        };
        for card in &self.cards {
            match card {
                Card::Resistor(r) => {
                    if is_ground(&r.a) || is_ground(&r.b) {
                        return Err(NetlistError::Lowering {
                            line: r.line,
                            message: format!(
                                "resistor `{}` to ground is not representable in the \
                                 VDD-net model; connect it through a supply (V) node instead",
                                r.name
                            ),
                        });
                    }
                    match (
                        supplies.contains_key(r.a.as_str()),
                        supplies.contains_key(r.b.as_str()),
                    ) {
                        (true, true) => {
                            return Err(NetlistError::Lowering {
                                line: r.line,
                                message: format!(
                                    "resistor `{}` connects two supply nodes; it carries no \
                                     information about the grid",
                                    r.name
                                ),
                            });
                        }
                        (true, false) => {
                            let node = indexed_node(&nodes, &r.b, r.line)?;
                            grid.add_pad(node, r.conductance).map_err(element(r.line))?;
                        }
                        (false, true) => {
                            let node = indexed_node(&nodes, &r.a, r.line)?;
                            grid.add_pad(node, r.conductance).map_err(element(r.line))?;
                        }
                        (false, false) => {
                            let a = indexed_node(&nodes, &r.a, r.line)?;
                            let b = indexed_node(&nodes, &r.b, r.line)?;
                            let kind = if is_via_name(&r.name) {
                                BranchKind::Via
                            } else {
                                BranchKind::MetalWire
                            };
                            grid.add_wire(a, b, r.conductance, kind)
                                .map_err(element(r.line))?;
                        }
                    }
                }
                Card::Capacitor(c) => {
                    let node = grid_node(&nodes, &supplies, &c.node, c.line, "capacitor")?;
                    grid.add_capacitor(node, c.capacitance, c.class)
                        .map_err(element(c.line))?;
                }
                Card::Current(i) => {
                    let node = grid_node(&nodes, &supplies, &i.node, i.line, "current source")?;
                    let horizon = self.tran.map(|t| t.end_time);
                    let waveform = expand_waveform(&i.waveform, horizon, i.line)?;
                    grid.add_current_source(node, waveform, i.block)
                        .map_err(element(i.line))?;
                }
                Card::Supply(_) => {}
            }
        }

        check_connectivity(&grid, &nodes)?;
        Ok(LoweredNetlist {
            grid,
            nodes,
            tran: self.tran,
        })
    }
}

/// Resolves a C/I terminal to its grid-node index, rejecting supply nodes.
fn grid_node(
    nodes: &NodeMap,
    supplies: &HashMap<&str, (f64, usize)>,
    name: &str,
    line: usize,
    what: &str,
) -> Result<usize> {
    if supplies.contains_key(name) {
        return Err(NetlistError::Lowering {
            line,
            message: format!(
                "{what} on supply node `{name}`: the node is pinned to VDD, so the \
                 element has no effect; remove it or insert a pad resistor"
            ),
        });
    }
    indexed_node(nodes, name, line)
}

/// Looks up a node that pass 2 must already have indexed. A miss is an
/// internal bookkeeping bug, surfaced as a typed error instead of a panic
/// so a malformed deck can never take the process down.
fn indexed_node(nodes: &NodeMap, name: &str, line: usize) -> Result<usize> {
    nodes.index(name).ok_or_else(|| NetlistError::Lowering {
        line,
        message: format!("internal: grid node `{name}` was not indexed in pass 2"),
    })
}

/// Expands a parsed waveform to the piecewise-linear form the grid model
/// uses. `horizon` (the `.tran` end time) bounds PULSE repetition; without
/// it a periodic PULSE is expanded for a single period.
fn expand_waveform(
    waveform: &SourceWaveform,
    horizon: Option<f64>,
    line: usize,
) -> Result<Waveform> {
    match waveform {
        SourceWaveform::Dc(value) => Ok(Waveform::constant(*value)),
        SourceWaveform::Pwl(points) => Ok(Waveform::from_points(points.clone())),
        SourceWaveform::Pulse {
            base,
            peak,
            delay,
            rise,
            fall,
            width,
            period,
        } => {
            let cycle = rise + width + fall;
            if *period > 0.0 && *period < cycle {
                return Err(NetlistError::Lowering {
                    line,
                    message: format!(
                        "PULSE period {period} is shorter than tr+pw+tf = {cycle}; \
                         consecutive pulses would overlap"
                    ),
                });
            }
            // Compare in f64 before any usize cast: a tiny period over a
            // long window yields astronomically many cycles, and a saturating
            // cast would wrap the arithmetic below instead of erroring.
            let cycles_f = match horizon {
                Some(horizon) if *period > 0.0 && horizon > *delay => {
                    ((horizon - delay) / period).ceil() + 1.0
                }
                // No .tran: a single period, as documented.
                _ => 1.0,
            };
            if !(cycles_f.is_finite() && 4.0 * cycles_f + 1.0 <= MAX_PULSE_BREAKPOINTS as f64) {
                return Err(NetlistError::Lowering {
                    line,
                    message: format!(
                        "PULSE expands to {cycles_f:.0} cycles over the .tran window; \
                         shorten .tran or increase the period"
                    ),
                });
            }
            let cycles = cycles_f as usize;
            let mut points = Vec::with_capacity(4 * cycles + 1);
            points.push((0.0, *base));
            for k in 0..cycles {
                let t0 = delay + k as f64 * period;
                points.push((t0, *base));
                points.push((t0 + rise, *peak));
                points.push((t0 + rise + width, *peak));
                points.push((t0 + rise + width + fall, *base));
            }
            Ok(Waveform::from_points(points))
        }
    }
}

/// `true` for resistor names that follow the via naming convention:
/// `rvia…` or `rv` immediately followed by a digit (`rv12`). A bare
/// `rv` prefix would be too greedy — rail names like `rvdd_m2_7` are
/// metal wires, not vias.
fn is_via_name(name: &str) -> bool {
    name.starts_with("rvia")
        || name
            .strip_prefix("rv")
            .is_some_and(|rest| rest.starts_with(|c: char| c.is_ascii_digit()))
}

/// Pad reachability via [`PowerGrid::first_unreached_node`]; errors with
/// the *name* of the first unreached node.
fn check_connectivity(grid: &PowerGrid, nodes: &NodeMap) -> Result<()> {
    match grid.first_unreached_node() {
        None => Ok(()),
        Some(idx) => Err(NetlistError::Connectivity {
            node: nodes.name(idx).unwrap_or("?").to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use opera_grid::CapacitorClass;

    const DECK: &str = "\
* 1x3 chain behind one pad
VDD vdd 0 1.2
Rpad vdd n0 0.1
Rw0 n0 n1 0.2
Rv1 n1 n2 0.2
C0 n1 0 1f class=gate
C1 n2 0 2f
I0 n2 0 PWL(0 0 0.5n 1m 1n 0)
.tran 0.1n 1n
.end
";

    #[test]
    fn lowers_the_reference_chain() {
        let lowered = parse(DECK).unwrap().lower().unwrap();
        let grid = &lowered.grid;
        assert_eq!(grid.node_count(), 3);
        assert_eq!(grid.vdd(), 1.2);
        assert_eq!(lowered.nodes.name(0), Some("n0"));
        assert_eq!(lowered.nodes.index("n2"), Some(2));
        assert_eq!(grid.pad_nodes(), vec![0]);
        let kinds: Vec<_> = grid.branches().iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BranchKind::PackagePad,
                BranchKind::MetalWire,
                BranchKind::Via
            ]
        );
        assert_eq!(grid.capacitors()[0].class, CapacitorClass::Gate);
        assert_eq!(grid.capacitors()[1].class, CapacitorClass::Diffusion);
        let g = grid.conductance_matrix();
        assert!(g.is_symmetric(0.0));
        assert_eq!(grid.sources().len(), 1);
        assert_eq!(grid.waveform_end_time(), 1e-9);
    }

    #[test]
    fn pulse_expansion_covers_the_tran_window() {
        let deck =
            parse("VDD s 0 1.0\nRp s a 1\nI1 a 0 PULSE(0 1m 0 0.1n 0.1n 0.3n 1n)\n.tran 0.1n 3n\n")
                .unwrap();
        let grid = deck.lower().unwrap().grid;
        let w = &grid.sources()[0].waveform;
        // Peaks repeat once per period across the whole window.
        assert!((w.value_at(0.2e-9) - 1e-3).abs() < 1e-18);
        assert!((w.value_at(1.2e-9) - 1e-3).abs() < 1e-18);
        assert!((w.value_at(2.2e-9) - 1e-3).abs() < 1e-18);
        assert_eq!(w.value_at(0.8e-9), 0.0);
        assert!(w.end_time() >= 3e-9);
    }

    #[test]
    fn via_naming_is_rvia_or_rv_digit_only() {
        // `rvdd…` is a rail name, not a via; `rvia…`/`rv<digit>` are vias.
        let deck =
            parse("VDD s 0 1.0\nRp s a 1\nRvdd_m2 a b 1\nRvia3 b c 1\nRv7 c d 1\nRw d e 1\n")
                .unwrap();
        let kinds: Vec<_> = deck
            .lower()
            .unwrap()
            .grid
            .branches()
            .iter()
            .map(|b| b.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                BranchKind::PackagePad,
                BranchKind::MetalWire, // rvdd_m2
                BranchKind::Via,       // rvia3
                BranchKind::Via,       // rv7
                BranchKind::MetalWire, // rw
            ]
        );
    }

    #[test]
    fn pulse_without_tran_expands_a_single_period() {
        let deck =
            parse("VDD s 0 1.0\nRp s a 1\nI1 a 0 PULSE(0 1m 0 0.1n 0.1n 0.3n 1n)\n").unwrap();
        let grid = deck.lower().unwrap().grid;
        let w = &grid.sources()[0].waveform;
        assert!((w.value_at(0.2e-9) - 1e-3).abs() < 1e-18);
        // Exactly one period of breakpoints: 1 leading + 4 per cycle.
        assert_eq!(w.points().len(), 5);
        assert!((w.end_time() - 0.5e-9).abs() < 1e-18);
    }

    #[test]
    fn runaway_pulse_expansion_errors_instead_of_overflowing() {
        // A 1e-30 s period over a 1 ns window is ~1e21 cycles: must be a
        // structured error, not an overflow panic (debug) or a silently
        // flat source (release).
        let deck = parse("VDD s 0 1.0\nRp s a 1\nI1 a 0 PULSE(0 1m 0 0 0 0 1e-30)\n.tran 1n 1n\n")
            .unwrap();
        let err = deck.lower().unwrap_err();
        assert!(
            matches!(err, NetlistError::Lowering { line: 3, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("cycles"), "{err}");
    }

    #[test]
    fn dangling_node_is_named() {
        let err = parse("VDD s 0 1.0\nRp s a 1\nC1 floaty 0 1f\n")
            .unwrap()
            .lower()
            .unwrap_err();
        assert_eq!(
            err,
            NetlistError::Connectivity {
                node: "floaty".to_string()
            }
        );
    }
}
