//! Spanned, actionable errors for deck parsing and lowering.

use std::error::Error;
use std::fmt;

/// Errors produced while lexing, parsing or lowering a SPICE-style deck.
///
/// Every variant that originates from a specific card carries the 1-based
/// physical line number of the card's *first* line (continuation lines
/// report the line the card started on), so error messages point straight at
/// the offending deck text. [`NetlistError::line`] extracts it uniformly.
///
/// # Example
///
/// ```
/// use opera_netlist::{parse, NetlistError};
///
/// let err = parse("L1 a b 1n\n").unwrap_err();
/// assert!(matches!(err, NetlistError::Unsupported { line: 1, .. }));
/// assert_eq!(err.line(), Some(1));
/// assert!(err.to_string().contains("l1")); // names are lower-cased
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A card does not match the grammar (wrong field count, missing ground
    /// terminal, malformed waveform, …).
    Syntax {
        /// 1-based line the card started on.
        line: usize,
        /// What was wrong and what was expected instead.
        message: String,
    },
    /// A numeric field could not be parsed (bad float, unknown SI suffix,
    /// non-finite value, …).
    Value {
        /// 1-based line the card started on.
        line: usize,
        /// The offending token, verbatim (lower-cased).
        token: String,
        /// What was wrong and, where possible, how to fix it.
        message: String,
    },
    /// The element or directive is recognised SPICE but outside the
    /// power-grid subset this front end accepts (inductors, MOSFETs,
    /// subcircuits, `.include`, …).
    Unsupported {
        /// 1-based line the card started on.
        line: usize,
        /// The card name or directive, verbatim (lower-cased).
        what: String,
        /// Why it is rejected and what the supported alternative is.
        hint: String,
    },
    /// Two elements share a name (element names are case-insensitive and
    /// must be unique, like in SPICE).
    Duplicate {
        /// 1-based line of the second definition.
        line: usize,
        /// 1-based line of the first definition.
        previous_line: usize,
        /// The duplicated element name (lower-cased).
        name: String,
    },
    /// A card is grammatical but electrically meaningless in the VDD-net
    /// model (resistor to ground, capacitor between two grid nodes, element
    /// on a supply node, conflicting supply voltages, …).
    Lowering {
        /// 1-based line of the offending card.
        line: usize,
        /// What was wrong and how to restructure the deck.
        message: String,
    },
    /// A grid node has no resistive path to any supply pad, so the
    /// conductance matrix would be singular.
    Connectivity {
        /// Name of (one) unreachable node.
        node: String,
    },
    /// The deck as a whole is unusable (no cards, no supply, no grid
    /// nodes, …) — there is no single line to blame.
    Deck {
        /// What is missing and how to fix the deck.
        message: String,
    },
    /// The deck file could not be read.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error, rendered.
        message: String,
    },
}

impl NetlistError {
    /// The 1-based deck line the error points at, when it has one.
    ///
    /// ```
    /// use opera_netlist::parse;
    ///
    /// let err = parse("VDD vdd 0 1.2\nR1 vdd 0 bogus\n").unwrap_err();
    /// assert_eq!(err.line(), Some(2));
    /// ```
    pub fn line(&self) -> Option<usize> {
        match self {
            NetlistError::Syntax { line, .. }
            | NetlistError::Value { line, .. }
            | NetlistError::Unsupported { line, .. }
            | NetlistError::Duplicate { line, .. }
            | NetlistError::Lowering { line, .. } => Some(*line),
            NetlistError::Connectivity { .. }
            | NetlistError::Deck { .. }
            | NetlistError::Io { .. } => None,
        }
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Syntax { line, message } => {
                write!(f, "line {line}: syntax error: {message}")
            }
            NetlistError::Value {
                line,
                token,
                message,
            } => write!(f, "line {line}: bad value `{token}`: {message}"),
            NetlistError::Unsupported { line, what, hint } => {
                write!(f, "line {line}: unsupported `{what}`: {hint}")
            }
            NetlistError::Duplicate {
                line,
                previous_line,
                name,
            } => write!(
                f,
                "line {line}: duplicate element `{name}` (first defined on line {previous_line})"
            ),
            NetlistError::Lowering { line, message } => {
                write!(f, "line {line}: {message}")
            }
            NetlistError::Connectivity { node } => write!(
                f,
                "node `{node}` has no resistive path to any supply pad; \
                 the conductance matrix would be singular"
            ),
            NetlistError::Deck { message } => write!(f, "unusable deck: {message}"),
            NetlistError::Io { path, message } => {
                write!(f, "cannot read deck `{path}`: {message}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_line_and_context() {
        let e = NetlistError::Duplicate {
            line: 9,
            previous_line: 4,
            name: "r1".to_string(),
        };
        assert!(e.to_string().contains("line 9"));
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("r1"));
        assert_eq!(e.line(), Some(9));

        let e = NetlistError::Connectivity {
            node: "n1_5_5".to_string(),
        };
        assert!(e.to_string().contains("n1_5_5"));
        assert_eq!(e.line(), None);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
