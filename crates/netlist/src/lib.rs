//! SPICE-style power-grid netlist front end for the OPERA reproduction.
//!
//! The paper's Table 1 runs on industrial netlists; this crate opens that
//! input path: it lexes and parses IBM-power-grid-benchmark-style decks —
//! `R`/`C`/`I`/`V` cards, `.tran`, PWL and PULSE current waveforms,
//! comments, continuation lines, SI value suffixes — into a validated
//! [`Netlist`] IR, and lowers it to an [`opera_grid::PowerGrid`] with a
//! stable node-name ↔ index [`NodeMap`](opera_grid::NodeMap) so reports can
//! name real nodes instead of raw indices. The full grammar, the dialect
//! conventions and the error taxonomy are documented in `docs/NETLIST.md`.
//!
//! The reverse direction is [`export_grid`]: any grid (in particular the
//! synthetic [`GridSpec`](opera_grid::GridSpec) meshes) can be written out
//! as a deck and re-imported with *bit-identical* stamping, which is what
//! ties the two input paths together and is proven by this crate's
//! round-trip property tests.
//!
//! # Quickstart
//!
//! ```
//! use opera_netlist::parse;
//!
//! # fn main() -> Result<(), opera_netlist::NetlistError> {
//! let deck = "\
//! * 2x2 mesh behind two pads
//! VDD p 0 1.2
//! Rpad1 p n1_0_0 0.05
//! Rpad2 p n1_1_1 0.05
//! Rw1 n1_0_0 n1_0_1 0.4
//! Rw2 n1_1_0 n1_1_1 0.4
//! Rv1 n1_0_0 n1_1_0 0.6
//! Rv2 n1_0_1 n1_1_1 0.6
//! C1 n1_0_1 0 5f class=gate
//! C2 n1_1_0 0 5f
//! I1 n1_1_0 0 PWL(0 0 0.2n 8m 0.5n 0)
//! .tran 10p 0.5n
//! .end
//! ";
//! let lowered = parse(deck)?.lower()?;
//! assert_eq!(lowered.grid.node_count(), 4);
//! assert_eq!(lowered.nodes.index("n1_1_0"), Some(3));
//! assert_eq!(lowered.grid.pad_nodes().len(), 2);
//! assert_eq!(lowered.tran.unwrap().end_time, 0.5e-9);
//! # Ok(())
//! # }
//! ```
//!
//! To run a full stochastic analysis on a deck, hand it to the engine:
//! `opera::engine::OperaEngine::for_netlist("grid.sp")` (or
//! `for_netlist_str`) — grid lowering, variation model, Galerkin assembly
//! and factorisation happen once, and every report can translate node
//! indices back to deck names.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod deck;
mod error;
mod export;
mod lexer;
mod lower;
mod parser;
mod value;

pub use deck::{
    CapacitorCard, Card, CurrentSourceCard, Netlist, ResistorCard, SourceWaveform, SupplyCard,
    TranMethod, TranSpec,
};
pub use error::NetlistError;
pub use export::export_grid;
pub use lexer::{lex, LogicalLine};
pub use lower::LoweredNetlist;
pub use parser::{is_ground, parse, GROUND_NAMES};
pub use value::{format_value, parse_value};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NetlistError>;

/// Reads and parses a deck file.
///
/// # Errors
///
/// Returns [`NetlistError::Io`] if the file cannot be read, otherwise
/// whatever [`parse`] returns.
///
/// # Example
///
/// ```no_run
/// let deck = opera_netlist::parse_file("tests/fixtures/ibmpg_style.sp")?;
/// let lowered = deck.lower()?;
/// println!("{} nodes", lowered.grid.node_count());
/// # Ok::<(), opera_netlist::NetlistError>(())
/// ```
pub fn parse_file(path: impl AsRef<std::path::Path>) -> Result<Netlist> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    parse(&text)
}

/// Convenience: [`parse_file`] followed by [`Netlist::lower`].
///
/// # Errors
///
/// Propagates I/O, parse and lowering errors.
///
/// # Example
///
/// ```no_run
/// let lowered = opera_netlist::load("tests/fixtures/ibmpg_style.sp")?;
/// assert!(lowered.grid.node_count() > 0);
/// # Ok::<(), opera_netlist::NetlistError>(())
/// ```
pub fn load(path: impl AsRef<std::path::Path>) -> Result<LoweredNetlist> {
    parse_file(path)?.lower()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_file_reports_io_error() {
        let err = load("/no/such/deck.sp").unwrap_err();
        assert!(matches!(err, NetlistError::Io { .. }));
        assert!(err.to_string().contains("/no/such/deck.sp"));
    }
}
