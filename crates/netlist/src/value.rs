//! Numeric fields with SPICE SI suffixes.
//!
//! A value is a float in any Rust-parseable form (`12`, `0.5`, `1e-9`,
//! `-3.2e2`) optionally followed by one of the standard SPICE magnitude
//! suffixes, case-insensitively:
//!
//! | suffix | scale  | | suffix | scale  |
//! |--------|--------|-|--------|--------|
//! | `t`    | 1e12   | | `m`    | 1e-3   |
//! | `g`    | 1e9    | | `u`    | 1e-6   |
//! | `meg`  | 1e6    | | `n`    | 1e-9   |
//! | `k`    | 1e3    | | `p`    | 1e-12  |
//! |        |        | | `f`    | 1e-15  |
//!
//! Trailing unit letters (`1ns`, `10pF`, `5ohm`) are **not** part of the
//! grammar — write `1n`, `10p`, `5`. The only exception is the resistor
//! cards' `S` marker handled in the parser (see `docs/NETLIST.md`).

use crate::{NetlistError, Result};

/// The SPICE magnitude suffixes, longest first so `meg` wins over `m`.
const SUFFIXES: [(&str, f64); 9] = [
    ("meg", 1e6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
];

/// Parses one numeric field (already lower-cased by the lexer), applying an
/// optional SI suffix. `line` is the deck line used for error spans.
///
/// # Errors
///
/// Returns [`NetlistError::Value`] for malformed floats, unknown suffixes
/// and non-finite results.
///
/// # Example
///
/// ```
/// use opera_netlist::parse_value;
///
/// assert_eq!(parse_value("1.5k", 1).unwrap(), 1.5e3);
/// assert_eq!(parse_value("100meg", 1).unwrap(), 100.0e6);
/// assert_eq!(parse_value("2p", 1).unwrap(), 2.0e-12);
/// assert_eq!(parse_value("1e-9", 1).unwrap(), 1e-9);
/// assert!(parse_value("1ns", 7).unwrap_err().to_string().contains("line 7"));
/// ```
pub fn parse_value(token: &str, line: usize) -> Result<f64> {
    let bad = |message: String| NetlistError::Value {
        line,
        token: token.to_string(),
        message,
    };
    if token.is_empty() {
        return Err(bad("empty numeric field".to_string()));
    }
    // A plain float (possibly with an exponent) needs no suffix handling.
    // This branch must come first: `1e-15` ends in a suffix-like letter
    // sequence but is already a complete float.
    let (value, scale) = if let Ok(v) = token.parse::<f64>() {
        (v, 1.0)
    } else {
        let Some((mantissa, scale)) = SUFFIXES.iter().find_map(|&(s, scale)| {
            token
                .strip_suffix(s)
                .map(|mantissa| (mantissa, scale))
                .filter(|(m, _)| !m.is_empty())
        }) else {
            return Err(bad("expected a number with an optional SI suffix \
                 (t, g, meg, k, m, u, n, p, f); unit letters like `1ns` or \
                 `10pf` are not accepted — write `1n`, `10p`"
                .to_string()));
        };
        let v = mantissa.parse::<f64>().map_err(|_| {
            bad(format!(
                "`{mantissa}` is not a number (suffix `{}` was recognised)",
                &token[mantissa.len()..]
            ))
        })?;
        (v, scale)
    };
    let scaled = value * scale;
    if !scaled.is_finite() {
        return Err(bad("value is not finite".to_string()));
    }
    Ok(scaled)
}

/// Formats an `f64` so that parsing the result recovers the value exactly
/// (shortest round-trip representation) — the exporter's value formatter.
///
/// # Example
///
/// ```
/// use opera_netlist::{format_value, parse_value};
///
/// let x = 0.1f64 + 0.2;
/// assert_eq!(parse_value(&format_value(x), 1).unwrap(), x);
/// ```
pub fn format_value(value: f64) -> String {
    format!("{value:?}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_scale_correctly() {
        for (tok, expect) in [
            ("1t", 1e12),
            ("1g", 1e9),
            ("1meg", 1e6),
            ("2.5k", 2.5e3),
            ("3m", 3e-3),
            ("4u", 4e-6),
            ("5n", 5e-9),
            ("6p", 6e-12),
            ("7f", 7e-15),
            ("-2.5", -2.5),
            (".5", 0.5),
            ("1e3", 1e3),
            ("1.5e-9", 1.5e-9),
        ] {
            assert_eq!(parse_value(tok, 1).unwrap(), expect, "token {tok}");
        }
    }

    #[test]
    fn plain_exponent_floats_win_over_suffix_splitting() {
        // `1e-15` must parse as the float, not as `1e-1` + `5`-ish nonsense.
        assert_eq!(parse_value("1e-15", 1).unwrap(), 1e-15);
        // `2e3` is a float; `2k` uses a suffix; both are 2000.
        assert_eq!(
            parse_value("2e3", 1).unwrap(),
            parse_value("2k", 1).unwrap()
        );
    }

    #[test]
    fn malformed_values_are_rejected_with_spans() {
        for tok in ["", "abc", "1ns", "10pf", "--3", "1..2", "k", "1e999"] {
            let err = parse_value(tok, 42).unwrap_err();
            assert_eq!(err.line(), Some(42), "token {tok:?}");
        }
    }

    #[test]
    fn format_round_trips_awkward_values() {
        for v in [
            0.1 + 0.2,
            1.0 / 3.0,
            25.0 * (1.0 + 0.25 * 0.123456789),
            8.0e-15,
            f64::MIN_POSITIVE,
            1.2345678901234567e300,
        ] {
            assert_eq!(parse_value(&format_value(v), 1).unwrap(), v, "value {v}");
        }
    }
}
