//! Card-level parsing: logical lines → the [`Netlist`] IR.

use std::collections::HashMap;

use crate::deck::{
    CapacitorCard, Card, CurrentSourceCard, Netlist, ResistorCard, SourceWaveform, SupplyCard,
    TranMethod, TranSpec,
};
use crate::lexer::{lex, LogicalLine};
use crate::value::parse_value;
use crate::{NetlistError, Result};
use opera_grid::CapacitorClass;

/// Node names that mean "ground" (the reference net of the VDD-net model).
pub const GROUND_NAMES: [&str; 2] = ["0", "gnd"];

/// `true` when `name` (lower-cased) denotes the ground net.
///
/// ```
/// use opera_netlist::is_ground;
///
/// assert!(is_ground("0") && is_ground("gnd"));
/// assert!(!is_ground("n1_0_0"));
/// ```
pub fn is_ground(name: &str) -> bool {
    GROUND_NAMES.contains(&name)
}

/// Parses deck text into a validated [`Netlist`].
///
/// Per-card validation happens here (grammar, arity, numeric values,
/// duplicate element names); whole-circuit checks happen in
/// [`Netlist::lower`]. See `docs/NETLIST.md` for the accepted grammar.
///
/// # Errors
///
/// Returns the first [`NetlistError`] encountered, with the deck line it
/// points at.
///
/// # Example
///
/// ```
/// use opera_netlist::parse;
///
/// let deck = parse(
///     "* two-node chain\n\
///      VDD vddnode 0 1.8\n\
///      Rpad vddnode n1 0.05\n\
///      Rw1 n1 n2 0.2\n\
///      C1 n2 0 10f class=gate\n\
///      I1 n2 0 PWL(0 0 1n 5m 2n 0)\n\
///      .tran 50p 2n\n\
///      .end\n",
/// )
/// .unwrap();
/// assert_eq!(deck.cards.len(), 5);
/// assert!(deck.tran.is_some());
/// ```
pub fn parse(text: &str) -> Result<Netlist> {
    let _span = opera_trace::span("netlist.parse");
    let lines = lex(text)?;
    let mut cards: Vec<Card> = Vec::new();
    let mut tran: Option<TranSpec> = None;
    let mut seen_names: HashMap<String, usize> = HashMap::new();

    for ll in lines {
        let first = ll.fields[0].as_str();
        if let Some(directive) = first.strip_prefix('.') {
            match directive {
                "tran" => {
                    if tran.is_some() {
                        return Err(NetlistError::Syntax {
                            line: ll.line,
                            message: "multiple .tran directives (only one is allowed)".to_string(),
                        });
                    }
                    tran = Some(parse_tran(&ll)?);
                }
                // `.op` is accepted for IBM-benchmark compatibility: the
                // engine always solves the t = 0 operating point anyway.
                "op" => {}
                "end" => break,
                _ => {
                    return Err(NetlistError::Unsupported {
                        line: ll.line,
                        what: first.to_string(),
                        hint: "only .tran, .op and .end directives are supported".to_string(),
                    });
                }
            }
            continue;
        }

        let card = match first.chars().next() {
            Some('r') => Card::Resistor(parse_resistor(&ll)?),
            Some('c') => Card::Capacitor(parse_capacitor(&ll)?),
            Some('i') => Card::Current(parse_current(&ll)?),
            Some('v') => Card::Supply(parse_supply(&ll)?),
            Some(
                c @ ('l' | 'd' | 'q' | 'm' | 'x' | 'k' | 'e' | 'f' | 'g' | 'h' | 'b' | 's' | 'w'
                | 't' | 'u' | 'o' | 'j' | 'z'),
            ) => {
                return Err(NetlistError::Unsupported {
                    line: ll.line,
                    what: first.to_string(),
                    hint: format!(
                        "`{c}` elements are outside the power-grid subset; \
                         only R, C, I and V cards are supported"
                    ),
                });
            }
            _ => {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: format!(
                        "unrecognised card `{first}` (expected an R/C/I/V element \
                         or a .tran/.op/.end directive)"
                    ),
                });
            }
        };

        if let Some(&previous_line) = seen_names.get(card.name()) {
            return Err(NetlistError::Duplicate {
                line: ll.line,
                previous_line,
                name: card.name().to_string(),
            });
        }
        seen_names.insert(card.name().to_string(), ll.line);
        cards.push(card);
    }

    Ok(Netlist { cards, tran })
}

/// Trailing `key=value` parameters of a card, in order.
type Params<'a> = Vec<(&'a str, &'a str)>;

/// Splits off the trailing `key=value` parameters (tokenised as
/// `key "=" value` triples) and returns `(positional, params)`.
fn split_params<'a>(fields: &'a [String], line: usize) -> Result<(&'a [String], Params<'a>)> {
    let Some(first_eq) = fields.iter().position(|f| f == "=") else {
        return Ok((fields, Vec::new()));
    };
    if first_eq == 0 {
        return Err(NetlistError::Syntax {
            line,
            message: "`=` with no parameter name before it".to_string(),
        });
    }
    let split = first_eq - 1;
    let (positional, tail) = fields.split_at(split);
    let mut params = Vec::new();
    let mut chunks = tail.chunks_exact(3);
    for chunk in &mut chunks {
        if chunk[1] != "=" || chunk[0] == "=" || chunk[2] == "=" {
            return Err(NetlistError::Syntax {
                line,
                message: "parameters must be trailing `key=value` pairs".to_string(),
            });
        }
        let key = chunk[0].as_str();
        if params.iter().any(|&(k, _)| k == key) {
            return Err(NetlistError::Syntax {
                line,
                message: format!("parameter `{key}` is given more than once"),
            });
        }
        params.push((key, chunk[2].as_str()));
    }
    if !chunks.remainder().is_empty() {
        return Err(NetlistError::Syntax {
            line,
            message: "incomplete trailing `key=value` parameter".to_string(),
        });
    }
    Ok((positional, params))
}

fn expect_arity(ll: &LogicalLine, positional: &[String], n: usize, usage: &str) -> Result<()> {
    if positional.len() != n {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: format!(
                "expected `{usage}`, got {} field(s): `{}`",
                positional.len(),
                positional.join(" ")
            ),
        });
    }
    Ok(())
}

fn require_positive(value: f64, token: &str, line: usize, what: &str) -> Result<()> {
    if value > 0.0 {
        Ok(())
    } else {
        Err(NetlistError::Value {
            line,
            token: token.to_string(),
            message: format!("{what} must be positive, got {value}"),
        })
    }
}

fn parse_resistor(ll: &LogicalLine) -> Result<ResistorCard> {
    let (positional, params) = split_params(&ll.fields, ll.line)?;
    reject_params(ll.line, &params, &[])?;
    expect_arity(ll, positional, 4, "Rname a b value")?;
    let token = positional[3].as_str();
    // The dialect's exact-interchange extension: a trailing `s` marks the
    // value as a conductance in siemens (`25S`, `1.5kS`); plain values are
    // ohms and are reciprocated here, once.
    let conductance = match token.strip_suffix('s') {
        Some(siemens) if !siemens.is_empty() => {
            let g = parse_value(siemens, ll.line)?;
            require_positive(g, token, ll.line, "conductance")?;
            g
        }
        _ => {
            let ohms = parse_value(token, ll.line)?;
            require_positive(ohms, token, ll.line, "resistance")?;
            1.0 / ohms
        }
    };
    Ok(ResistorCard {
        name: positional[0].clone(),
        line: ll.line,
        a: positional[1].clone(),
        b: positional[2].clone(),
        conductance,
    })
}

fn parse_capacitor(ll: &LogicalLine) -> Result<CapacitorCard> {
    let (positional, params) = split_params(&ll.fields, ll.line)?;
    expect_arity(ll, positional, 4, "Cname node 0 value [class=…]")?;
    let node = grounded_terminal(ll, &positional[1], &positional[2], "capacitor")?;
    let capacitance = parse_value(&positional[3], ll.line)?;
    if capacitance < 0.0 {
        return Err(NetlistError::Value {
            line: ll.line,
            token: positional[3].clone(),
            message: "capacitance must be non-negative".to_string(),
        });
    }
    let mut class = CapacitorClass::Diffusion;
    for (key, value) in reject_params(ll.line, &params, &["class"])? {
        debug_assert_eq!(key, "class");
        class = match value {
            "gate" => CapacitorClass::Gate,
            "diffusion" => CapacitorClass::Diffusion,
            "interconnect" => CapacitorClass::Interconnect,
            other => {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: format!(
                        "unknown capacitor class `{other}` \
                         (expected gate, diffusion or interconnect)"
                    ),
                });
            }
        };
    }
    Ok(CapacitorCard {
        name: positional[0].clone(),
        line: ll.line,
        node,
        capacitance,
        class,
    })
}

fn parse_current(ll: &LogicalLine) -> Result<CurrentSourceCard> {
    let (positional, params) = split_params(&ll.fields, ll.line)?;
    if positional.len() < 4 {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: "expected `Iname node 0 <value | PWL …| PULSE …> [block=k]`".to_string(),
        });
    }
    let node = grounded_terminal(ll, &positional[1], &positional[2], "current source")?;
    let waveform = parse_waveform(ll, &positional[3..])?;
    let mut block = 0usize;
    for (key, value) in reject_params(ll.line, &params, &["block"])? {
        debug_assert_eq!(key, "block");
        block = value.parse().map_err(|_| NetlistError::Value {
            line: ll.line,
            token: value.to_string(),
            message: "block id must be a non-negative integer".to_string(),
        })?;
    }
    Ok(CurrentSourceCard {
        name: positional[0].clone(),
        line: ll.line,
        node,
        waveform,
        block,
    })
}

fn parse_supply(ll: &LogicalLine) -> Result<SupplyCard> {
    let (positional, params) = split_params(&ll.fields, ll.line)?;
    reject_params(ll.line, &params, &[])?;
    // Accept both `Vname node 0 value` and `Vname node 0 DC value`.
    let value_fields: &[String] = match positional {
        [_, _, _, _] => &positional[3..],
        [_, _, _, dc, _] if dc.as_str() == "dc" => &positional[4..],
        _ => {
            return Err(NetlistError::Syntax {
                line: ll.line,
                message: "expected `Vname node 0 value` (optionally `… 0 DC value`)".to_string(),
            });
        }
    };
    let (node, gnd) = (&positional[1], &positional[2]);
    if !is_ground(gnd) {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: format!(
                "a supply must connect a node to ground with the node first \
                 (`Vname node 0 value`); got terminals `{node}` and `{gnd}`"
            ),
        });
    }
    if is_ground(node) {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: "supply node cannot be ground".to_string(),
        });
    }
    let volts = parse_value(&value_fields[0], ll.line)?;
    if volts <= 0.0 {
        return Err(NetlistError::Lowering {
            line: ll.line,
            message: format!(
                "supply voltage must be positive, got {volts}; this front end \
                 analyzes the VDD net only (model ground-net decks separately)"
            ),
        });
    }
    Ok(SupplyCard {
        name: positional[0].clone(),
        line: ll.line,
        node: node.clone(),
        volts,
    })
}

fn parse_waveform(ll: &LogicalLine, fields: &[String]) -> Result<SourceWaveform> {
    match fields[0].as_str() {
        "pwl" => {
            let values: Vec<f64> = fields[1..]
                .iter()
                .map(|f| parse_value(f, ll.line))
                .collect::<Result<_>>()?;
            if values.is_empty() || !values.len().is_multiple_of(2) {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: format!(
                        "PWL needs an even, non-zero number of values \
                         (t1 v1 t2 v2 …), got {}",
                        values.len()
                    ),
                });
            }
            let points: Vec<(f64, f64)> = values.chunks_exact(2).map(|p| (p[0], p[1])).collect();
            if points.windows(2).any(|w| w[1].0 < w[0].0) {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: "PWL breakpoint times must be non-decreasing".to_string(),
                });
            }
            Ok(SourceWaveform::Pwl(points))
        }
        "pulse" => {
            if fields.len() != 8 {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: format!(
                        "PULSE takes exactly 7 values (i1 i2 td tr tf pw per), got {}",
                        fields.len() - 1
                    ),
                });
            }
            let v: Vec<f64> = fields[1..]
                .iter()
                .map(|f| parse_value(f, ll.line))
                .collect::<Result<_>>()?;
            for (label, &t) in ["td", "tr", "tf", "pw", "per"].iter().zip(&v[2..]) {
                if t < 0.0 {
                    return Err(NetlistError::Syntax {
                        line: ll.line,
                        message: format!("PULSE {label} must be non-negative, got {t}"),
                    });
                }
            }
            Ok(SourceWaveform::Pulse {
                base: v[0],
                peak: v[1],
                delay: v[2],
                rise: v[3],
                fall: v[4],
                width: v[5],
                period: v[6],
            })
        }
        "dc" if fields.len() == 2 => Ok(SourceWaveform::Dc(parse_value(&fields[1], ll.line)?)),
        _ if fields.len() == 1 => Ok(SourceWaveform::Dc(parse_value(&fields[0], ll.line)?)),
        other => Err(NetlistError::Syntax {
            line: ll.line,
            message: format!(
                "expected a DC value, `PWL(t v …)` or `PULSE(i1 i2 td tr tf pw per)`, \
                 got `{other} …`"
            ),
        }),
    }
}

fn parse_tran(ll: &LogicalLine) -> Result<TranSpec> {
    let (fields, params) = split_params(&ll.fields, ll.line)?;
    if !(3..=4).contains(&fields.len()) {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: "expected `.tran tstep tstop [tstart] [method=be|trap|trbdf2]`".to_string(),
        });
    }
    let params = reject_params(ll.line, &params, &["method"])?;
    let mut method = None;
    for (key, value) in params {
        debug_assert_eq!(key, "method");
        method = Some(match value.to_ascii_lowercase().as_str() {
            "be" => TranMethod::BackwardEuler,
            "trap" => TranMethod::Trapezoidal,
            "trbdf2" => TranMethod::TrBdf2,
            other => {
                return Err(NetlistError::Syntax {
                    line: ll.line,
                    message: format!(
                        "unknown integration method `{other}` (supported: be, trap, trbdf2)"
                    ),
                })
            }
        });
    }
    let time_step = parse_value(&fields[1], ll.line)?;
    let end_time = parse_value(&fields[2], ll.line)?;
    if fields.len() == 4 && parse_value(&fields[3], ll.line)? != 0.0 {
        return Err(NetlistError::Unsupported {
            line: ll.line,
            what: ".tran tstart".to_string(),
            hint: "a non-zero tstart is not supported; the transient always starts at 0"
                .to_string(),
        });
    }
    if !(time_step > 0.0 && end_time > 0.0 && time_step <= end_time) {
        return Err(NetlistError::Syntax {
            line: ll.line,
            message: format!(
                "need 0 < tstep <= tstop, got tstep = {time_step}, tstop = {end_time}"
            ),
        });
    }
    Ok(TranSpec {
        time_step,
        end_time,
        method,
    })
}

/// Validates that every parameter key is in `allowed`; returns the params.
fn reject_params<'a>(
    line: usize,
    params: &[(&'a str, &'a str)],
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>> {
    for &(key, _) in params {
        if !allowed.contains(&key) {
            return Err(NetlistError::Syntax {
                line,
                message: if allowed.is_empty() {
                    format!("this card takes no `key=value` parameters, got `{key}=…`")
                } else {
                    format!(
                        "unknown parameter `{key}` (supported: {})",
                        allowed.join(", ")
                    )
                },
            });
        }
    }
    Ok(params.to_vec())
}

/// For two-terminal-to-ground elements: exactly one terminal must be
/// ground; returns the other (the grid node), which must come first.
fn grounded_terminal(ll: &LogicalLine, a: &str, b: &str, what: &str) -> Result<String> {
    match (is_ground(a), is_ground(b)) {
        (false, true) => Ok(a.to_string()),
        (true, false) => Err(NetlistError::Syntax {
            line: ll.line,
            message: format!(
                "write the grid node first (`…name {b} 0 …`): a {what}'s \
                 second terminal must be ground"
            ),
        }),
        (true, true) => Err(NetlistError::Syntax {
            line: ll.line,
            message: format!("{what} has both terminals grounded"),
        }),
        (false, false) => Err(NetlistError::Lowering {
            line: ll.line,
            message: format!(
                "{what} between two grid nodes (`{a}`, `{b}`) is not supported; \
                 the second terminal must be ground (`0`)"
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_deck() {
        let deck = parse(
            "VDD p 0 1.2\n\
             Rp p n1 10s\n\
             Rv1 n1 n2 0.5\n\
             C1 n1 0 1f\n\
             I1 n2 0 2m block=3\n",
        )
        .unwrap();
        assert_eq!(deck.cards.len(), 5);
        let r: Vec<_> = deck.resistors().collect();
        assert_eq!(r[0].conductance, 10.0);
        assert_eq!(r[1].conductance, 1.0 / 0.5);
        let i = deck.current_sources().next().unwrap();
        assert_eq!(i.block, 3);
        assert_eq!(i.waveform, SourceWaveform::Dc(2e-3));
    }

    #[test]
    fn dc_keyword_and_pulse_parse() {
        let deck = parse(
            "V1 p 0 DC 1.8\n\
             I1 n 0 DC 5m\n\
             I2 n 0 PULSE(0 1m 0.1n 0.1n 0.1n 0.3n 1n)\n",
        )
        .unwrap();
        assert_eq!(deck.supplies().next().unwrap().volts, 1.8);
        let sources: Vec<_> = deck.current_sources().collect();
        assert_eq!(sources[0].waveform, SourceWaveform::Dc(5e-3));
        assert!(matches!(
            sources[1].waveform,
            SourceWaveform::Pulse { peak, .. } if peak == 1e-3
        ));
    }

    #[test]
    fn spans_point_at_the_offending_card() {
        let err = parse("V1 p 0 1.2\nR1 p n1 0.1\nR1 n1 n2 0.1\n").unwrap_err();
        assert_eq!(
            err,
            NetlistError::Duplicate {
                line: 3,
                previous_line: 2,
                name: "r1".to_string()
            }
        );
    }

    #[test]
    fn tran_is_validated() {
        assert!(parse(".tran 1n 10n\n").unwrap().tran.is_some());
        assert!(parse(".tran 1n 10n 0\n").is_ok());
        assert!(parse(".tran 1n 10n 1n\n").is_err());
        assert!(parse(".tran 10n 1n\n").is_err());
        assert!(parse(".tran 1n\n").is_err());
        assert!(parse(".tran 1n 2n\n.tran 1n 2n\n").is_err());
    }

    #[test]
    fn tran_method_parameter_is_parsed_and_validated() {
        let tran = parse(".tran 1n 10n\n").unwrap().tran.unwrap();
        assert_eq!(tran.method, None);
        for (spelling, expected) in [
            ("be", TranMethod::BackwardEuler),
            ("trap", TranMethod::Trapezoidal),
            ("trbdf2", TranMethod::TrBdf2),
            ("TRBDF2", TranMethod::TrBdf2),
        ] {
            let deck = format!(".tran 1n 10n method={spelling}\n");
            let tran = parse(&deck).unwrap().tran.unwrap();
            assert_eq!(tran.method, Some(expected), "method={spelling}");
        }
        let tran = parse(".tran 1n 10n 0 method=be\n").unwrap().tran.unwrap();
        assert_eq!(tran.method, Some(TranMethod::BackwardEuler));

        let err = parse(".tran 1n 10n method=gear2\n").unwrap_err();
        assert!(err.to_string().contains("unknown integration method"));
        let err = parse(".tran 1n 10n order=2\n").unwrap_err();
        assert!(err.to_string().contains("unknown parameter `order`"));
    }
}
