//! Line-level preprocessing: comments, continuations, field splitting.
//!
//! SPICE decks are line-oriented. The lexer turns the raw text into
//! *logical lines* — each one card — by:
//!
//! * dropping blank lines and full-line comments (first non-blank character
//!   `*`),
//! * stripping inline comments (`$` or `;` to end of line),
//! * joining continuation lines (first non-blank character `+`) onto the
//!   previous logical line,
//! * lower-casing everything (SPICE is case-insensitive; names are reported
//!   lower-cased),
//! * treating `(`, `)`, `,` and `=` as field separators (`=` is kept as its
//!   own token so `block=3` parses as a key/value pair), so
//!   `PWL(0 0, 1n 2m)` and `pwl 0 0 1n 2m` tokenise identically.
//!
//! Each logical line remembers the 1-based physical line its card started
//! on, which is what every parse error reports.

use crate::{NetlistError, Result};

/// One card after preprocessing: its fields and where it started.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalLine {
    /// 1-based physical line number of the card's first line.
    pub line: usize,
    /// Whitespace/paren/comma-separated fields, lower-cased. Never empty.
    pub fields: Vec<String>,
}

/// Splits deck text into logical lines.
///
/// # Errors
///
/// Returns [`NetlistError::Syntax`] for a continuation line (`+ …`) with no
/// preceding card.
///
/// # Example
///
/// ```
/// use opera_netlist::lex;
///
/// let lines = lex("* a comment\nR1 a b 10 $ inline comment\n+ extra\n").unwrap();
/// assert_eq!(lines.len(), 1);
/// assert_eq!(lines[0].line, 2);
/// assert_eq!(lines[0].fields, ["r1", "a", "b", "10", "extra"]);
/// ```
pub fn lex(text: &str) -> Result<Vec<LogicalLine>> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        // Inline comments first, then trim.
        let body = raw
            .split(['$', ';'])
            .next()
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase();
        if body.is_empty() || body.starts_with('*') {
            continue;
        }
        let (continuation, body) = match body.strip_prefix('+') {
            Some(rest) => (true, rest.to_string()),
            None => (false, body),
        };
        let fields = split_fields(&body);
        if continuation {
            let Some(last) = out.last_mut() else {
                return Err(NetlistError::Syntax {
                    line: line_no,
                    message: "continuation line (`+ …`) with no card to continue".to_string(),
                });
            };
            last.fields.extend(fields);
        } else if !fields.is_empty() {
            out.push(LogicalLine {
                line: line_no,
                fields,
            });
        }
    }
    Ok(out)
}

/// Splits one physical line into fields, treating parens and commas as
/// whitespace and `=` as its own token.
fn split_fields(body: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    for ch in body.chars() {
        match ch {
            '(' | ')' | ',' | ' ' | '\t' => {
                if !current.is_empty() {
                    fields.push(std::mem::take(&mut current));
                }
            }
            '=' => {
                if !current.is_empty() {
                    fields.push(std::mem::take(&mut current));
                }
                fields.push("=".to_string());
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        fields.push(current);
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_blanks_and_case_are_normalised() {
        let lines = lex("* title-ish comment\n\n  VDD Vdd 0 1.2 ; trailing\n*last\n").unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].line, 3);
        assert_eq!(lines[0].fields, ["vdd", "vdd", "0", "1.2"]);
    }

    #[test]
    fn continuations_join_with_the_first_line_number() {
        let lines = lex("I1 n1 0 PWL(0 0\n* interleaved comment\n+ 1n 2m)\nR1 a b 5\n").unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].line, 1);
        assert_eq!(
            lines[0].fields,
            ["i1", "n1", "0", "pwl", "0", "0", "1n", "2m"]
        );
        assert_eq!(lines[1].line, 4);
    }

    #[test]
    fn equals_becomes_its_own_token() {
        let lines = lex("C1 n1 0 2f class=gate\n").unwrap();
        assert_eq!(
            lines[0].fields,
            ["c1", "n1", "0", "2f", "class", "=", "gate"]
        );
    }

    #[test]
    fn dangling_continuation_is_an_error() {
        let err = lex("+ 1 2 3\n").unwrap_err();
        assert_eq!(err.line(), Some(1));
    }
}
