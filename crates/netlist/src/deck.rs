//! The validated netlist IR: typed cards in deck order.
//!
//! [`parse`](crate::parse) produces a [`Netlist`] — a list of [`Card`]s in
//! the order they appeared — after per-card validation (arity, numeric
//! values, duplicate names). Whole-circuit semantics (supply consistency,
//! node indexing, connectivity) are checked when the netlist is
//! [lowered](Netlist::lower) to a [`PowerGrid`](opera_grid::PowerGrid).
//!
//! Deck order is load-bearing: it defines both the node-index assignment
//! (first appearance) and the stamping order of branches, capacitors and
//! sources, which is what makes the exporter's round trip bit-identical.

use opera_grid::CapacitorClass;

/// The transient analysis window from a `.tran tstep tstop [tstart]
/// [method=be|trap|trbdf2]` directive.
///
/// ```
/// use opera_netlist::{parse, TranMethod};
///
/// let deck = parse("VDD s 0 1.2\nR1 s a 1\n.tran 10p 2n method=trbdf2\n").unwrap();
/// let tran = deck.tran.unwrap();
/// assert_eq!(tran.time_step, 10e-12);
/// assert_eq!(tran.end_time, 2e-9);
/// assert_eq!(tran.method, Some(TranMethod::TrBdf2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranSpec {
    /// Suggested time step in seconds (`tstep`).
    pub time_step: f64,
    /// End of the transient window in seconds (`tstop`).
    pub end_time: f64,
    /// The requested integration scheme (`method=…`), when the deck named
    /// one; `None` leaves the consumer's default in place.
    pub method: Option<TranMethod>,
}

/// The integration scheme named by a `.tran … method=…` parameter. The
/// netlist crate only records the request; the engine maps it onto its own
/// `IntegrationMethod` when it adopts the deck's transient window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranMethod {
    /// `method=be` — backward Euler.
    BackwardEuler,
    /// `method=trap` — trapezoidal.
    Trapezoidal,
    /// `method=trbdf2` — the L-stable TR-BDF2 composite.
    TrBdf2,
}

/// A current-source waveform as written in the deck, before expansion to a
/// piecewise-linear [`Waveform`](opera_grid::Waveform) at lowering time.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceWaveform {
    /// A constant (DC) current in amperes: `I1 n 0 1m` or `I1 n 0 DC 1m`.
    Dc(f64),
    /// `PWL(t1 v1 t2 v2 …)` breakpoints, times non-decreasing.
    Pwl(Vec<(f64, f64)>),
    /// `PULSE(i1 i2 td tr tf pw per)` — SPICE argument order: base value,
    /// pulse value, delay, rise time, fall time, pulse width, period.
    Pulse {
        /// Base current `i1` in amperes.
        base: f64,
        /// Pulsed current `i2` in amperes.
        peak: f64,
        /// Delay `td` before the first pulse, seconds.
        delay: f64,
        /// Rise time `tr`, seconds.
        rise: f64,
        /// Fall time `tf`, seconds.
        fall: f64,
        /// Pulse width `pw`, seconds.
        width: f64,
        /// Period `per`, seconds (`0` = a single pulse).
        period: f64,
    },
}

/// A resistor card `Rname a b value`.
///
/// The stored value is always a *conductance*: plain values are ohms and
/// are reciprocated once at parse time; values with the dialect's `S`
/// suffix (`25S`, `1.5kS`) are siemens verbatim, which is what lets the
/// exporter round-trip conductances bit-exactly (see `docs/NETLIST.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct ResistorCard {
    /// Element name (lower-cased, unique). Names starting with `rvia`, or
    /// `rv` followed by a digit (`rv12`), lower to
    /// [`BranchKind::Via`](opera_grid::BranchKind::Via); everything else
    /// between two grid nodes is a metal wire, and any resistor touching a
    /// supply node becomes a package pad.
    pub name: String,
    /// 1-based deck line of the card.
    pub line: usize,
    /// First terminal (node name).
    pub a: String,
    /// Second terminal (node name).
    pub b: String,
    /// Branch conductance in siemens (always positive and finite).
    pub conductance: f64,
}

/// A grounded-capacitor card `Cname node 0 value [class=…]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitorCard {
    /// Element name (lower-cased, unique).
    pub name: String,
    /// 1-based deck line of the card.
    pub line: usize,
    /// The grid node the capacitor hangs off (the other terminal is
    /// ground).
    pub node: String,
    /// Capacitance in farads (non-negative, finite).
    pub capacitance: f64,
    /// Physical origin, from the optional `class=gate|diffusion|interconnect`
    /// field; defaults to [`CapacitorClass::Diffusion`] (treated as fixed by
    /// the variation models).
    pub class: CapacitorClass,
}

/// A current-source card `Iname node 0 <waveform> [block=k]`, drawing
/// current from `node` to ground.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSourceCard {
    /// Element name (lower-cased, unique).
    pub name: String,
    /// 1-based deck line of the card.
    pub line: usize,
    /// The grid node the source draws from (the other terminal is ground).
    pub node: String,
    /// The waveform as written.
    pub waveform: SourceWaveform,
    /// Functional-block id from the optional `block=k` field (default `0`);
    /// used by intra-die variation models.
    pub block: usize,
}

/// A supply card `Vname node 0 value`, pinning `node` to the external VDD.
#[derive(Debug, Clone, PartialEq)]
pub struct SupplyCard {
    /// Element name (lower-cased, unique).
    pub name: String,
    /// 1-based deck line of the card.
    pub line: usize,
    /// The supply node. Resistors touching it become package pads.
    pub node: String,
    /// Supply voltage in volts (positive, finite; all supplies must agree).
    pub volts: f64,
}

/// One card of the deck, in deck order.
#[derive(Debug, Clone, PartialEq)]
pub enum Card {
    /// A resistor (`R…`).
    Resistor(ResistorCard),
    /// A grounded capacitor (`C…`).
    Capacitor(CapacitorCard),
    /// A transient current source (`I…`).
    Current(CurrentSourceCard),
    /// An ideal VDD supply (`V…`).
    Supply(SupplyCard),
}

impl Card {
    /// The card's element name.
    pub fn name(&self) -> &str {
        match self {
            Card::Resistor(c) => &c.name,
            Card::Capacitor(c) => &c.name,
            Card::Current(c) => &c.name,
            Card::Supply(c) => &c.name,
        }
    }

    /// The 1-based deck line the card started on.
    pub fn line(&self) -> usize {
        match self {
            Card::Resistor(c) => c.line,
            Card::Capacitor(c) => c.line,
            Card::Current(c) => c.line,
            Card::Supply(c) => c.line,
        }
    }
}

/// A parsed deck: validated cards in deck order plus the optional `.tran`
/// window.
///
/// ```
/// use opera_netlist::{parse, Card};
///
/// let deck = parse(
///     "VDD s 0 1.2\nRp1 s n1 0.1\nRw1 n1 n2 0.5\nC1 n2 0 1f\nI1 n2 0 1m\n.end\n",
/// )
/// .unwrap();
/// assert_eq!(deck.cards.len(), 5);
/// assert!(matches!(deck.cards[0], Card::Supply(_)));
/// assert_eq!(deck.resistors().count(), 2);
/// let lowered = deck.lower().unwrap();
/// assert_eq!(lowered.grid.node_count(), 2); // n1, n2 — `s` is the supply
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    /// All element cards, in deck order.
    pub cards: Vec<Card>,
    /// The `.tran` directive, when present.
    pub tran: Option<TranSpec>,
}

impl Netlist {
    /// Iterates over the resistor cards in deck order.
    pub fn resistors(&self) -> impl Iterator<Item = &ResistorCard> + '_ {
        self.cards.iter().filter_map(|c| match c {
            Card::Resistor(r) => Some(r),
            _ => None,
        })
    }

    /// Iterates over the capacitor cards in deck order.
    pub fn capacitors(&self) -> impl Iterator<Item = &CapacitorCard> + '_ {
        self.cards.iter().filter_map(|c| match c {
            Card::Capacitor(r) => Some(r),
            _ => None,
        })
    }

    /// Iterates over the current-source cards in deck order.
    pub fn current_sources(&self) -> impl Iterator<Item = &CurrentSourceCard> + '_ {
        self.cards.iter().filter_map(|c| match c {
            Card::Current(r) => Some(r),
            _ => None,
        })
    }

    /// Iterates over the supply cards in deck order.
    pub fn supplies(&self) -> impl Iterator<Item = &SupplyCard> + '_ {
        self.cards.iter().filter_map(|c| match c {
            Card::Supply(r) => Some(r),
            _ => None,
        })
    }
}
