//! Stochastic collocation for the OPERA power-grid reproduction.
//!
//! The paper's Galerkin spectral-stochastic method couples all polynomial
//! chaos coefficients into one large augmented system. Stochastic
//! *collocation* is the non-intrusive alternative: evaluate the stochastic
//! grid model at a finite set of quadrature nodes
//! (a [Smolyak sparse grid](opera_pce::sparse_grid::smolyak_grid) or a full
//! [tensor grid](opera_pce::sparse_grid::tensor_grid)), run an ordinary
//! **deterministic** transient analysis at each node, and recover the same
//! polynomial-chaos coefficients by discrete projection.
//!
//! Two properties make this a first-class parallel workload:
//!
//! * every node solve is independent, so the sweep fans out over a `rayon`
//!   pool, and
//! * every realised matrix has the same sparsity structure, so all node
//!   factorisations share **one**
//!   [`SymbolicCholesky`](opera_sparse::SymbolicCholesky) analysis —
//!   ordering, elimination tree and column counts are computed once, and each
//!   node performs only the numeric phase.
//!
//! The projection accumulates node traces in a fixed order, so the resulting
//! statistics are bit-identical for every worker-thread count.
//!
//! This crate is deliberately independent of the Galerkin engine; the
//! `opera` crate integrates it as
//! `OperaEngine::collocation(&CollocationConfig)`.
//!
//! # Example
//!
//! ```
//! use opera_collocation::{build_grid, solve_collocation, GridKind, TransientSpec};
//! use opera_grid::GridSpec;
//! use opera_pce::OrthogonalBasis;
//! use opera_variation::{StochasticGridModel, VariationSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = GridSpec::small_test(100).build()?;
//! let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())?;
//! let basis = OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), 2)?;
//! let nodes = build_grid(GridKind::Smolyak, &model.families(), 2)?;
//! let run = solve_collocation(
//!     &model,
//!     &basis,
//!     &nodes,
//!     &TransientSpec::new(0.25e-9, 1.0e-9),
//! )?;
//! // One shared symbolic analysis served every node factorisation.
//! assert_eq!(run.stats.symbolic_analyses, 1);
//! assert_eq!(run.stats.numeric_factorizations, 2 * run.stats.nodes);
//! // The zeroth coefficient is the mean voltage.
//! assert!(run.coefficients[0][0].iter().all(|&v| v > 0.0));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod driver;
mod error;

pub use driver::{
    build_grid, solve_collocation, CollocationRun, CollocationStats, GridKind, StepScheme,
    TransientSpec,
};
pub use error::CollocationError;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CollocationError>;

#[cfg(test)]
mod tests {
    use super::*;
    use opera_grid::GridSpec;
    use opera_pce::OrthogonalBasis;
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn setup(nodes: usize, seed: u64) -> (StochasticGridModel, OrthogonalBasis) {
        let grid = GridSpec::small_test(nodes).with_seed(seed).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let basis =
            OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), 2).unwrap();
        (model, basis)
    }

    fn run_level2(model: &StochasticGridModel, basis: &OrthogonalBasis) -> CollocationRun {
        let nodes = build_grid(GridKind::Smolyak, &model.families(), 2).unwrap();
        solve_collocation(model, basis, &nodes, &TransientSpec::new(0.25e-9, 1.0e-9)).unwrap()
    }

    #[test]
    fn zero_variation_collapses_to_the_nominal_transient() {
        let grid = GridSpec::small_test(80).with_seed(5).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &VariationSpec::none()).unwrap();
        let basis =
            OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), 2).unwrap();
        let run = run_level2(&model, &basis);
        let k = run.times.len() - 1;
        for n in 0..run.node_count {
            // All higher coefficients vanish: the response does not depend
            // on ξ at all.
            for i in 1..basis.len() {
                assert!(
                    run.coefficients[k][i][n].abs() < 1e-9,
                    "coefficient ({k}, {i}, {n}) = {}",
                    run.coefficients[k][i][n]
                );
            }
            assert!(run.coefficients[k][0][n] > 0.0);
        }
    }

    #[test]
    fn shared_symbolic_matches_from_scratch_factorisations() {
        // The whole point of the shared analysis is that it changes nothing
        // numerically: spot-check one realised node solve against plain
        // CholeskyFactor::factor on the same matrices.
        use opera_sparse::{CholeskyFactor, SymbolicCholesky};
        let (model, _) = setup(90, 13);
        let h = 0.25e-9;
        let companion_nominal = model
            .nominal_conductance()
            .add_scaled(&model.nominal_capacitance().scaled(1.0 / h), 1.0)
            .unwrap();
        let symbolic = SymbolicCholesky::analyze(&companion_nominal).unwrap();
        let xi = [1.3, -0.8];
        let g = model.sample_conductance(&xi).unwrap();
        let shared = symbolic.factor_numeric(&g).unwrap();
        let scratch = CholeskyFactor::factor(&g).unwrap();
        let b = model.sample_excitation(0.0, &xi).unwrap();
        let x_shared = shared.solve(&b);
        let x_scratch = scratch.solve(&b);
        for (u, v) in x_shared.iter().zip(&x_scratch) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn statistics_are_bit_identical_across_thread_counts() {
        let (model, basis) = setup(100, 21);
        let mut runs = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let run = pool.install(|| run_level2(&model, &basis));
            runs.push(run);
        }
        for other in &runs[1..] {
            assert_eq!(runs[0].times, other.times);
            assert_eq!(
                runs[0].coefficients, other.coefficients,
                "coefficients depend on the worker-thread count"
            );
        }
    }

    #[test]
    fn counters_report_one_symbolic_analysis_and_two_factors_per_node() {
        let (model, basis) = setup(80, 2);
        let run = run_level2(&model, &basis);
        assert_eq!(run.stats.symbolic_analyses, 1);
        assert!(run.stats.nodes > 1);
        assert_eq!(run.stats.numeric_factorizations, 2 * run.stats.nodes);
    }

    #[test]
    fn trapezoidal_scheme_agrees_with_backward_euler_on_smooth_horizons() {
        let (model, basis) = setup(80, 3);
        let nodes = build_grid(GridKind::Smolyak, &model.families(), 1).unwrap();
        let mut spec = TransientSpec::new(0.1e-9, 1.0e-9);
        let be = solve_collocation(&model, &basis, &nodes, &spec).unwrap();
        spec.scheme = StepScheme::Trapezoidal;
        let trap = solve_collocation(&model, &basis, &nodes, &spec).unwrap();
        let k = be.times.len() - 1;
        for n in (0..be.node_count).step_by(11) {
            let d = (be.coefficients[k][0][n] - trap.coefficients[k][0][n]).abs();
            assert!(d < 1e-3 * be.coefficients[k][0][n].abs(), "diff {d}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let (model, basis) = setup(80, 4);
        let nodes = build_grid(GridKind::Tensor, &model.families(), 1).unwrap();
        let bad_step = TransientSpec::new(0.0, 1.0e-9);
        assert!(matches!(
            solve_collocation(&model, &basis, &nodes, &bad_step),
            Err(CollocationError::InvalidOptions { .. })
        ));
        let mut bad_scale = TransientSpec::new(0.25e-9, 1.0e-9);
        bad_scale.current_scale = f64::NAN;
        assert!(solve_collocation(&model, &basis, &nodes, &bad_scale).is_err());
        // Mismatched variable counts.
        let wrong_grid = build_grid(
            GridKind::Smolyak,
            &[opera_pce::PolynomialFamily::Hermite; 3],
            1,
        )
        .unwrap();
        assert!(matches!(
            solve_collocation(
                &model,
                &basis,
                &wrong_grid,
                &TransientSpec::new(0.25e-9, 1.0e-9)
            ),
            Err(CollocationError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn current_scale_rescales_only_the_switching_part() {
        let (model, basis) = setup(90, 7);
        let nodes = build_grid(GridKind::Smolyak, &model.families(), 1).unwrap();
        let base = solve_collocation(&model, &basis, &nodes, &TransientSpec::new(0.25e-9, 1.0e-9))
            .unwrap();
        let mut spec = TransientSpec::new(0.25e-9, 1.0e-9);
        spec.current_scale = 2.0;
        let heavy = solve_collocation(&model, &basis, &nodes, &spec).unwrap();
        // At t = 0 (quiescence) the two sweeps coincide.
        for n in (0..base.node_count).step_by(13) {
            assert!((base.coefficients[0][0][n] - heavy.coefficients[0][0][n]).abs() < 1e-12);
        }
        // Later, the heavy sweep droops further below the supply.
        let k = base.times.len() - 1;
        let mean = |run: &CollocationRun| {
            run.coefficients[k][0]
                .iter()
                .copied()
                .fold(f64::INFINITY, f64::min)
        };
        assert!(mean(&heavy) < mean(&base));
    }
}
