//! The collocation driver: one deterministic transient solve per quadrature
//! node, all sharing a single symbolic Cholesky analysis, combined into
//! polynomial-chaos coefficients by discrete projection.

use std::sync::atomic::{AtomicUsize, Ordering};

use rayon::prelude::*;

use opera_pce::sparse_grid::{smolyak_grid, tensor_grid, QuadratureGrid};
use opera_pce::{OrthogonalBasis, PolynomialFamily};
use opera_sparse::{SolveWorkspace, SymbolicCholesky};
use opera_variation::StochasticGridModel;

use crate::{CollocationError, Result};

/// Which multi-dimensional quadrature grid the collocation sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridKind {
    /// Smolyak sparse grid (combination technique) — the default; node
    /// counts grow polynomially with the number of random variables.
    #[default]
    Smolyak,
    /// Full tensor-product grid — exact to higher per-variable degree but
    /// exponential in the number of variables; useful as a reference.
    Tensor,
}

impl std::fmt::Display for GridKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridKind::Smolyak => write!(f, "smolyak"),
            GridKind::Tensor => write!(f, "tensor"),
        }
    }
}

/// Builds the quadrature grid of the requested kind at refinement `level`.
///
/// # Errors
///
/// Propagates grid-construction errors (empty family list, invalid family
/// parameters).
pub fn build_grid(
    kind: GridKind,
    families: &[PolynomialFamily],
    level: u32,
) -> Result<QuadratureGrid> {
    Ok(match kind {
        GridKind::Smolyak => smolyak_grid(families, level)?,
        GridKind::Tensor => tensor_grid(families, level)?,
    })
}

/// Time-integration scheme of the per-node transient solves.
///
/// This crate sits *below* the `opera` engine crate, so it cannot reuse the
/// integrator in `opera::transient`; the scheme enum, the step formulas and
/// [`TransientSpec::time_points`] deliberately mirror `IntegrationMethod`,
/// `CompanionSystem::step` and `TransientOptions::time_points` there and
/// must stay in sync (the engine maps its enum onto this one and relies on
/// both sides producing identical time grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepScheme {
    /// First-order implicit Euler (the default).
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule.
    Trapezoidal,
    /// Second-order L-stable TR-BDF2 composite (trapezoidal stage over
    /// `γh`, BDF2 stage over the remainder, `γ = 2 − √2`).
    TrBdf2,
}

/// TR-BDF2 stage split; mirrors the constant of the same name in
/// `opera::transient`.
pub const TR_BDF2_GAMMA: f64 = 2.0 - std::f64::consts::SQRT_2;
/// BDF2-stage weight of the intermediate state: `1/(2(1−γ))`.
const TR_BDF2_W_MID: f64 = 0.5 / (1.0 - TR_BDF2_GAMMA);
/// BDF2-stage weight of the old state: `(1−γ)/2`.
const TR_BDF2_W_OLD: f64 = 0.5 * (1.0 - TR_BDF2_GAMMA);

/// Transient options of the per-node deterministic solves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientSpec {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// End time in seconds (the solves cover `0..=end_time`).
    pub end_time: f64,
    /// Integration scheme.
    pub scheme: StepScheme,
    /// Multiplier applied to the switching currents, anchored at the
    /// quiescent `t = 0` excitation of each node's realisation (`1.0` = as
    /// modelled).
    pub current_scale: f64,
}

impl TransientSpec {
    /// Creates a backward-Euler spec with unscaled currents.
    pub fn new(time_step: f64, end_time: f64) -> Self {
        TransientSpec {
            time_step,
            end_time,
            scheme: StepScheme::BackwardEuler,
            current_scale: 1.0,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`CollocationError::InvalidOptions`] for non-positive or
    /// non-finite step/end times, a step exceeding the horizon, or a negative
    /// or non-finite current scale.
    pub fn validate(&self) -> Result<()> {
        if self.time_step <= 0.0 || !self.time_step.is_finite() {
            return Err(CollocationError::InvalidOptions {
                reason: format!("time_step must be positive, got {}", self.time_step),
            });
        }
        if self.end_time <= 0.0 || !self.end_time.is_finite() {
            return Err(CollocationError::InvalidOptions {
                reason: format!("end_time must be positive, got {}", self.end_time),
            });
        }
        if self.time_step > self.end_time {
            return Err(CollocationError::InvalidOptions {
                reason: "time_step must not exceed end_time".to_string(),
            });
        }
        if !self.current_scale.is_finite() || self.current_scale < 0.0 {
            return Err(CollocationError::InvalidOptions {
                reason: format!(
                    "current_scale must be finite and non-negative, got {}",
                    self.current_scale
                ),
            });
        }
        Ok(())
    }

    /// The time points `t₀ = 0, t₁ = h, …` covered by the solves.
    ///
    /// Interior points are the drift-free `k as f64 * h` form and the final
    /// point is `end_time` itself — bit-identical to
    /// `TransientOptions::time_points` in the engine crate.
    pub fn time_points(&self) -> Vec<f64> {
        let steps = (self.end_time / self.time_step).round() as usize;
        (0..=steps)
            .map(|k| {
                if k == steps {
                    self.end_time
                } else {
                    k as f64 * self.time_step
                }
            })
            .collect()
    }
}

/// Work counters of one collocation sweep — the test hooks proving the
/// setup-once/solve-many contract at the sparse-matrix level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollocationStats {
    /// Number of quadrature nodes solved.
    pub nodes: usize,
    /// Symbolic analyses (ordering + elimination tree + column counts)
    /// performed. Always `1`: every node reuses the one shared analysis.
    pub symbolic_analyses: usize,
    /// Numeric-only factorisations performed against the shared analysis
    /// (two per node: the DC matrix `G(ξ)` and the companion `G(ξ) + C(ξ)/h`).
    pub numeric_factorizations: usize,
}

/// The result of a collocation sweep: polynomial-chaos coefficients in the
/// same `[time][basis][node]` layout the Galerkin solver produces, plus the
/// work counters.
#[derive(Debug, Clone)]
pub struct CollocationRun {
    /// Time points of the per-node transient solves.
    pub times: Vec<f64>,
    /// Number of spatial grid nodes.
    pub node_count: usize,
    /// `coefficients[k][i][n]`: coefficient of basis function `ψ_i` for
    /// spatial node `n` at time `times[k]`.
    pub coefficients: Vec<Vec<Vec<f64>>>,
    /// Work counters.
    pub stats: CollocationStats,
}

/// Runs the collocation sweep: for every quadrature node `ξ_q`, realise
/// `G(ξ_q)`, `C(ξ_q)` and the excitation, numerically factor against the
/// **one shared symbolic analysis** (no re-ordering, no re-analysis), run the
/// deterministic transient, and project the node solutions onto `basis`.
///
/// Node solves fan out over the ambient `rayon` pool; the projection
/// accumulates traces strictly in node-index order, so the resulting
/// coefficients are bit-identical for every worker-thread count.
///
/// # Errors
///
/// Returns [`CollocationError::InvalidOptions`] for an empty grid or
/// mismatched variable counts, and propagates realisation and factorisation
/// errors (e.g. loss of positive definiteness at an extreme node).
pub fn solve_collocation(
    model: &StochasticGridModel,
    basis: &OrthogonalBasis,
    grid: &QuadratureGrid,
    spec: &TransientSpec,
) -> Result<CollocationRun> {
    spec.validate()?;
    if grid.is_empty() {
        return Err(CollocationError::InvalidOptions {
            reason: "the quadrature grid has no nodes".to_string(),
        });
    }
    if grid.n_vars() != model.n_vars() || basis.n_vars() != model.n_vars() {
        return Err(CollocationError::InvalidOptions {
            reason: format!(
                "variable counts disagree: model {}, basis {}, grid {}",
                model.n_vars(),
                basis.n_vars(),
                grid.n_vars()
            ),
        });
    }

    let times = spec.time_points();
    let n = model.node_count();
    let h_scale = match spec.scheme {
        StepScheme::BackwardEuler => 1.0 / spec.time_step,
        StepScheme::Trapezoidal => 2.0 / spec.time_step,
        // Both TR-BDF2 stages share the one companion scale 2/(γh).
        StepScheme::TrBdf2 => 2.0 / (TR_BDF2_GAMMA * spec.time_step),
    };

    // ---- The one shared symbolic analysis, on the nominal companion
    // pattern G_a + C_a/h. Every realised matrix has a pattern contained in
    // it (the perturbations only re-weight existing branches), and the plain
    // G(ξ) needed for the DC start is a sub-pattern too, so both per-node
    // factorisations reuse this analysis.
    let companion_nominal = model
        .nominal_conductance()
        .add_scaled(&model.nominal_capacitance().scaled(h_scale), 1.0)?;
    let symbolic = SymbolicCholesky::analyze(&companion_nominal)?;
    let numeric_factorizations = AtomicUsize::new(0);

    // Captured before the fan-out: per-node spans on worker threads nest
    // under the span that launched the sweep.
    let parent = opera_trace::current_span();
    let solve_node = |q: usize| -> Result<Vec<Vec<f64>>> {
        let _span = opera_trace::span_under(parent, "collocation.node");
        opera_trace::count("collocation.nodes", 1);
        let xi: &[f64] = &grid.nodes()[q];
        let g = model.sample_conductance(xi)?;
        let c_over_h = model.sample_capacitance(xi)?.scaled(h_scale);
        let companion = g.add_scaled(&c_over_h, 1.0)?;
        let dc = symbolic.factor_numeric(&g)?;
        let stepper = symbolic.factor_numeric(&companion)?;
        numeric_factorizations.fetch_add(2, Ordering::Relaxed);

        let scale = spec.current_scale;
        let anchor = if scale != 1.0 {
            Some(model.sample_excitation(0.0, xi)?)
        } else {
            None
        };
        let excitation = |t: f64| -> Result<Vec<f64>> {
            let mut u = model.sample_excitation(t, xi)?;
            if let Some(u0) = &anchor {
                for (u_n, a_n) in u.iter_mut().zip(u0) {
                    *u_n = a_n + scale * (*u_n - a_n);
                }
            }
            Ok(u)
        };

        // DC start, then fixed-step implicit integration. The node transient
        // reuses the shared workspace API of `opera_sparse`: one
        // `SolveWorkspace` plus preallocated rhs/matvec buffers serve every
        // step, so the steady-state loop allocates only its output rows.
        let u0 = excitation(0.0)?;
        let mut ws = SolveWorkspace::with_capacity(n);
        let mut v0 = u0.clone();
        dc.solve_in_place(&mut v0, &mut ws);
        let mut voltages = vec![vec![0.0; n]; times.len()];
        voltages[0] = v0;
        let mut rhs = vec![0.0; n];
        let mut gv = vec![0.0; n];
        let mut stage = vec![0.0; n];
        let mut u_prev = u0;
        for (k, &t) in times.iter().enumerate().skip(1) {
            let u_next = excitation(t)?;
            let v_k = &voltages[k - 1];
            match spec.scheme {
                StepScheme::BackwardEuler => {
                    // (G + C/h) v_{k+1} = u_{k+1} + (C/h) v_k
                    c_over_h.matvec_into(v_k, &mut rhs);
                    for (r, u) in rhs.iter_mut().zip(&u_next) {
                        *r += u;
                    }
                }
                StepScheme::Trapezoidal => {
                    // (G + 2C/h) v_{k+1} = u_k + u_{k+1} + (2C/h − G) v_k
                    c_over_h.matvec_into(v_k, &mut rhs);
                    g.matvec_into(v_k, &mut gv);
                    for ((r, gv_n), (a, b)) in
                        rhs.iter_mut().zip(&gv).zip(u_prev.iter().zip(&u_next))
                    {
                        *r += a + b - gv_n;
                    }
                }
                StepScheme::TrBdf2 => {
                    // TR stage over [t_k, t_k + γh]:
                    // (G + 2C/(γh)) v_γ = u_k + u_γ + (2C/(γh) − G) v_k
                    let t_prev = times[k - 1];
                    let u_mid = excitation(t_prev + TR_BDF2_GAMMA * (t - t_prev))?;
                    c_over_h.matvec_into(v_k, &mut stage);
                    g.matvec_into(v_k, &mut gv);
                    for ((r, gv_n), (a, b)) in
                        stage.iter_mut().zip(&gv).zip(u_prev.iter().zip(&u_mid))
                    {
                        *r += a + b - gv_n;
                    }
                    stepper.solve_in_place(&mut stage, &mut ws);
                    // BDF2 stage on {t_k, t_k + γh, t_{k+1}}:
                    // (G + 2C/(γh)) v_{k+1} = u_{k+1} +
                    //   (2C/(γh))·(v_γ/(2(1−γ)) − v_k·(1−γ)/2)
                    c_over_h.matvec_into(&stage, &mut rhs);
                    for r in rhs.iter_mut() {
                        *r *= TR_BDF2_W_MID;
                    }
                    c_over_h.matvec_acc(v_k, -TR_BDF2_W_OLD, &mut rhs);
                    for (r, u) in rhs.iter_mut().zip(&u_next) {
                        *r += u;
                    }
                }
            }
            stepper.solve_in_place(&mut rhs, &mut ws);
            voltages[k].copy_from_slice(&rhs);
            u_prev = u_next;
        }
        Ok(voltages)
    };

    // ---- Fan the node solves out over the ambient pool in batches, then
    // fold each batch into the projection in node-index order. The fold is
    // the only place floating-point accumulation happens, so the statistics
    // cannot depend on the worker count; batching bounds the number of
    // full traces alive at once.
    let norms: Vec<f64> = (0..basis.len()).map(|i| basis.norm_squared(i)).collect();
    let mut coefficients = vec![vec![vec![0.0f64; n]; basis.len()]; times.len()];
    let total = grid.len();
    let batch = (rayon::current_num_threads().max(1) * 2).min(total);
    let mut start = 0;
    while start < total {
        let end = (start + batch).min(total);
        let traces: Vec<Result<Vec<Vec<f64>>>> =
            (start..end).into_par_iter().map(solve_node).collect();
        for (q, trace) in (start..end).zip(traces) {
            let trace = trace?;
            let psi = basis.evaluate_all(&grid.nodes()[q])?;
            let w = grid.weights()[q];
            for (coeff_k, trace_k) in coefficients.iter_mut().zip(&trace) {
                for (i, coeff_ki) in coeff_k.iter_mut().enumerate() {
                    let scale = w * psi[i] / norms[i];
                    for (c, v) in coeff_ki.iter_mut().zip(trace_k) {
                        *c += scale * v;
                    }
                }
            }
        }
        start = end;
    }

    Ok(CollocationRun {
        times,
        node_count: n,
        coefficients,
        stats: CollocationStats {
            nodes: total,
            symbolic_analyses: 1,
            numeric_factorizations: numeric_factorizations.load(Ordering::Relaxed),
        },
    })
}
