//! Error type for the stochastic collocation driver.

use std::error::Error;
use std::fmt;

/// Errors produced by the collocation subsystem.
#[derive(Debug, Clone, PartialEq)]
pub enum CollocationError {
    /// An underlying sparse linear-algebra operation failed (e.g. a realised
    /// conductance matrix lost positive definiteness at an outlying node).
    Sparse(opera_sparse::SparseError),
    /// A polynomial-chaos operation failed.
    Pce(opera_pce::PceError),
    /// A variation-model realisation failed.
    Variation(opera_variation::VariationError),
    /// The collocation options are inconsistent.
    InvalidOptions {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for CollocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollocationError::Sparse(e) => write!(f, "sparse linear algebra error: {e}"),
            CollocationError::Pce(e) => write!(f, "polynomial chaos error: {e}"),
            CollocationError::Variation(e) => write!(f, "variation model error: {e}"),
            CollocationError::InvalidOptions { reason } => write!(f, "invalid options: {reason}"),
        }
    }
}

impl Error for CollocationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollocationError::Sparse(e) => Some(e),
            CollocationError::Pce(e) => Some(e),
            CollocationError::Variation(e) => Some(e),
            CollocationError::InvalidOptions { .. } => None,
        }
    }
}

impl From<opera_sparse::SparseError> for CollocationError {
    fn from(e: opera_sparse::SparseError) -> Self {
        CollocationError::Sparse(e)
    }
}

impl From<opera_pce::PceError> for CollocationError {
    fn from(e: opera_pce::PceError) -> Self {
        CollocationError::Pce(e)
    }
}

impl From<opera_variation::VariationError> for CollocationError {
    fn from(e: opera_variation::VariationError) -> Self {
        CollocationError::Variation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources_and_messages() {
        let inner = opera_sparse::SparseError::Singular { column: 5 };
        let e: CollocationError = inner.clone().into();
        assert_eq!(e, CollocationError::Sparse(inner));
        assert!(e.to_string().contains("column 5"));
        assert!(e.source().is_some());
        let opts = CollocationError::InvalidOptions {
            reason: "level must be positive".to_string(),
        };
        assert!(opts.to_string().contains("level"));
        assert!(opts.source().is_none());
    }
}
