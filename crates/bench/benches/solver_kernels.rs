//! Criterion bench for the sparse-solver kernels that dominate both OPERA and
//! Monte Carlo: fill-reducing ordering, Cholesky factorisation, triangular
//! solves and preconditioned CG on power-grid conductance matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use opera_grid::GridSpec;
use opera_sparse::{cg, CholeskyFactor, OrderingChoice};

fn bench_solver_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_kernels");
    group.sample_size(10);

    for &nodes in &[500usize, 2_000] {
        let grid = GridSpec::industrial(nodes)
            .with_seed(nodes as u64)
            .build()
            .expect("grid");
        let g = grid.conductance_matrix();
        let u = grid.excitation(0.0);

        group.bench_with_input(BenchmarkId::new("rcm_ordering", nodes), &g, |b, g| {
            b.iter(|| opera_sparse::ordering::reverse_cuthill_mckee(&g.to_csc()))
        });

        group.bench_with_input(
            BenchmarkId::new("cholesky_factor_rcm", nodes),
            &g,
            |b, g| {
                b.iter(|| {
                    CholeskyFactor::factor_with(g, OrderingChoice::ReverseCuthillMckee)
                        .expect("factor")
                })
            },
        );

        let chol = CholeskyFactor::factor(&g).expect("factor");
        group.bench_with_input(
            BenchmarkId::new("cholesky_solve", nodes),
            &(&chol, &u),
            |b, (chol, u)| b.iter(|| chol.solve(u)),
        );

        let ic = cg::IncompleteCholesky::new(&g).expect("ic0");
        group.bench_with_input(
            BenchmarkId::new("pcg_ic0", nodes),
            &(&g, &u, &ic),
            |b, (g, u, ic)| {
                b.iter(|| {
                    cg::solve(
                        g,
                        u,
                        *ic,
                        cg::CgOptions {
                            max_iterations: 10_000,
                            tolerance: 1e-10,
                        },
                    )
                    .expect("cg")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_solver_kernels);
criterion_main!(benches);
