//! Criterion bench for the Figure 1/2 post-processing: producing the voltage
//! drop distribution at a probe node from the OPERA expansion (pure sampling
//! of the explicit polynomial, no circuit solves) versus extracting it from
//! Monte Carlo traces.

use criterion::{criterion_group, criterion_main, Criterion};

use opera::analysis::probe_distributions;
use opera::monte_carlo::{run as run_monte_carlo, MonteCarloOptions};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_pce::sampling;
use opera_variation::{StochasticGridModel, VariationSpec};

fn bench_distribution(c: &mut Criterion) {
    let grid = GridSpec::paper_grid(0)
        .expect("paper grid index")
        .scaled_nodes(0.02)
        .with_seed(2)
        .build()
        .expect("grid generation");
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())
        .expect("variation model");
    let transient = TransientOptions::new(0.1e-9, grid.waveform_end_time());
    let opera = solve(&model, &OperaOptions::order2(transient)).expect("opera");
    let (node, k, _) = opera.worst_mean_drop(grid.vdd());
    let mc = run_monte_carlo(
        &model,
        &MonteCarloOptions {
            probe_nodes: vec![node],
            ..MonteCarloOptions::new(50, 5, transient)
        },
    )
    .expect("monte carlo");

    let mut group = c.benchmark_group("figure12_distribution");
    group.sample_size(20);

    group.bench_function("sample_opera_expansion_1000", |b| {
        let series = opera.node_series(k, node).expect("series");
        b.iter(|| {
            let samples = sampling::sample_standard(series.basis(), 1000, 99);
            sampling::evaluate_at_samples(&series, &samples).expect("evaluation")
        })
    });

    group.bench_function("build_probe_histograms", |b| {
        b.iter(|| probe_distributions(&opera, &mc, grid.vdd(), node, k, 30, 7).expect("histograms"))
    });

    group.finish();
}

criterion_group!(benches, bench_distribution);
criterion_main!(benches);
