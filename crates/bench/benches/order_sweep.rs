//! Criterion bench for the ablation on expansion order and number of random
//! variables: the cost of the OPERA solve grows with the basis size
//! `N + 1 = C(r + p, p)` (the paper's O(r^p) complexity discussion, §5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn bench_order_sweep(c: &mut Criterion) {
    let grid = GridSpec::industrial(400)
        .with_seed(9)
        .build()
        .expect("grid");
    let spec = VariationSpec::paper_defaults();
    let transient = TransientOptions::new(0.1e-9, grid.waveform_end_time());

    let models = [
        (
            "vars2",
            StochasticGridModel::inter_die(&grid, &spec).expect("model"),
        ),
        (
            "vars3",
            StochasticGridModel::inter_die_three_variable(&grid, &spec).expect("model"),
        ),
    ];

    let mut group = c.benchmark_group("opera_order_sweep");
    group.sample_size(10);
    for (label, model) in &models {
        for order in 1..=3u32 {
            group.bench_with_input(BenchmarkId::new(*label, order), &order, |b, &order| {
                b.iter(|| {
                    solve(model, &OperaOptions::with_order(order, transient)).expect("opera solve")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_order_sweep);
criterion_main!(benches);
