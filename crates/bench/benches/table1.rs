//! Criterion bench for the Table 1 runtime comparison: OPERA (one augmented
//! transient solve) versus Monte Carlo (per-sample transient solves) on a
//! scaled version of the paper's first grid.
//!
//! The paper's speed-up column is the ratio of the two; Criterion reports the
//! absolute times of each side. The per-sample Monte Carlo bench measures 10
//! samples, so the equivalent 1000-sample run is 100× the reported time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use opera::engine::OperaEngine;
use opera::monte_carlo::{run as run_monte_carlo, MonteCarloOptions};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::{StochasticGridModel, VariationSpec};

fn bench_table1(c: &mut Criterion) {
    let grid = GridSpec::paper_grid(0)
        .expect("paper grid index")
        .scaled_nodes(0.03) // ≈ 575 nodes so the bench stays in seconds
        .with_seed(1)
        .build()
        .expect("grid generation");
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())
        .expect("variation model");
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time());

    let mut group = c.benchmark_group("table1_row1_scaled");
    group.sample_size(10);

    group.bench_function("opera_order2", |b| {
        b.iter_batched(
            || (),
            |_| solve(&model, &OperaOptions::order2(transient)).expect("opera solve"),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("monte_carlo_10_samples", |b| {
        b.iter_batched(
            || (),
            |_| {
                run_monte_carlo(&model, &MonteCarloOptions::new(10, 3, transient))
                    .expect("monte carlo")
            },
            BatchSize::LargeInput,
        )
    });

    // The engine amortises assembly + factorisation across solves: this
    // measures the marginal per-scenario cost of the setup-once shape.
    let engine = OperaEngine::for_model(model.clone())
        .time_step(transient.time_step)
        .end_time(transient.end_time)
        .build()
        .expect("engine build");
    group.bench_function("engine_solve_amortised", |b| {
        b.iter(|| engine.solve().expect("engine solve"))
    });

    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
