//! Criterion bench for the Section 5.1 special case: RHS-only (leakage)
//! variation solved with a single shared factorisation, versus the
//! corresponding Monte Carlo baseline.

use criterion::{criterion_group, criterion_main, Criterion};

use opera::monte_carlo::{run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::transient::TransientOptions;
use opera_grid::GridSpec;
use opera_variation::LeakageModel;

fn bench_special_case(c: &mut Criterion) {
    let grid = GridSpec::industrial(800)
        .with_seed(12)
        .build()
        .expect("grid");
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0)
        .expect("leakage model");
    let transient = TransientOptions::new(0.1e-9, grid.waveform_end_time());

    let mut group = c.benchmark_group("special_case_leakage");
    group.sample_size(10);

    group.bench_function("opera_special_case_order2", |b| {
        b.iter(|| {
            solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(transient))
                .expect("special case")
        })
    });

    group.bench_function("opera_special_case_order3", |b| {
        b.iter(|| {
            solve_leakage(
                &grid,
                &leakage,
                &SpecialCaseOptions {
                    order: 3,
                    transient,
                },
            )
            .expect("special case")
        })
    });

    group.bench_function("monte_carlo_10_samples", |b| {
        b.iter(|| {
            run_leakage(&grid, &leakage, &MonteCarloOptions::new(10, 3, transient))
                .expect("monte carlo")
        })
    });

    group.finish();
}

criterion_group!(benches, bench_special_case);
criterion_main!(benches);
