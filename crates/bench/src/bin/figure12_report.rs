//! Regenerates Figures 1 and 2 of the paper: the distribution of the voltage
//! drop (as % of VDD) at a selected node of the first grid, from OPERA and
//! from Monte Carlo.
//!
//! ```text
//! cargo run --release -p opera-bench --bin figure12_report
//! OPERA_BENCH_SCALE=0.2 OPERA_BENCH_MC_SAMPLES=1000 \
//!     cargo run --release -p opera-bench --bin figure12_report
//! ```

use opera::analysis::run_experiment;
use opera_bench::{
    ascii_histogram, mc_samples_from_env, parallelism_from_env, scale_from_env, table1_config,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let samples = mc_samples_from_env();
    // Figures 1–2 use the 19,181-node grid (Table 1 row 1).
    let config = table1_config(0, scale, samples, parallelism_from_env()?)?;
    println!(
        "Figure 1/2 reproduction — grid row 1 at scale {scale}, {samples} Monte Carlo samples"
    );
    let report = run_experiment(&config)?;
    let dist = &report.distribution;
    println!(
        "probe: node {} at time index {} (worst mean drop)\n",
        dist.node, dist.time_index
    );
    println!(
        "{}",
        ascii_histogram(
            "Monte Carlo distribution (voltage drop as % of VDD)",
            &dist.monte_carlo.centers(),
            &dist.monte_carlo.percentages()
        )
    );
    println!(
        "{}",
        ascii_histogram(
            "OPERA distribution (sampled from the order-2 expansion)",
            &dist.opera.centers(),
            &dist.opera.percentages()
        )
    );
    println!(
        "paper reference: the two histograms essentially coincide, centred near 3–4 % of VDD."
    );
    Ok(())
}
