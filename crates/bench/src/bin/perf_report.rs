//! `perf_report` — the hot-path performance trajectory of the OPERA engine.
//!
//! Times the assemble/factor/step phases of the Galerkin transient across
//! chaos orders, measures the blocked multi-RHS panel engine against the
//! per-column reference path, benchmarks the fill-reducing orderings on the
//! paper grid and the netlist fixtures, compares fixed-step TR-BDF2 against
//! the LTE-driven adaptive controller on the same grid (step counts, wall
//! time, and the one-symbolic-analysis refactorisation contract), compares
//! the scalar reference kernels against the best runtime-detected SIMD
//! backend (panel transient solve, triangular panel solves, the Welford
//! moment fold — each pair verified bit-identical before its speedup is
//! reported), sweeps worker-thread counts (proving the statistics stay
//! bit-identical), and emits the results as a schema-validated
//! `BENCH_<pr>.json` at the repo root — one point of the perf trajectory
//! future PRs append to.
//!
//! The binary runs with [`opera_trace`] enabled: the per-phase timings of
//! the `phases[]` section are the drained span totals of the engine's own
//! instrumentation (`galerkin.assemble`, `solver.prepare`,
//! `transient.stepping`), not separate stopwatches, so the trajectory file
//! and an exported trace can never disagree about what was measured. The
//! full span/counter record of the run can be exported as a Chrome
//! trace-event JSON (`chrome://tracing`, Perfetto) with `--trace` or the
//! `OPERA_TRACE` environment variable; see `docs/OBSERVABILITY.md`.
//!
//! ```text
//! perf_report                        # run the benchmarks, write BENCH_10.json
//! perf_report --trace FILE           # also export the Chrome trace of the run
//! perf_report --validate FILE        # re-validate an emitted trajectory file
//! perf_report --validate-trace FILE  # schema-check an exported Chrome trace
//! ```
//!
//! Tuning environment variables (see `docs/PERFORMANCE.md`):
//!
//! * `OPERA_BENCH_SCALE` — fraction of the paper's node counts (default
//!   `0.05`; the committed `BENCH_6.json` was generated at `1.0`),
//! * `OPERA_BENCH_MC_SAMPLES` — Monte Carlo samples of the thread sweep,
//! * `OPERA_BENCH_THREADS` — ignored for the sweep itself (it always runs
//!   1/2/8, marking counts beyond the machine's cores `degraded`), but
//!   validated like the other report binaries,
//! * `OPERA_BENCH_PERF_MAX_ORDER` — highest chaos order of the phase sweep
//!   (default `2`),
//! * `OPERA_BENCH_PERF_OUTPUT` — output path (default `BENCH_10.json`),
//! * `OPERA_SIMD` — the process-wide kernel backend; the `simd[]` sweep
//!   overrides it per timed side and restores the scalar default after,
//! * `OPERA_TRACE` — when set, export the run's Chrome trace to this path
//!   (same as `--trace`).

use std::time::Instant;

use opera::engine::{McConfig, OperaEngine, Scenario};
use opera::solver::{DirectCholesky, SolverBackend};
use opera::transient::TransientOptions;
use opera::{OperaError, Parallelism};
use opera_bench::json::Json;
use opera_bench::perf::{validate_text, PERF_SCHEMA};
use opera_bench::trace_export::{chrome_trace, validate_chrome_trace, CHROME_TRACE_SCHEMA};
use opera_grid::GridSpec;
use opera_pce::OrthogonalBasis;
use opera_sparse::{CholeskyFactor, CsrMatrix, OrderingChoice, SolveWorkspace, SymbolicCholesky};
use opera_trace::TraceSnapshot;
use opera_variation::{LeakageModel, StochasticGridModel, VariationSpec};

/// PR number of the trajectory point this binary emits.
const PR_NUMBER: usize = 10;
/// Thread counts of the invariance sweep.
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn main() {
    if let Err(err) = run() {
        eprintln!("perf_report: {err}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--validate" {
        let text = std::fs::read_to_string(&args[2])
            .map_err(|e| format!("cannot read {}: {e}", args[2]))?;
        validate_text(&text)?;
        println!("{}: valid {PERF_SCHEMA} trajectory point", args[2]);
        return Ok(());
    }
    if args.len() == 3 && args[1] == "--validate-trace" {
        let text = std::fs::read_to_string(&args[2])
            .map_err(|e| format!("cannot read {}: {e}", args[2]))?;
        let summary = validate_chrome_trace(&opera_bench::json::parse(&text)?)?;
        println!(
            "{}: valid {CHROME_TRACE_SCHEMA} trace ({} spans, {} instants, {} counters)",
            args[2], summary.complete_events, summary.instant_events, summary.counter_events
        );
        return Ok(());
    }
    let trace_output = match args.as_slice() {
        [_] => None,
        [_, flag, path] if flag == "--trace" => Some(path.clone()),
        _ => {
            return Err(
                "usage: perf_report [--trace FILE | --validate FILE | --validate-trace FILE]"
                    .to_string(),
            )
        }
    };
    let trace_output = trace_output.or_else(|| std::env::var("OPERA_TRACE").ok());

    // Honour (and validate) the shared environment knobs.
    opera_bench::parallelism_from_env()?;
    let scale = opera_bench::scale_from_env();
    let mc_samples = opera_bench::mc_samples_from_env();
    let max_order = max_order_from_env();
    let output = std::env::var("OPERA_BENCH_PERF_OUTPUT")
        .unwrap_or_else(|_| format!("BENCH_{PR_NUMBER}.json"));

    // The whole run is traced: the phase timings below are read back out of
    // the drained spans, and the merged snapshot can be exported at the end.
    opera_trace::reset();
    opera_trace::enable();
    let mut trace = TraceSnapshot::default();

    // The pool records its own width gauges from inside `install`; priming an
    // empty install here means `threads_available` in the report is what the
    // pool actually saw, not a separately computed number.
    Parallelism::Max.install(|| ()).map_err(err)?;
    trace.merge(opera_trace::drain());
    let threads_available = trace
        .gauge("threads.available")
        .ok_or("thread pool did not record the threads.available gauge")?
        as usize;
    println!("== OPERA perf trajectory (PR {PR_NUMBER}) ==");
    println!(
        "scale = {scale}, mc_samples = {mc_samples}, max_order = {max_order}, \
         threads available on this machine = {threads_available}\n"
    );

    let grid = GridSpec::paper_grid(0)
        .map_err(|e| e.to_string())?
        .scaled_nodes(scale)
        .build()
        .map_err(|e| e.to_string())?;
    let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())
        .map_err(|e| e.to_string())?;
    println!("paper grid 0 at scale {scale}: {} nodes", grid.node_count());

    let phases = phase_sweep(&model, max_order, &mut trace)?;
    let multi_rhs = multi_rhs_sweep(&grid)?;
    let orderings = ordering_sweep(&grid)?;
    let adaptive = adaptive_sweep(&grid, max_order)?;
    let (simd, simd_backend) = simd_sweep(&grid)?;
    trace.merge(opera_trace::drain());
    let (threads, allocations) = thread_sweep(&grid, mc_samples, threads_available)?;
    trace.merge(opera_trace::drain());

    let report = Json::Obj(vec![
        ("schema".to_string(), Json::str(PERF_SCHEMA)),
        ("pr".to_string(), Json::Num(PR_NUMBER as f64)),
        ("scale".to_string(), Json::Num(scale)),
        ("mc_samples".to_string(), Json::Num(mc_samples as f64)),
        (
            "threads_available".to_string(),
            Json::Num(threads_available as f64),
        ),
        (
            "default_ordering".to_string(),
            Json::str(ordering_name(OrderingChoice::default())),
        ),
        (
            "steady_state_step_allocations".to_string(),
            Json::Num(allocations as f64),
        ),
        ("phases".to_string(), Json::Arr(phases)),
        ("galerkin_multi_rhs".to_string(), Json::Arr(multi_rhs)),
        ("orderings".to_string(), Json::Arr(orderings)),
        ("adaptive".to_string(), Json::Arr(adaptive)),
        ("simd".to_string(), Json::Arr(simd)),
        ("simd_backend_detected".to_string(), Json::str(simd_backend)),
        ("threads".to_string(), Json::Arr(threads)),
    ]);
    let text = report.to_pretty();
    validate_text(&text)?;
    std::fs::write(&output, &text).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!("\nwrote {output} (validated against {PERF_SCHEMA})");

    if let Some(path) = trace_output {
        let doc = chrome_trace(&trace);
        let trace_text = doc.to_pretty();
        // Round-trip through the parser and the schema check before writing,
        // so an exported file is valid by construction.
        let summary = validate_chrome_trace(&opera_bench::json::parse(&trace_text)?)?;
        std::fs::write(&path, &trace_text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote {path} ({} spans, {} instants, {} counters; validated against \
             {CHROME_TRACE_SCHEMA})",
            summary.complete_events, summary.instant_events, summary.counter_events
        );
        println!("\n{}", trace.text_report());
    }
    Ok(())
}

fn err(e: OperaError) -> String {
    e.to_string()
}

fn max_order_from_env() -> u32 {
    std::env::var("OPERA_BENCH_PERF_MAX_ORDER")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&o| o >= 1)
        .unwrap_or(2)
}

/// Phase timings of the augmented Galerkin transient: assemble, prepare
/// (symbolic + numeric factorisation) and the per-step solve cost, per chaos
/// order.
///
/// The timings are not separate stopwatches: each order's numbers are the
/// drained totals of the `galerkin.assemble`, `solver.prepare` and
/// `transient.stepping` spans the engine code records about itself, and the
/// step count is the `transient.steps` counter. The same spans are merged
/// into `master` for the exported trace, so the trajectory file is a derived
/// view of the trace by construction.
fn phase_sweep(
    model: &StochasticGridModel,
    max_order: u32,
    master: &mut TraceSnapshot,
) -> Result<Vec<Json>, String> {
    println!("-- phases: assemble / factor / step, orders 1..={max_order}");
    let grid = model.grid();
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time().max(0.05e-9));
    let mut entries = Vec::new();
    for order in 1..=max_order {
        let basis = OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), order)
            .map_err(|e| e.to_string())?;
        // Flush whatever earlier work left in the sink so this order's drain
        // holds exactly its own spans.
        master.merge(opera_trace::drain());
        let system = opera::galerkin::GalerkinSystem::assemble(model, &basis).map_err(err)?;
        let prepared = DirectCholesky
            .prepare(model, &system, &transient)
            .map_err(err)?;

        // The transient hot loop: DC start + fixed steps, double-buffered
        // state, one warm workspace.
        let dim = system.dim();
        let mut ws = SolveWorkspace::with_capacity(dim);
        let u0 = system.excitation(model, 0.0);
        let mut state = vec![0.0; dim];
        prepared
            .solve_dc_into(&u0, &mut state, &mut ws)
            .map_err(err)?;
        let mut next = vec![0.0; dim];
        let times = transient.time_points();
        let mut u_prev = u0;
        let stepping = opera_trace::span("transient.stepping");
        for &t in &times[1..] {
            opera_trace::count("transient.steps", 1);
            let u_next = system.excitation(model, t);
            prepared
                .step_into(&state, &u_prev, &u_next, &mut next, &mut ws)
                .map_err(err)?;
            std::mem::swap(&mut state, &mut next);
            u_prev = u_next;
        }
        drop(stepping);

        let snapshot = opera_trace::drain();
        let assemble_seconds = snapshot.total_seconds("galerkin.assemble");
        let prepare_seconds = snapshot.total_seconds("solver.prepare");
        let step_seconds_total = snapshot.total_seconds("transient.stepping");
        let steps = snapshot.counter("transient.steps") as usize;
        master.merge(snapshot);
        if steps != times.len() - 1 {
            return Err(format!(
                "transient.steps counted {steps} steps, the time grid has {}",
                times.len() - 1
            ));
        }
        let seconds_per_step = step_seconds_total / steps as f64;
        println!(
            "order {order}: dim = {dim}, assemble = {assemble_seconds:.3}s, \
             prepare = {prepare_seconds:.3}s, {steps} steps in {step_seconds_total:.3}s \
             ({:.2}ms/step)",
            seconds_per_step * 1e3
        );
        entries.push(Json::Obj(vec![
            ("nodes".to_string(), Json::Num(grid.node_count() as f64)),
            ("order".to_string(), Json::Num(order as f64)),
            ("basis_size".to_string(), Json::Num(basis.len() as f64)),
            ("dim".to_string(), Json::Num(dim as f64)),
            ("assemble_seconds".to_string(), Json::Num(assemble_seconds)),
            ("prepare_seconds".to_string(), Json::Num(prepare_seconds)),
            ("steps".to_string(), Json::Num(steps as f64)),
            (
                "step_seconds_total".to_string(),
                Json::Num(step_seconds_total),
            ),
            ("seconds_per_step".to_string(), Json::Num(seconds_per_step)),
        ]));
    }
    Ok(entries)
}

/// The acceptance measurement: the P-column Galerkin transient *solve phase*
/// (all chaos-coefficient excitation columns share one already-computed
/// factorisation), panel engine vs the pre-PR per-column path. Both paths
/// run single-threaded on the same factors, so the numbers isolate the
/// blocked-kernel effect — the identical shared factorisation is excluded
/// from both sides, exactly as `docs/PERFORMANCE.md` documents. The two
/// paths are verified bit-identical before their timings are reported.
fn multi_rhs_sweep(grid: &opera_grid::PowerGrid) -> Result<Vec<Json>, String> {
    use opera::transient::{CompanionSystem, IntegrationMethod};
    use opera_pce::GalerkinCoupling;
    use opera_sparse::{MatrixFactor, Panel};

    println!("-- galerkin_multi_rhs: panel vs per-column solve phase (serial, bit-identical)");
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0)
        .map_err(|e| e.to_string())?;
    let n = grid.node_count();
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time().max(0.05e-9));
    let times = transient.time_points();
    let steps = times.len() - 1;

    // One shared factorisation pair (identical for both paths, not timed).
    let g = grid.conductance_matrix();
    let c = grid.capacitance_matrix();
    let dc = MatrixFactor::cholesky_or_lu(&g).map_err(|e| e.to_string())?;
    let companion = CompanionSystem::new(
        &g,
        &c,
        transient.time_step,
        IntegrationMethod::BackwardEuler,
    )
    .map_err(err)?;

    let mut entries = Vec::new();
    for order in [2u32, 3] {
        let basis =
            OrthogonalBasis::total_order_mixed(leakage.families(), leakage.region_count(), order)
                .map_err(|e| e.to_string())?;
        let coupling = GalerkinCoupling::new(&basis).map_err(|e| e.to_string())?;
        let injections = leakage
            .projected_injections(&basis, &coupling)
            .map_err(|e| e.to_string())?;
        let size = basis.len();
        // Right-hand side for coefficient j at time t (the special case's
        // Eq. 27 columns).
        let rhs_at = |j: usize, t: f64| -> Vec<f64> {
            if j == 0 {
                let mut u = grid.excitation(t);
                for (u_n, inj) in u.iter_mut().zip(&injections[0]) {
                    *u_n -= inj;
                }
                u
            } else {
                injections[j].iter().map(|&inj| -inj).collect()
            }
        };

        // --- Pre-PR per-column path: one scalar solve per column per step,
        // allocating state per step.
        let per_column = || -> opera::Result<Vec<Vec<f64>>> {
            let mut finals = Vec::with_capacity(size);
            for j in 0..size {
                let u0 = rhs_at(j, 0.0);
                let mut state = dc.solve(&u0);
                let mut u_prev = u0;
                for &t in &times[1..] {
                    let u_next = rhs_at(j, t);
                    state = companion.step(&state, &u_prev, &u_next);
                    u_prev = u_next;
                }
                finals.push(state);
            }
            Ok(finals)
        };

        // --- Panel path: all P columns advance through one blocked
        // multi-RHS solve per step, double-buffered, workspace-reused.
        let panel = || -> opera::Result<Vec<Vec<f64>>> {
            let mut ws = SolveWorkspace::with_capacity(n * size);
            let mut u_prev = Panel::zeros(n, size);
            for j in 0..size {
                u_prev.col_mut(j).copy_from_slice(&rhs_at(j, 0.0));
            }
            let mut state = Panel::zeros(n, size);
            state.data_mut().copy_from_slice(u_prev.data());
            dc.solve_panel(&mut state, &mut ws);
            let mut u_next = u_prev.clone();
            let mut next = Panel::zeros(n, size);
            for &t in &times[1..] {
                u_next.col_mut(0).copy_from_slice(&rhs_at(0, t));
                companion.step_panel_into(&state, &u_prev, &u_next, &mut next, &mut ws);
                std::mem::swap(&mut state, &mut next);
                std::mem::swap(&mut u_prev, &mut u_next);
            }
            Ok(state.into_columns())
        };

        let (panel_finals, panel_seconds) = Parallelism::Serial
            .install(|| best_of(3, panel))
            .map_err(err)??;
        let (column_finals, per_column_seconds) = Parallelism::Serial
            .install(|| best_of(3, per_column))
            .map_err(err)??;
        // Honesty check: the timed paths must produce bit-identical states,
        // otherwise the speedup compares different work.
        if panel_finals != column_finals {
            return Err(format!(
                "panel and per-column paths diverge at order {order}"
            ));
        }
        let speedup = per_column_seconds / panel_seconds;
        println!(
            "P = {size} columns: per-column = {per_column_seconds:.3}s, \
             panel = {panel_seconds:.3}s, speedup = {speedup:.2}x"
        );
        entries.push(Json::Obj(vec![
            ("nodes".to_string(), Json::Num(n as f64)),
            ("columns".to_string(), Json::Num(size as f64)),
            ("steps".to_string(), Json::Num(steps as f64)),
            (
                "per_column_seconds".to_string(),
                Json::Num(per_column_seconds),
            ),
            ("panel_seconds".to_string(), Json::Num(panel_seconds)),
            ("speedup".to_string(), Json::Num(speedup)),
        ]));
    }
    Ok(entries)
}

/// Times `f` a few times and returns its result with the fastest wall clock.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> opera::Result<T>) -> Result<(T, f64), String> {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let value = f().map_err(err)?;
        let seconds = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| seconds < *b) {
            best = Some((value, seconds));
        }
    }
    Ok(best.expect("reps >= 1"))
}

/// Stable trajectory-file name of an ordering choice.
fn ordering_name(choice: OrderingChoice) -> &'static str {
    match choice {
        OrderingChoice::Natural => "natural",
        OrderingChoice::ReverseCuthillMckee => "rcm",
        OrderingChoice::MinimumDegree => "minimum-degree",
        OrderingChoice::ApproximateMinimumDegree => "amd",
    }
}

/// RCM vs exact minimum degree vs AMD on the paper-grid companion matrix and
/// the netlist fixtures — the numbers behind the `OrderingChoice` default.
fn ordering_sweep(grid: &opera_grid::PowerGrid) -> Result<Vec<Json>, String> {
    println!("-- orderings: RCM vs minimum degree vs AMD");
    let companion = |g: &CsrMatrix, c: &CsrMatrix| -> Result<CsrMatrix, String> {
        g.add_scaled(&c.scaled(1.0 / 0.05e-9), 1.0)
            .map_err(|e| e.to_string())
    };
    let mut matrices: Vec<(String, CsrMatrix)> = vec![(
        "paper_grid_companion".to_string(),
        companion(&grid.conductance_matrix(), &grid.capacitance_matrix())?,
    )];
    let fixtures_dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/fixtures");
    for fixture in ["ibmpg_style.sp", "docs_chain.sp"] {
        let lowered =
            opera_netlist::load(format!("{fixtures_dir}/{fixture}")).map_err(|e| e.to_string())?;
        matrices.push((
            format!("netlist_{fixture}"),
            companion(
                &lowered.grid.conductance_matrix(),
                &lowered.grid.capacitance_matrix(),
            )?,
        ));
    }

    let mut entries = Vec::new();
    for (label, matrix) in &matrices {
        for choice in [
            OrderingChoice::ReverseCuthillMckee,
            OrderingChoice::MinimumDegree,
            OrderingChoice::ApproximateMinimumDegree,
        ] {
            let name = ordering_name(choice);
            let t0 = Instant::now();
            let symbolic =
                SymbolicCholesky::analyze_with(matrix, choice).map_err(|e| e.to_string())?;
            let analyze_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let factor: CholeskyFactor =
                symbolic.factor_numeric(matrix).map_err(|e| e.to_string())?;
            let numeric_seconds = t1.elapsed().as_secs_f64();
            let n = matrix.nrows();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
            let mut ws = SolveWorkspace::with_capacity(n);
            let mut x = b.clone();
            factor.solve_in_place(&mut x, &mut ws); // warm the workspace
            let reps = 20;
            let t2 = Instant::now();
            for _ in 0..reps {
                x.copy_from_slice(&b);
                factor.solve_in_place(&mut x, &mut ws);
            }
            let solve_milliseconds = t2.elapsed().as_secs_f64() * 1e3 / reps as f64;
            println!(
                "{label} / {name}: n = {n}, nnz_l = {}, analyze = {analyze_seconds:.3}s, \
                 numeric = {numeric_seconds:.3}s, solve = {solve_milliseconds:.3}ms",
                factor.nnz_l()
            );
            entries.push(Json::Obj(vec![
                ("matrix".to_string(), Json::str(label.clone())),
                ("ordering".to_string(), Json::str(name)),
                ("n".to_string(), Json::Num(n as f64)),
                ("nnz_l".to_string(), Json::Num(factor.nnz_l() as f64)),
                ("analyze_seconds".to_string(), Json::Num(analyze_seconds)),
                ("numeric_seconds".to_string(), Json::Num(numeric_seconds)),
                (
                    "solve_milliseconds".to_string(),
                    Json::Num(solve_milliseconds),
                ),
            ]));
        }
    }
    Ok(entries)
}

/// Fixed-step TR-BDF2 vs the LTE-driven adaptive controller on the paper
/// grid's augmented Galerkin transient, per chaos order: the
/// adaptive-vs-fixed phase of the trajectory (`docs/TRANSIENT.md`). The
/// fixed baseline runs the same scheme on the deck grid through its own
/// engine (exactly the pre-adaptive behaviour); the adaptive run reports
/// the controller's `AdaptiveStats`, and the schema validator re-asserts
/// the `symbolic_analyses == 1` contract — step-size changes refactor
/// numerically through the `CompanionFamily`, they never re-analyze.
fn adaptive_sweep(grid: &opera_grid::PowerGrid, max_order: u32) -> Result<Vec<Json>, String> {
    use opera::adaptive::AdaptiveOptions;
    use opera::transient::IntegrationMethod;

    println!("-- adaptive: fixed TR-BDF2 vs the LTE controller, orders 1..={max_order}");
    let mut entries = Vec::new();
    for order in 1..=max_order {
        let fixed_engine = OperaEngine::for_grid(paper_spec_of(grid)?)
            .map_err(err)?
            .variation(VariationSpec::paper_defaults())
            .order(order)
            .integration_method(IntegrationMethod::TrBdf2)
            .build()
            .map_err(err)?;
        let fixed_steps = fixed_engine.transient().time_points().len() - 1;
        let (_, fixed_seconds) = best_of(1, || fixed_engine.solve())?;

        // docs/TRANSIENT.md §5: `abs_tol` is the noise floor — a millionth
        // of the supply is where we stop caring about a chaos coefficient.
        let mut options = AdaptiveOptions::with_rel_tol(1e-4);
        options.abs_tol = 1e-6 * grid.vdd();
        let adaptive_engine = OperaEngine::for_grid(paper_spec_of(grid)?)
            .map_err(err)?
            .variation(VariationSpec::paper_defaults())
            .order(order)
            .adaptive(options)
            .build()
            .map_err(err)?;
        let adaptive_options = adaptive_engine
            .adaptive_options()
            .ok_or("adaptive engine lost its options")?;
        let t0 = Instant::now();
        let (_, stats) = adaptive_engine
            .solve_scenario_adaptive(&Scenario::default(), adaptive_options)
            .map_err(err)?;
        let adaptive_seconds = t0.elapsed().as_secs_f64();
        let step_ratio = fixed_steps as f64 / stats.steps_accepted.max(1) as f64;
        println!(
            "order {order}: fixed = {fixed_steps} steps in {fixed_seconds:.3}s, adaptive = {} \
             accepted (+{} rejected) in {adaptive_seconds:.3}s, {} numeric refactorisations on \
             {} symbolic analysis, step ratio = {step_ratio:.2}x",
            stats.steps_accepted,
            stats.steps_rejected,
            stats.refactorizations,
            stats.symbolic_analyses
        );
        entries.push(Json::Obj(vec![
            ("nodes".to_string(), Json::Num(grid.node_count() as f64)),
            ("order".to_string(), Json::Num(order as f64)),
            ("fixed_steps".to_string(), Json::Num(fixed_steps as f64)),
            ("fixed_seconds".to_string(), Json::Num(fixed_seconds)),
            (
                "adaptive_steps_accepted".to_string(),
                Json::Num(stats.steps_accepted as f64),
            ),
            (
                "adaptive_steps_rejected".to_string(),
                Json::Num(stats.steps_rejected as f64),
            ),
            ("adaptive_seconds".to_string(), Json::Num(adaptive_seconds)),
            (
                "refactorizations".to_string(),
                Json::Num(stats.refactorizations as f64),
            ),
            (
                "symbolic_analyses".to_string(),
                Json::Num(stats.symbolic_analyses as f64),
            ),
            ("step_ratio".to_string(), Json::Num(step_ratio)),
        ]));
    }
    Ok(entries)
}

/// Scalar vs best-detected-SIMD-backend comparison of the vectorized hot
/// kernels, all serial so the numbers isolate the vector-width effect:
///
/// * `panel_transient_solve` — the headline: a full 8-RHS panel transient
///   on the paper grid (DC start plus every fixed step through the blocked
///   panel kernels), timed once with the scalar reference active and once
///   with the best backend `detect_best` finds;
/// * `triangular_panel_solve` — repeated 8-wide forward/backward panel
///   substitutions on one Cholesky factor, the interleaved kernels in
///   isolation;
/// * `welford_fold` — the Monte Carlo running-moment update over
///   node-count-long rows.
///
/// Every pair is verified **bit-identical** before its speedup is reported
/// (the zero-ULP equivalence policy of `docs/SIMD.md`), and the scalar
/// default is restored afterwards so the rest of the run measures the
/// documented baseline.
fn simd_sweep(grid: &opera_grid::PowerGrid) -> Result<(Vec<Json>, &'static str), String> {
    use opera::transient::{CompanionSystem, IntegrationMethod};
    use opera_simd::{Backend, LANES};
    use opera_sparse::{MatrixFactor, Panel};

    let best = opera_simd::detect_best();
    println!("-- simd: scalar vs {best} kernels (serial, bit-identical)");

    let n = grid.node_count();
    let g = grid.conductance_matrix();
    let c = grid.capacitance_matrix();
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time().max(0.05e-9));
    let times = transient.time_points();
    let dc = MatrixFactor::cholesky_or_lu(&g).map_err(|e| e.to_string())?;
    let companion = CompanionSystem::new(
        &g,
        &c,
        transient.time_step,
        IntegrationMethod::BackwardEuler,
    )
    .map_err(err)?;

    let k = LANES;
    // Per-column excitation: the waveform rescaled per RHS, so all 8 lanes
    // carry distinct data.
    let rhs_at = |j: usize, t: f64| -> Vec<f64> {
        let mut u = grid.excitation(t);
        for (i, v) in u.iter_mut().enumerate() {
            *v *= 0.6 + 0.1 * ((i + j) % 5) as f64;
        }
        u
    };

    // Headline: the full k-wide panel transient solve.
    let panel_transient = || -> opera::Result<Panel> {
        let mut ws = SolveWorkspace::with_capacity(n * k);
        let mut u_prev = Panel::zeros(n, k);
        for j in 0..k {
            u_prev.col_mut(j).copy_from_slice(&rhs_at(j, 0.0));
        }
        let mut state = Panel::zeros(n, k);
        state.data_mut().copy_from_slice(u_prev.data());
        dc.solve_panel(&mut state, &mut ws);
        let mut u_next = u_prev.clone();
        let mut next = Panel::zeros(n, k);
        for &t in &times[1..] {
            for j in 0..k {
                u_next.col_mut(j).copy_from_slice(&rhs_at(j, t));
            }
            companion.step_panel_into(&state, &u_prev, &u_next, &mut next, &mut ws);
            std::mem::swap(&mut state, &mut next);
            std::mem::swap(&mut u_prev, &mut u_next);
        }
        Ok(state)
    };

    // The interleaved triangular kernels in isolation.
    let solve_reps = 20;
    let triangular = || -> opera::Result<Panel> {
        let mut ws = SolveWorkspace::with_capacity(n * k);
        let mut panel = Panel::zeros(n, k);
        for _ in 0..solve_reps {
            for j in 0..k {
                panel.col_mut(j).copy_from_slice(&rhs_at(j, 0.0));
            }
            dc.solve_panel(&mut panel, &mut ws);
        }
        Ok(panel)
    };

    // The Welford moment fold over node-count-long sample rows.
    let samples: Vec<Vec<f64>> = (0..8)
        .map(|s| {
            (0..n)
                .map(|i| (((i * 13 + s * 7) % 101) as f64).mul_add(0.02, -1.0))
                .collect()
        })
        .collect();
    let welford_reps = 400;
    let welford = |backend: Backend| -> (Vec<f64>, Vec<f64>) {
        let mut mean = vec![0.0; n];
        let mut m2 = vec![0.0; n];
        for r in 0..welford_reps {
            let sample = &samples[r % samples.len()];
            opera_simd::welford_update(&mut mean, &mut m2, sample, (r + 1) as f64, backend);
        }
        (mean, m2)
    };

    let timed_under = |backend: Backend,
                       f: &mut dyn FnMut() -> opera::Result<Panel>|
     -> Result<(Panel, f64), String> {
        opera_simd::set_active(backend)?;
        let out = Parallelism::Serial
            .install(|| best_of(3, f))
            .map_err(err)??;
        opera_simd::set_active(Backend::Scalar)?;
        Ok(out)
    };
    let bits_equal = |a: &[f64], b: &[f64]| {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    };

    let mut entries = Vec::new();
    let mut push = |kernel: &str, scalar_seconds: f64, simd_seconds: f64| {
        let speedup = scalar_seconds / simd_seconds;
        println!(
            "{kernel}: scalar = {scalar_seconds:.3}s, {best} = {simd_seconds:.3}s, \
             speedup = {speedup:.2}x"
        );
        entries.push(Json::Obj(vec![
            ("kernel".to_string(), Json::str(kernel)),
            ("backend".to_string(), Json::str(best.name())),
            ("scalar_seconds".to_string(), Json::Num(scalar_seconds)),
            ("simd_seconds".to_string(), Json::Num(simd_seconds)),
            ("speedup".to_string(), Json::Num(speedup)),
        ]));
    };

    let mut kernel = panel_transient;
    let (scalar_panel, scalar_seconds) = timed_under(Backend::Scalar, &mut kernel)?;
    let (simd_panel, simd_seconds) = timed_under(best, &mut kernel)?;
    if !bits_equal(scalar_panel.data(), simd_panel.data()) {
        return Err("panel_transient_solve: scalar and SIMD states diverge".to_string());
    }
    push("panel_transient_solve", scalar_seconds, simd_seconds);

    let mut kernel = triangular;
    let (scalar_tri, scalar_seconds) = timed_under(Backend::Scalar, &mut kernel)?;
    let (simd_tri, simd_seconds) = timed_under(best, &mut kernel)?;
    if !bits_equal(scalar_tri.data(), simd_tri.data()) {
        return Err("triangular_panel_solve: scalar and SIMD solutions diverge".to_string());
    }
    push("triangular_panel_solve", scalar_seconds, simd_seconds);

    let ((scalar_mean, scalar_m2), scalar_seconds) = best_of(3, || Ok(welford(Backend::Scalar)))?;
    let ((simd_mean, simd_m2), simd_seconds) = best_of(3, || Ok(welford(best)))?;
    if !bits_equal(&scalar_mean, &simd_mean) || !bits_equal(&scalar_m2, &simd_m2) {
        return Err("welford_fold: scalar and SIMD moments diverge".to_string());
    }
    push("welford_fold", scalar_seconds, simd_seconds);

    Ok((entries, best.name()))
}

/// Worker-thread sweep over one prepared engine: Monte Carlo validation and
/// a panel-batched scenario sweep at 1/2/8 threads, with a statistics
/// checksum that must be bit-identical across all settings (enforced again
/// by the schema validator). Counts beyond the machine's physical worker
/// pool cannot measure real scaling, so those entries are marked
/// `degraded: true` — they still feed the determinism proof, but their
/// timings must never be read as parallel speedups. Also reports the
/// engine's allocation-counter hook for the steady-state transient step.
fn thread_sweep(
    grid: &opera_grid::PowerGrid,
    mc_samples: usize,
    threads_available: usize,
) -> Result<(Vec<Json>, usize), String> {
    println!(
        "-- threads: 1/2/8 sweep over one prepared engine \
         ({threads_available} available; oversubscribed entries marked degraded)"
    );
    let mut engine = OperaEngine::for_grid(paper_spec_of(grid)?)
        .map_err(err)?
        .variation(VariationSpec::paper_defaults())
        .order(2)
        .mc_samples(mc_samples.clamp(4, 50))
        .mc_seed(7)
        .build()
        .map_err(err)?;
    let allocations = engine.steady_state_step_allocations().map_err(err)?;
    println!("steady-state allocations per transient step: {allocations}");

    let scenarios: Vec<Scenario> = [0.8, 1.0, 1.25, 1.5]
        .iter()
        .map(|&s| {
            Scenario::named(format!("sweep-{s}"))
                .with_current_scale(s)
                .with_mc_samples(mc_samples.clamp(4, 20))
        })
        .collect();

    let mut entries = Vec::new();
    for threads in THREAD_SWEEP {
        engine.set_parallelism(Parallelism::Threads(threads));
        let t0 = Instant::now();
        let mc = engine
            .monte_carlo(&McConfig::new(mc_samples, 11))
            .map_err(err)?;
        let mc_seconds = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let reports = engine.run_batch(&scenarios).map_err(err)?;
        let batch_seconds = t1.elapsed().as_secs_f64();
        // Fold a deterministic checksum over the statistics: MC means and
        // variances plus each scenario's accuracy numbers, all accumulated
        // in fixed order.
        let mut checksum = 0.0f64;
        for row in mc.mean.iter().chain(mc.variance.iter()) {
            for &v in row {
                checksum += v;
            }
        }
        for report in &reports {
            checksum += report.report.errors.avg_mean_error_percent;
            checksum += report.report.opera.worst_mean_drop;
        }
        let degraded = threads > threads_available;
        if degraded {
            // The exported trace names the reason alongside the JSON flag, so
            // a trace viewed on its own still explains the useless timing.
            opera_trace::event(
                "threads.degraded",
                &format!(
                    "{threads} workers requested, {threads_available} available: \
                     oversubscribed timings are not speedups"
                ),
            );
        }
        println!(
            "{threads} threads: mc = {mc_seconds:.3}s, batch = {batch_seconds:.3}s, \
             checksum = {checksum:.6e}{}",
            if degraded {
                " [degraded: oversubscribed]"
            } else {
                ""
            }
        );
        let mut entry = vec![
            ("threads".to_string(), Json::Num(threads as f64)),
            ("mc_seconds".to_string(), Json::Num(mc_seconds)),
            ("batch_seconds".to_string(), Json::Num(batch_seconds)),
            ("stat_checksum".to_string(), Json::Num(checksum)),
        ];
        if degraded {
            entry.push(("degraded".to_string(), Json::Bool(true)));
        }
        entries.push(Json::Obj(entry));
    }
    Ok((entries, allocations))
}

/// Rebuilds a `GridSpec` matching the already-built benchmark grid (the
/// engine builder wants a spec, and grid generation is deterministic).
fn paper_spec_of(grid: &opera_grid::PowerGrid) -> Result<GridSpec, String> {
    let scale = opera_bench::scale_from_env();
    let spec = GridSpec::paper_grid(0)
        .map_err(|e| e.to_string())?
        .scaled_nodes(scale);
    let rebuilt = spec.build().map_err(|e| e.to_string())?;
    if rebuilt.node_count() != grid.node_count() {
        return Err("grid spec reconstruction diverged".to_string());
    }
    Ok(spec)
}
