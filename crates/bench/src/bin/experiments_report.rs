//! Runs the complete (scaled) experiment suite in one go and prints every
//! result recorded in EXPERIMENTS.md: the Table 1 reproduction, the
//! Figure 1/2 distributions, the order/variable ablation, the special case
//! of Section 5.1, a batched scenario sweep served by one long-lived
//! [`OperaEngine`] (setup-once/solve-many), the
//! Galerkin-vs-collocation-vs-Monte-Carlo cross-validation (orders
//! `1..=OPERA_BENCH_COLLOCATION_MAX_ORDER`), and the netlist round trip
//! (export the scaled paper grid as a SPICE-style deck, re-parse it with
//! bit-identical stamping, re-analyze through the engine).
//!
//! ```text
//! cargo run --release -p opera-bench --bin experiments_report
//! ```

use opera::analysis::run_experiment;
use opera::compare::compare;
use opera::engine::{CollocationConfig, McConfig, OperaEngine, Scenario};
use opera::monte_carlo::{run as run_monte_carlo, run_leakage, MonteCarloOptions};
use opera::special_case::{solve_leakage, SpecialCaseOptions};
use opera::stochastic::{solve, OperaOptions};
use opera::transient::TransientOptions;
use opera_bench::{
    ascii_histogram, collocation_max_order_from_env, mc_samples_from_env, parallelism_from_env,
    scale_from_env, table1_config, table1_header, table1_row_line,
};
use opera_grid::GridSpec;
use opera_netlist::{export_grid, parse};
use opera_variation::{LeakageModel, StochasticGridModel, VariationSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_env();
    let samples = mc_samples_from_env();
    let parallelism = parallelism_from_env()?;

    // ------------------------------------------------------------------ Table 1
    println!("==== Experiment 1: Table 1 (scale {scale}, {samples} MC samples) ====");
    println!("{}", table1_header());
    let mut first_report = None;
    for row in 0..7 {
        let report = run_experiment(&table1_config(row, scale, samples, parallelism)?)?;
        println!("{}", table1_row_line(&report));
        if row == 0 {
            first_report = Some(report);
        }
    }

    // --------------------------------------------------------------- Figures 1–2
    println!("\n==== Experiment 2: Figures 1 & 2 (drop distribution at the worst node) ====");
    let report = first_report.expect("row 0 ran above");
    let dist = &report.distribution;
    println!("probe node {} at time index {}", dist.node, dist.time_index);
    println!(
        "{}",
        ascii_histogram(
            "Monte Carlo (% of occurrences per drop bin, drop in % of VDD)",
            &dist.monte_carlo.centers(),
            &dist.monte_carlo.percentages()
        )
    );
    println!(
        "{}",
        ascii_histogram(
            "OPERA (sampled from the order-2 expansion)",
            &dist.opera.centers(),
            &dist.opera.percentages()
        )
    );

    // -------------------------------------------------- Order / variable ablation
    println!("==== Experiment 3: expansion order and variable-count ablation ====");
    let grid = GridSpec::industrial((19_181.0 * scale) as usize)
        .with_seed(71)
        .build()?;
    let transient = TransientOptions::new(0.05e-9, grid.waveform_end_time());
    let spec = VariationSpec::paper_defaults();
    println!(
        "{:<26} {:>5} {:>6} {:>12} {:>12} {:>10}",
        "model", "order", "N+1", "µ err %VDD", "σ err %", "OPERA (s)"
    );
    for (name, model) in [
        (
            "2 vars (ξ_G, ξ_L)",
            StochasticGridModel::inter_die(&grid, &spec)?,
        ),
        (
            "3 vars (ξ_W, ξ_T, ξ_L)",
            StochasticGridModel::inter_die_three_variable(&grid, &spec)?,
        ),
    ] {
        let mc = parallelism.install(|| {
            run_monte_carlo(&model, &MonteCarloOptions::new(samples, 17, transient))
        })??;
        for order in 1..=3u32 {
            let started = std::time::Instant::now();
            let sol = solve(&model, &OperaOptions::with_order(order, transient))?;
            let secs = started.elapsed().as_secs_f64();
            let err = compare(&sol, &mc, grid.vdd());
            println!(
                "{:<26} {:>5} {:>6} {:>12.5} {:>12.2} {:>10.3}",
                name,
                order,
                sol.basis_size(),
                err.avg_mean_error_percent,
                err.avg_std_error_percent,
                secs
            );
        }
    }

    // ------------------------------------------------------------ Special case 5.1
    println!("\n==== Experiment 4: special case (RHS-only leakage variation, Section 5.1) ====");
    let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0)?;
    let started = std::time::Instant::now();
    let sol = parallelism
        .install(|| solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(transient)))??;
    let opera_secs = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let mc = parallelism.install(|| {
        run_leakage(
            &grid,
            &leakage,
            &MonteCarloOptions::new(samples, 23, transient),
        )
    })??;
    let mc_secs = started.elapsed().as_secs_f64();
    let (node, k, drop) = sol.worst_mean_drop(grid.vdd());
    println!(
        "worst drop {:.2} mV at node {node}: OPERA σ {:.3} mV vs MC σ {:.3} mV",
        1e3 * drop,
        1e3 * sol.std_dev_at(k, node),
        1e3 * mc.std_dev_at(k, node)
    );
    println!(
        "runtime: OPERA {:.2} s vs Monte Carlo {:.2} s (speed-up {:.0}x, single factorisation shared)",
        opera_secs,
        mc_secs,
        mc_secs / opera_secs
    );

    // ------------------------------------------------ Batched scenario sweep
    println!("\n==== Experiment 5: batched scenario sweep on one OperaEngine ====");
    let base = table1_config(0, scale, samples, parallelism)?;
    let engine = OperaEngine::from_config(&base)?;
    println!(
        "engine: {} nodes, {} basis functions, solver {}, setup {:.2} s",
        engine.node_count(),
        engine.basis_size(),
        engine.solver().name(),
        engine.setup_seconds()
    );
    let scenarios = [
        Scenario::named("light (0.75x currents)").with_current_scale(0.75),
        Scenario::named("nominal"),
        Scenario::named("heavy (1.25x currents)").with_current_scale(1.25),
        Scenario::named("surge (1.5x currents)").with_current_scale(1.5),
    ];
    let reports = engine.run_batch(&scenarios)?;
    println!(
        "{:<26} {:>11} {:>9} {:>11} {:>10} {:>10}",
        "scenario", "drop (mV)", "σ (mV)", "µ err %VDD", "OPERA (s)", "MC (s)"
    );
    for r in &reports {
        println!(
            "{:<26} {:>11.2} {:>9.3} {:>11.4} {:>10.3} {:>10.2}",
            r.label,
            1e3 * r.report.opera.worst_mean_drop,
            1e3 * r.report.opera.sigma_at_worst,
            r.report.errors.avg_mean_error_percent,
            r.report.opera_seconds,
            r.report.monte_carlo_seconds
        );
    }
    println!(
        "{} scenarios served by {} assembly and {} factorisation(s); \
         per-scenario OPERA cost excludes the shared {:.2} s setup",
        reports.len(),
        engine.assembly_count(),
        engine.factorization_count(),
        engine.setup_seconds()
    );

    // ------------------- Cross-validation: Galerkin vs collocation vs MC
    let max_order = collocation_max_order_from_env();
    println!(
        "\n==== Experiment 6: cross-validation — Galerkin vs collocation vs Monte Carlo \
         (orders 1..={max_order}) ===="
    );
    println!(
        "{:>5} {:>6} {:>6} | {:>12} {:>12} | {:>10} {:>10} | {:>9} {:>9} {:>9}",
        "order",
        "N+1",
        "nodes",
        "gal µerr %V",
        "col µerr %V",
        "gal σerr %",
        "col σerr %",
        "gal (s)",
        "col (s)",
        "MC (s)"
    );
    let base = table1_config(0, scale, samples, parallelism)?;
    // The Monte Carlo baseline depends only on the model and transient
    // settings, not on the expansion order — run it once for the whole sweep.
    let mut mc_baseline = None;
    for order in 1..=max_order {
        let mut config = base.clone();
        config.order = order;
        let engine = OperaEngine::from_config(&config)?;
        if mc_baseline.is_none() {
            let started = std::time::Instant::now();
            let mc = engine.monte_carlo(&McConfig::new(samples, 29))?;
            mc_baseline = Some((mc, started.elapsed().as_secs_f64()));
        }
        let (mc, mc_secs) = mc_baseline.as_ref().expect("just populated");
        let started = std::time::Instant::now();
        let galerkin = engine.solve()?;
        let gal_secs = engine.setup_seconds() + started.elapsed().as_secs_f64();
        let colloc = engine.collocation(&CollocationConfig::smolyak(order))?;
        let gal_err = compare(&galerkin, mc, engine.grid().vdd());
        let col_err = compare(&colloc.solution, mc, engine.grid().vdd());
        println!(
            "{:>5} {:>6} {:>6} | {:>12.5} {:>12.5} | {:>10.2} {:>10.2} | {:>9.3} {:>9.3} {:>9.2}",
            order,
            engine.basis_size(),
            colloc.nodes,
            gal_err.avg_mean_error_percent,
            col_err.avg_mean_error_percent,
            gal_err.avg_std_error_percent,
            col_err.avg_std_error_percent,
            gal_secs,
            colloc.seconds,
            mc_secs
        );
        assert_eq!(
            engine.collocation_symbolic_count(),
            1,
            "collocation must share one symbolic analysis"
        );
    }
    println!(
        "collocation shares one symbolic analysis across all nodes of each sweep; \
         both methods project into the same order-p chaos basis"
    );

    // --------------------------- Netlist round trip: GridSpec -> deck -> engine
    println!("\n==== Experiment 7: netlist front end — export, re-parse, re-analyze ====");
    let grid = GridSpec::paper_grid(0)?.scaled_nodes(scale).build()?;
    let started = std::time::Instant::now();
    let deck = export_grid(&grid, None)?;
    let export_secs = started.elapsed().as_secs_f64();
    let started = std::time::Instant::now();
    let netlist = parse(&deck)?;
    let card_count = netlist.cards.len();
    let lowered = netlist.lower()?;
    let parse_secs = started.elapsed().as_secs_f64();
    let identical = grid.conductance_matrix() == lowered.grid.conductance_matrix()
        && grid.capacitance_matrix() == lowered.grid.capacitance_matrix()
        && grid.sources() == lowered.grid.sources();
    println!(
        "{} nodes -> {:.1} KiB deck, {card_count} cards; export {export_secs:.3} s, \
         parse+lower {parse_secs:.3} s; bit-identical stamping: {identical}",
        grid.node_count(),
        deck.len() as f64 / 1024.0,
    );
    assert!(identical, "netlist round trip lost bits");
    let engine = OperaEngine::for_lowered_netlist(lowered)
        .mc_samples(samples.min(50))
        .build()?;
    let report = engine.run_scenario(&Scenario::named("netlist"))?;
    println!(
        "re-analyzed from the deck: worst mean drop {:.2} mV at node `{}`, \
         µ err vs MC {:.4} %VDD",
        1e3 * report.report.opera.worst_mean_drop,
        engine.node_label(report.report.opera.worst_node),
        report.report.errors.avg_mean_error_percent
    );
    Ok(())
}
