//! Regenerates Table 1 of the paper: accuracy and speed-up of OPERA vs Monte
//! Carlo for the seven grids.
//!
//! By default the grids are scaled to 5 % of the paper's node counts and the
//! Monte Carlo uses 200 samples so the whole table finishes in minutes.
//! Set `OPERA_BENCH_SCALE=1.0 OPERA_BENCH_MC_SAMPLES=1000` (or pass
//! `--full`) to run the paper-scale configuration.
//!
//! ```text
//! cargo run --release -p opera-bench --bin table1_report
//! OPERA_BENCH_SCALE=0.2 cargo run --release -p opera-bench --bin table1_report
//! cargo run --release -p opera-bench --bin table1_report -- --rows 0,1,2
//! ```

use opera::analysis::run_experiment;
use opera_bench::{
    mc_samples_from_env, parallelism_from_env, scale_from_env, table1_config, table1_header,
    table1_row_line,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let scale = if full { 1.0 } else { scale_from_env() };
    let samples = if full { 1000 } else { mc_samples_from_env() };
    let rows: Vec<usize> = args
        .iter()
        .position(|a| a == "--rows")
        .and_then(|i| args.get(i + 1))
        .map(|list| {
            list.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .unwrap_or_else(|| (0..7).collect());

    println!(
        "Table 1 reproduction — scale {scale}, {samples} Monte Carlo samples, order-2 expansion"
    );
    let parallelism = parallelism_from_env()?;
    println!("{}", table1_header());
    for row in rows {
        let config = table1_config(row, scale, samples, parallelism)?;
        let report = run_experiment(&config)?;
        println!("{}", table1_row_line(&report));
    }
    println!("\npaper reference (full scale, 1000 samples):");
    println!(
        "  avg %err µ: 0.014–0.199, avg %err σ: 1.5–6.7, ±3σ: 30–46 % of µ0, speed-ups 20×–124×"
    );
    Ok(())
}
