//! Minimal dependency-free JSON: a value tree, a pretty writer and a strict
//! recursive-descent parser.
//!
//! The benchmark trajectory files (`BENCH_*.json`) must be written and
//! re-validated without any external crates (the build is offline), so this
//! module carries exactly the JSON subset they need: objects, arrays,
//! strings, finite numbers, booleans and `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values are serialised as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value with two-space indentation and a trailing
    /// newline (the `BENCH_*.json` house style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let ch_len = utf8_len(c);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        entries.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::str("demo/v1")),
            ("count".to_string(), Json::Num(3.0)),
            ("ratio".to_string(), Json::Num(0.125)),
            ("ok".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
            (
                "items".to_string(),
                Json::Arr(vec![
                    Json::Num(1.5),
                    Json::str("two\nlines \"quoted\""),
                    Json::Obj(vec![]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_pretty();
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count").unwrap().as_num(), Some(3.0));
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("demo/v1"));
        assert_eq!(parsed.get("items").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn parses_standalone_values_and_unicode() {
        assert_eq!(parse("  42 ").unwrap().as_num(), Some(42.0));
        assert_eq!(parse("-1.5e3").unwrap().as_num(), Some(-1500.0));
        assert_eq!(parse("\"π ≈ 3\"").unwrap().as_str(), Some("π ≈ 3"));
        assert_eq!(parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(parse("null").unwrap(), Json::Null);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1, ]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn non_finite_numbers_serialise_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_pretty().trim(), "null");
    }
}
