//! Chrome trace-event export of [`opera_trace`] snapshots.
//!
//! The exporter lives here rather than in `opera_trace` so the trace crate
//! stays dependency-free at the bottom of the workspace: `opera-bench`
//! already owns the vendored JSON writer/parser in [`crate::json`], and the
//! report binaries are the only consumers of the exported files.
//!
//! The output follows the Chrome trace-event JSON object format
//! (`chrome://tracing`, Perfetto): spans become `ph: "X"` complete events
//! with microsecond `ts`/`dur`, instant events become `ph: "i"`, and
//! counters/gauges become `ph: "C"` counter samples. Span identity and
//! parentage travel in `args` so a validated file can be folded back into a
//! nesting tree without the live snapshot.

use opera_trace::TraceSnapshot;

use crate::json::Json;

/// Schema tag written into (and required from) every exported trace.
pub const CHROME_TRACE_SCHEMA: &str = "opera-trace/chrome/v1";

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChromeTraceSummary {
    /// `ph: "X"` complete (span) events.
    pub complete_events: usize,
    /// `ph: "i"` instant events.
    pub instant_events: usize,
    /// `ph: "C"` counter samples.
    pub counter_events: usize,
}

fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

/// Converts a drained snapshot into a Chrome trace-event JSON document.
///
/// Spans map to `ph: "X"` complete events (one per [`opera_trace::SpanRecord`],
/// with the span id and parent id in `args`), instant events to `ph: "i"`,
/// and the final counter/gauge values to `ph: "C"` counter samples stamped at
/// the end of the trace.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> Json {
    let mut events = Vec::new();
    let mut end_ns = 0u64;
    for span in &snapshot.spans {
        end_ns = end_ns.max(span.start_ns.saturating_add(span.dur_ns));
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::str(span.name)),
            ("cat".to_string(), Json::str("opera")),
            ("ph".to_string(), Json::str("X")),
            ("ts".to_string(), Json::Num(ns_to_us(span.start_ns))),
            ("dur".to_string(), Json::Num(ns_to_us(span.dur_ns))),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(span.tid as f64)),
            (
                "args".to_string(),
                Json::Obj(vec![
                    ("span_id".to_string(), Json::Num(span.id as f64)),
                    ("parent_id".to_string(), Json::Num(span.parent as f64)),
                ]),
            ),
        ]));
    }
    for event in &snapshot.events {
        end_ns = end_ns.max(event.ts_ns);
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::str(event.name)),
            ("cat".to_string(), Json::str("opera")),
            ("ph".to_string(), Json::str("i")),
            ("ts".to_string(), Json::Num(ns_to_us(event.ts_ns))),
            ("pid".to_string(), Json::Num(1.0)),
            ("tid".to_string(), Json::Num(event.tid as f64)),
            ("s".to_string(), Json::str("t")),
            (
                "args".to_string(),
                Json::Obj(vec![(
                    "message".to_string(),
                    Json::str(event.message.clone()),
                )]),
            ),
        ]));
    }
    let end_us = ns_to_us(end_ns);
    for (name, value) in &snapshot.counters {
        events.push(counter_sample(name, *value as f64, end_us));
    }
    for (name, value) in &snapshot.gauges {
        events.push(counter_sample(name, *value, end_us));
    }
    Json::Obj(vec![
        ("schema".to_string(), Json::str(CHROME_TRACE_SCHEMA)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
        ("traceEvents".to_string(), Json::Arr(events)),
    ])
}

fn counter_sample(name: &str, value: f64, ts_us: f64) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::str(name)),
        ("cat".to_string(), Json::str("opera")),
        ("ph".to_string(), Json::str("C")),
        ("ts".to_string(), Json::Num(ts_us)),
        ("pid".to_string(), Json::Num(1.0)),
        ("tid".to_string(), Json::Num(0.0)),
        (
            "args".to_string(),
            Json::Obj(vec![("value".to_string(), Json::Num(value))]),
        ),
    ])
}

fn require_num(event: &Json, key: &str, index: usize) -> Result<f64, String> {
    let value = event
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event {index}: missing numeric {key:?}"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "event {index}: {key} = {value} is not a finite non-negative number"
        ));
    }
    Ok(value)
}

/// Schema-checks a parsed Chrome trace document produced by [`chrome_trace`]
/// (the CI smoke run round-trips the exported file through
/// [`crate::json::parse`] and this validator).
///
/// Checks the schema tag, that `traceEvents` is an array, and that every
/// event carries `name`/`ph`/`ts`/`pid`/`tid` with the per-phase extras:
/// `X` events need a non-negative `dur` plus `span_id`/`parent_id` args,
/// `C` events a numeric `args.value`.
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(doc: &Json) -> Result<ChromeTraceSummary, String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing top-level \"schema\" string")?;
    if schema != CHROME_TRACE_SCHEMA {
        return Err(format!(
            "schema {schema:?} is not the expected {CHROME_TRACE_SCHEMA:?}"
        ));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing top-level \"traceEvents\" array")?;
    let mut summary = ChromeTraceSummary::default();
    for (index, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {index}: missing string \"name\""))?;
        if name.is_empty() {
            return Err(format!("event {index}: empty name"));
        }
        require_num(event, "ts", index)?;
        require_num(event, "pid", index)?;
        require_num(event, "tid", index)?;
        let ph = event
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {index}: missing string \"ph\""))?;
        match ph {
            "X" => {
                require_num(event, "dur", index)?;
                let args = event
                    .get("args")
                    .ok_or_else(|| format!("event {index}: complete event without args"))?;
                for key in ["span_id", "parent_id"] {
                    args.get(key)
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("event {index}: missing numeric args.{key}"))?;
                }
                summary.complete_events += 1;
            }
            "i" => {
                summary.instant_events += 1;
            }
            "C" => {
                event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {index}: counter without numeric args.value"))?;
                summary.counter_events += 1;
            }
            other => {
                return Err(format!("event {index}: unsupported phase {other:?}"));
            }
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn demo_snapshot() -> TraceSnapshot {
        let _lock = opera_trace::test_guard();
        opera_trace::reset();
        opera_trace::enable();
        {
            let _outer = opera_trace::span("outer");
            let _inner = opera_trace::span("inner");
            opera_trace::count("widgets", 3);
            opera_trace::gauge_set("level", 0.5);
            opera_trace::event("milestone", "halfway");
        }
        let snapshot = opera_trace::drain();
        opera_trace::disable();
        snapshot
    }

    #[test]
    fn export_round_trips_through_the_json_parser_and_validates() {
        let snapshot = demo_snapshot();
        let doc = chrome_trace(&snapshot);
        let parsed = json::parse(&doc.to_pretty()).unwrap();
        let summary = validate_chrome_trace(&parsed).unwrap();
        assert_eq!(summary.complete_events, 2);
        assert_eq!(summary.instant_events, 1);
        // One sample per counter plus one per gauge.
        assert_eq!(summary.counter_events, 2);
    }

    #[test]
    fn export_preserves_span_parentage_in_args() {
        let snapshot = demo_snapshot();
        let doc = chrome_trace(&snapshot);
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        let arg = |name: &str, key: &str| -> f64 {
            events
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|e| e.get("args"))
                .and_then(|a| a.get(key))
                .and_then(Json::as_num)
                .unwrap()
        };
        assert_eq!(arg("outer", "parent_id"), 0.0);
        assert_eq!(arg("inner", "parent_id"), arg("outer", "span_id"));
    }

    #[test]
    fn validation_rejects_malformed_documents() {
        let no_schema = Json::Obj(vec![("traceEvents".to_string(), Json::Arr(vec![]))]);
        assert!(validate_chrome_trace(&no_schema).is_err());

        let bad_phase = Json::Obj(vec![
            ("schema".to_string(), Json::str(CHROME_TRACE_SCHEMA)),
            (
                "traceEvents".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".to_string(), Json::str("x")),
                    ("ph".to_string(), Json::str("Z")),
                    ("ts".to_string(), Json::Num(0.0)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(0.0)),
                ])]),
            ),
        ]);
        let err = validate_chrome_trace(&bad_phase).unwrap_err();
        assert!(err.contains("unsupported phase"), "{err}");

        let negative_dur = Json::Obj(vec![
            ("schema".to_string(), Json::str(CHROME_TRACE_SCHEMA)),
            (
                "traceEvents".to_string(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".to_string(), Json::str("x")),
                    ("ph".to_string(), Json::str("X")),
                    ("ts".to_string(), Json::Num(0.0)),
                    ("dur".to_string(), Json::Num(-1.0)),
                    ("pid".to_string(), Json::Num(1.0)),
                    ("tid".to_string(), Json::Num(0.0)),
                ])]),
            ),
        ]);
        assert!(validate_chrome_trace(&negative_dur).is_err());
    }
}
