//! Shared configuration for the OPERA benchmark harness.
//!
//! The report binaries (`table1_report`, `figure12_report`,
//! `experiments_report`) regenerate the paper's tables and figures; the
//! Criterion benches in `benches/` measure the kernels and the end-to-end
//! OPERA/Monte-Carlo runtimes on scaled grids.
//!
//! All harness entry points accept the environment variables
//!
//! * `OPERA_BENCH_SCALE` — fraction of the paper's node counts to use
//!   (default `0.05`; `1.0` reproduces the full-size grids),
//! * `OPERA_BENCH_MC_SAMPLES` — Monte Carlo sample count (default `200`;
//!   the paper uses `1000`),
//! * `OPERA_BENCH_THREADS` — worker threads for the Monte Carlo baseline
//!   (`1` = serial, `0`/`max` = all cores — the default, any other integer
//!   = fixed count); statistics are bit-identical for every setting. An
//!   unparseable value makes the report binaries exit with an error rather
//!   than silently falling back,
//! * `OPERA_BENCH_COLLOCATION_MAX_ORDER` — highest expansion order of the
//!   Galerkin-vs-collocation-vs-Monte-Carlo cross-validation experiment
//!   (default `2`),
//!
//! so the same binaries can run as quick smoke tests or as the full
//! (hours-long) paper-scale reproduction.

use opera::analysis::ExperimentConfig;
use opera::Parallelism;

pub mod json;
pub mod perf;
pub mod trace_export;

/// Default fraction of the paper's grid sizes used by the reports.
pub const DEFAULT_SCALE: f64 = 0.05;
/// Default Monte Carlo sample count used by the reports.
pub const DEFAULT_MC_SAMPLES: usize = 200;

/// Reads the node-count scale from `OPERA_BENCH_SCALE`.
pub fn scale_from_env() -> f64 {
    std::env::var("OPERA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Reads the Monte Carlo sample count from `OPERA_BENCH_MC_SAMPLES`.
pub fn mc_samples_from_env() -> usize {
    std::env::var("OPERA_BENCH_MC_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MC_SAMPLES)
}

/// Reads the Monte Carlo worker-thread budget from `OPERA_BENCH_THREADS`
/// (`1` = serial, `0`/`max` = all cores, otherwise a fixed count; defaults
/// to all cores when unset).
///
/// # Errors
///
/// Returns a descriptive message for an unparseable setting. The report
/// binaries propagate this out of `main`, so a typo like
/// `OPERA_BENCH_THREADS=banana` aborts the run instead of silently falling
/// back to all cores.
pub fn parallelism_from_env() -> Result<Parallelism, String> {
    parallelism_from_setting(std::env::var("OPERA_BENCH_THREADS").ok().as_deref())
}

/// The environment-free core of [`parallelism_from_env`]: `None` (variable
/// unset) means all cores; otherwise the string must parse.
///
/// # Errors
///
/// Returns a descriptive message for an unparseable setting.
pub fn parallelism_from_setting(raw: Option<&str>) -> Result<Parallelism, String> {
    match raw {
        None => Ok(Parallelism::Max),
        Some(raw) => Parallelism::from_str_setting(raw).ok_or_else(|| {
            format!(
                "unparseable OPERA_BENCH_THREADS={raw:?}: \
                 expected an integer or \"max\""
            )
        }),
    }
}

/// Default highest expansion order of the Galerkin-vs-collocation-vs-Monte
/// Carlo cross-validation experiment.
pub const DEFAULT_COLLOCATION_MAX_ORDER: u32 = 2;

/// Reads the highest order of the cross-validation experiment from
/// `OPERA_BENCH_COLLOCATION_MAX_ORDER` (default
/// [`DEFAULT_COLLOCATION_MAX_ORDER`]; unparseable values fall back to the
/// default like the other tuning knobs).
pub fn collocation_max_order_from_env() -> u32 {
    std::env::var("OPERA_BENCH_COLLOCATION_MAX_ORDER")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&order| order >= 1)
        .unwrap_or(DEFAULT_COLLOCATION_MAX_ORDER)
}

/// The experiment configuration for one (possibly scaled) Table 1 row.
///
/// Pass [`parallelism_from_env`] to honour the `OPERA_BENCH_THREADS`
/// setting; the environment is deliberately not read here so the function's
/// inputs stay explicit.
///
/// # Errors
///
/// Returns [`opera::OperaError::InvalidOptions`] for rows outside the
/// paper's seven grids.
pub fn table1_config(
    row: usize,
    scale: f64,
    mc_samples: usize,
    parallelism: Parallelism,
) -> Result<ExperimentConfig, opera::OperaError> {
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        let mut config = ExperimentConfig::table1_row(row)?;
        config.mc_samples = mc_samples;
        config
    } else {
        ExperimentConfig::table1_row_scaled(row, scale, mc_samples)?
    };
    Ok(config.with_parallelism(parallelism))
}

/// Formats the header of the Table 1 reproduction.
pub fn table1_header() -> String {
    format!(
        "{:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>9} | {:>10} {:>10} | {:>8}",
        "nodes",
        "avg %err µ",
        "max %err µ",
        "avg %err σ",
        "max %err σ",
        "±3σ (%µ0)",
        "MC (s)",
        "OPERA (s)",
        "speedup"
    )
}

/// Formats one row of the Table 1 reproduction from an experiment report.
pub fn table1_row_line(report: &opera::analysis::ExperimentReport) -> String {
    format!(
        "{:>9} | {:>11.4} {:>11.4} | {:>11.2} {:>11.2} | {:>9.1} | {:>10.2} {:>10.2} | {:>8.0}",
        report.node_count,
        report.errors.avg_mean_error_percent,
        report.errors.max_mean_error_percent,
        report.errors.avg_std_error_percent,
        report.errors.max_std_error_percent,
        report.opera.avg_three_sigma_percent_of_nominal,
        report.monte_carlo_seconds,
        report.opera_seconds,
        report.speedup
    )
}

/// Renders a histogram as an ASCII bar chart (one line per bin).
pub fn ascii_histogram(label: &str, centers: &[f64], percentages: &[f64]) -> String {
    let mut out = format!("{label}\n");
    for (c, p) in centers.iter().zip(percentages) {
        let bars = "#".repeat((p * 0.8).round() as usize);
        out.push_str(&format!("{c:>8.3} | {p:>5.1}% {bars}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_settings_round_trip() {
        // One test covers both unset → defaults and set → parsed, so the
        // environment mutations cannot race a sibling test thread.
        std::env::remove_var("OPERA_BENCH_SCALE");
        std::env::remove_var("OPERA_BENCH_MC_SAMPLES");
        std::env::remove_var("OPERA_BENCH_THREADS");
        std::env::remove_var("OPERA_BENCH_COLLOCATION_MAX_ORDER");
        assert_eq!(scale_from_env(), DEFAULT_SCALE);
        assert_eq!(mc_samples_from_env(), DEFAULT_MC_SAMPLES);
        assert_eq!(parallelism_from_env(), Ok(Parallelism::Max));
        assert_eq!(
            collocation_max_order_from_env(),
            DEFAULT_COLLOCATION_MAX_ORDER
        );

        std::env::set_var("OPERA_BENCH_THREADS", "1");
        assert_eq!(parallelism_from_env(), Ok(Parallelism::Serial));
        std::env::set_var("OPERA_BENCH_THREADS", "4");
        assert_eq!(parallelism_from_env(), Ok(Parallelism::Threads(4)));
        // An unparseable setting is an error, not a silent fallback.
        std::env::set_var("OPERA_BENCH_THREADS", "banana");
        let err = parallelism_from_env().unwrap_err();
        assert!(err.contains("banana"), "{err}");
        std::env::remove_var("OPERA_BENCH_THREADS");

        std::env::set_var("OPERA_BENCH_COLLOCATION_MAX_ORDER", "3");
        assert_eq!(collocation_max_order_from_env(), 3);
        std::env::set_var("OPERA_BENCH_COLLOCATION_MAX_ORDER", "0");
        assert_eq!(
            collocation_max_order_from_env(),
            DEFAULT_COLLOCATION_MAX_ORDER
        );
        std::env::remove_var("OPERA_BENCH_COLLOCATION_MAX_ORDER");
    }

    #[test]
    fn parallelism_setting_parses_or_errors() {
        // Parse-ok paths.
        assert_eq!(parallelism_from_setting(None), Ok(Parallelism::Max));
        assert_eq!(parallelism_from_setting(Some("1")), Ok(Parallelism::Serial));
        assert_eq!(parallelism_from_setting(Some("max")), Ok(Parallelism::Max));
        assert_eq!(
            parallelism_from_setting(Some("8")),
            Ok(Parallelism::Threads(8))
        );
        // Parse-fail paths carry the offending value in the message.
        for bad in ["banana", "-2", "1.5", ""] {
            let err = parallelism_from_setting(Some(bad)).unwrap_err();
            assert!(err.contains(bad), "{err}");
            assert!(err.contains("OPERA_BENCH_THREADS"), "{err}");
        }
    }

    #[test]
    fn table1_config_honours_scale() {
        let scaled = table1_config(0, 0.1, 50, Parallelism::Serial).unwrap();
        assert_eq!(scaled.parallelism, Parallelism::Serial);
        assert_eq!(scaled.mc_samples, 50);
        assert!(scaled.grid_spec.target_nodes < 3_000);
        let full = table1_config(0, 1.0, 1000, Parallelism::Max).unwrap();
        assert_eq!(full.grid_spec.target_nodes, 19_181);
        assert!(table1_config(9, 0.1, 50, Parallelism::Max).is_err());
    }

    #[test]
    fn header_and_histogram_formatting() {
        assert!(table1_header().contains("speedup"));
        let s = ascii_histogram("demo", &[1.0, 2.0], &[10.0, 90.0]);
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 3);
    }
}
