//! Shared configuration for the OPERA benchmark harness.
//!
//! The report binaries (`table1_report`, `figure12_report`,
//! `experiments_report`) regenerate the paper's tables and figures; the
//! Criterion benches in `benches/` measure the kernels and the end-to-end
//! OPERA/Monte-Carlo runtimes on scaled grids.
//!
//! All harness entry points accept the environment variables
//!
//! * `OPERA_BENCH_SCALE` — fraction of the paper's node counts to use
//!   (default `0.05`; `1.0` reproduces the full-size grids),
//! * `OPERA_BENCH_MC_SAMPLES` — Monte Carlo sample count (default `200`;
//!   the paper uses `1000`),
//! * `OPERA_BENCH_THREADS` — worker threads for the Monte Carlo baseline
//!   (`1` = serial, `0`/`max` = all cores — the default, any other integer
//!   = fixed count); statistics are bit-identical for every setting,
//!
//! so the same binaries can run as quick smoke tests or as the full
//! (hours-long) paper-scale reproduction.

use opera::analysis::ExperimentConfig;
use opera::Parallelism;

/// Default fraction of the paper's grid sizes used by the reports.
pub const DEFAULT_SCALE: f64 = 0.05;
/// Default Monte Carlo sample count used by the reports.
pub const DEFAULT_MC_SAMPLES: usize = 200;

/// Reads the node-count scale from `OPERA_BENCH_SCALE`.
pub fn scale_from_env() -> f64 {
    std::env::var("OPERA_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Reads the Monte Carlo sample count from `OPERA_BENCH_MC_SAMPLES`.
pub fn mc_samples_from_env() -> usize {
    std::env::var("OPERA_BENCH_MC_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MC_SAMPLES)
}

/// Reads the Monte Carlo worker-thread budget from `OPERA_BENCH_THREADS`
/// (`1` = serial, `0`/`max` = all cores, otherwise a fixed count; defaults
/// to all cores).
pub fn parallelism_from_env() -> Parallelism {
    match std::env::var("OPERA_BENCH_THREADS") {
        Err(_) => Parallelism::Max,
        Ok(raw) => Parallelism::from_str_setting(&raw).unwrap_or_else(|| {
            eprintln!(
                "warning: ignoring unparseable OPERA_BENCH_THREADS={raw:?} \
                 (expected an integer or \"max\"); using all cores"
            );
            Parallelism::Max
        }),
    }
}

/// The experiment configuration for one (possibly scaled) Table 1 row.
///
/// Pass [`parallelism_from_env`] to honour the `OPERA_BENCH_THREADS`
/// setting; the environment is deliberately not read here so the function's
/// inputs stay explicit.
///
/// # Errors
///
/// Returns [`opera::OperaError::InvalidOptions`] for rows outside the
/// paper's seven grids.
pub fn table1_config(
    row: usize,
    scale: f64,
    mc_samples: usize,
    parallelism: Parallelism,
) -> Result<ExperimentConfig, opera::OperaError> {
    let config = if (scale - 1.0).abs() < f64::EPSILON {
        let mut config = ExperimentConfig::table1_row(row)?;
        config.mc_samples = mc_samples;
        config
    } else {
        ExperimentConfig::table1_row_scaled(row, scale, mc_samples)?
    };
    Ok(config.with_parallelism(parallelism))
}

/// Formats the header of the Table 1 reproduction.
pub fn table1_header() -> String {
    format!(
        "{:>9} | {:>11} {:>11} | {:>11} {:>11} | {:>9} | {:>10} {:>10} | {:>8}",
        "nodes",
        "avg %err µ",
        "max %err µ",
        "avg %err σ",
        "max %err σ",
        "±3σ (%µ0)",
        "MC (s)",
        "OPERA (s)",
        "speedup"
    )
}

/// Formats one row of the Table 1 reproduction from an experiment report.
pub fn table1_row_line(report: &opera::analysis::ExperimentReport) -> String {
    format!(
        "{:>9} | {:>11.4} {:>11.4} | {:>11.2} {:>11.2} | {:>9.1} | {:>10.2} {:>10.2} | {:>8.0}",
        report.node_count,
        report.errors.avg_mean_error_percent,
        report.errors.max_mean_error_percent,
        report.errors.avg_std_error_percent,
        report.errors.max_std_error_percent,
        report.opera.avg_three_sigma_percent_of_nominal,
        report.monte_carlo_seconds,
        report.opera_seconds,
        report.speedup
    )
}

/// Renders a histogram as an ASCII bar chart (one line per bin).
pub fn ascii_histogram(label: &str, centers: &[f64], percentages: &[f64]) -> String {
    let mut out = format!("{label}\n");
    for (c, p) in centers.iter().zip(percentages) {
        let bars = "#".repeat((p * 0.8).round() as usize);
        out.push_str(&format!("{c:>8.3} | {p:>5.1}% {bars}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_settings_round_trip() {
        // One test covers both unset → defaults and set → parsed, so the
        // OPERA_BENCH_THREADS mutations cannot race a sibling test thread.
        std::env::remove_var("OPERA_BENCH_SCALE");
        std::env::remove_var("OPERA_BENCH_MC_SAMPLES");
        std::env::remove_var("OPERA_BENCH_THREADS");
        assert_eq!(scale_from_env(), DEFAULT_SCALE);
        assert_eq!(mc_samples_from_env(), DEFAULT_MC_SAMPLES);
        assert_eq!(parallelism_from_env(), Parallelism::Max);

        std::env::set_var("OPERA_BENCH_THREADS", "1");
        assert_eq!(parallelism_from_env(), Parallelism::Serial);
        std::env::set_var("OPERA_BENCH_THREADS", "4");
        assert_eq!(parallelism_from_env(), Parallelism::Threads(4));
        std::env::set_var("OPERA_BENCH_THREADS", "banana");
        assert_eq!(parallelism_from_env(), Parallelism::Max);
        std::env::remove_var("OPERA_BENCH_THREADS");
    }

    #[test]
    fn table1_config_honours_scale() {
        let scaled = table1_config(0, 0.1, 50, Parallelism::Serial).unwrap();
        assert_eq!(scaled.parallelism, Parallelism::Serial);
        assert_eq!(scaled.mc_samples, 50);
        assert!(scaled.grid_spec.target_nodes < 3_000);
        let full = table1_config(0, 1.0, 1000, Parallelism::Max).unwrap();
        assert_eq!(full.grid_spec.target_nodes, 19_181);
        assert!(table1_config(9, 0.1, 50, Parallelism::Max).is_err());
    }

    #[test]
    fn header_and_histogram_formatting() {
        assert!(table1_header().contains("speedup"));
        let s = ascii_histogram("demo", &[1.0, 2.0], &[10.0, 90.0]);
        assert!(s.contains("demo"));
        assert!(s.lines().count() >= 3);
    }
}
