//! The performance-trajectory report: schema and validation for the
//! `BENCH_*.json` files emitted by the `perf_report` binary.
//!
//! Every perf-focused PR appends one `BENCH_<pr>.json` to the repo root so
//! the hot-path numbers form a reviewable trajectory instead of folklore.
//! The schema (`opera-perf-trajectory/v1`, documented field by field in
//! `docs/PERFORMANCE.md`) is enforced by [`validate_report`], which both the
//! CI perf-smoke job and the `perf_report --validate` mode run against the
//! emitted file.

use crate::json::Json;

/// Schema identifier of the current trajectory format.
pub const PERF_SCHEMA: &str = "opera-perf-trajectory/v1";

/// Required numeric fields of one `phases[]` entry.
pub const PHASE_FIELDS: &[&str] = &[
    "nodes",
    "order",
    "basis_size",
    "dim",
    "assemble_seconds",
    "prepare_seconds",
    "steps",
    "step_seconds_total",
    "seconds_per_step",
];

/// Required numeric fields of one `galerkin_multi_rhs[]` entry.
pub const MULTI_RHS_FIELDS: &[&str] = &[
    "nodes",
    "columns",
    "steps",
    "per_column_seconds",
    "panel_seconds",
    "speedup",
];

/// Required numeric fields of one `orderings[]` entry (plus the string
/// fields `matrix` and `ordering`).
pub const ORDERING_FIELDS: &[&str] = &[
    "n",
    "nnz_l",
    "analyze_seconds",
    "numeric_seconds",
    "solve_milliseconds",
];

/// Required numeric fields of one `threads[]` entry.
pub const THREAD_FIELDS: &[&str] = &["threads", "mc_seconds", "batch_seconds", "stat_checksum"];

/// Required numeric fields of one `adaptive[]` entry. Trajectory files
/// written before PR 9 predate the section and may omit it; points from
/// PR 9 on must carry it, and every entry must hold the full
/// fixed-vs-adaptive comparison: step counts, runtimes, the controller's
/// rejection count, and the factorisation bookkeeping proving the shared
/// symbolic analysis.
pub const ADAPTIVE_FIELDS: &[&str] = &[
    "nodes",
    "order",
    "fixed_steps",
    "fixed_seconds",
    "adaptive_steps_accepted",
    "adaptive_steps_rejected",
    "adaptive_seconds",
    "refactorizations",
    "symbolic_analyses",
    "step_ratio",
];

/// Required numeric fields of one `simd[]` entry (plus the string fields
/// `kernel` and `backend`). Trajectory files written before PR 10 predate
/// the runtime-dispatched vector kernels and may omit the section; points
/// from PR 10 on must carry it together with the top-level
/// `simd_backend_detected` string, and every entry must hold the
/// scalar-vs-SIMD comparison of one kernel.
pub const SIMD_FIELDS: &[&str] = &["scalar_seconds", "simd_seconds", "speedup"];

fn require_num(obj: &Json, key: &str, context: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{context}: missing or non-numeric field {key:?}"))
}

fn require_str<'j>(obj: &'j Json, key: &str, context: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{context}: missing or non-string field {key:?}"))
}

fn require_section<'j>(report: &'j Json, key: &str) -> Result<&'j [Json], String> {
    report
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing or non-array section {key:?}"))
}

/// Validates a parsed trajectory report against the
/// `opera-perf-trajectory/v1` schema.
///
/// # Errors
///
/// Returns the first schema violation as a human-readable message.
pub fn validate_report(report: &Json) -> Result<(), String> {
    let schema = require_str(report, "schema", "report")?;
    if schema != PERF_SCHEMA {
        return Err(format!("schema is {schema:?}, expected {PERF_SCHEMA:?}"));
    }
    let pr = require_num(report, "pr", "report")?;
    require_num(report, "scale", "report")?;
    let threads_available = require_num(report, "threads_available", "report")?;
    require_str(report, "default_ordering", "report")?;
    let allocations = require_num(report, "steady_state_step_allocations", "report")?;
    if allocations != 0.0 {
        return Err(format!(
            "steady_state_step_allocations is {allocations}: the transient hot loop \
             must perform zero steady-state allocations per step"
        ));
    }

    for (section, fields, min_len) in [
        ("phases", PHASE_FIELDS, 1),
        ("galerkin_multi_rhs", MULTI_RHS_FIELDS, 1),
        ("orderings", ORDERING_FIELDS, 2),
        ("threads", THREAD_FIELDS, 1),
    ] {
        let entries = require_section(report, section)?;
        if entries.len() < min_len {
            return Err(format!(
                "section {section:?} has {} entries, expected at least {min_len}",
                entries.len()
            ));
        }
        for (i, entry) in entries.iter().enumerate() {
            let context = format!("{section}[{i}]");
            for field in fields {
                require_num(entry, field, &context)?;
            }
            if section == "orderings" {
                require_str(entry, "matrix", &context)?;
                require_str(entry, "ordering", &context)?;
            }
        }
    }

    // Trajectory points written before PR 9 predate the adaptive phase, so
    // the section is optional for them; from PR 9 on `perf_report` always
    // emits it and the schema holds every emitter to that. When present it
    // must be a non-empty array of complete entries, each proving the
    // one-symbolic-analysis contract.
    if report.get("adaptive").is_none() && pr >= 9.0 {
        return Err(format!(
            "section \"adaptive\" is missing: trajectory points from PR 9 on must \
             record the adaptive-vs-fixed phase (this point is PR {pr})"
        ));
    }
    if let Some(section) = report.get("adaptive") {
        let entries = section
            .as_arr()
            .ok_or_else(|| "section \"adaptive\" must be an array".to_string())?;
        if entries.is_empty() {
            return Err("section \"adaptive\" is present but empty".to_string());
        }
        for (i, entry) in entries.iter().enumerate() {
            let context = format!("adaptive[{i}]");
            for field in ADAPTIVE_FIELDS {
                require_num(entry, field, &context)?;
            }
            let analyses = require_num(entry, "symbolic_analyses", &context)?;
            if analyses != 1.0 {
                return Err(format!(
                    "{context}: symbolic_analyses is {analyses}, expected exactly 1 \
                     (step-size changes must reuse the symbolic analysis)"
                ));
            }
        }
    }

    // Trajectory points written before PR 10 predate the SIMD kernels, so
    // the section is optional for them; from PR 10 on `perf_report` always
    // emits it (plus the detected-backend field) and the schema holds every
    // emitter to that.
    if pr >= 10.0 {
        if report.get("simd").is_none() {
            return Err(format!(
                "section \"simd\" is missing: trajectory points from PR 10 on must \
                 record the scalar-vs-SIMD kernel comparison (this point is PR {pr})"
            ));
        }
        require_str(report, "simd_backend_detected", "report")?;
    }
    if let Some(section) = report.get("simd") {
        let entries = section
            .as_arr()
            .ok_or_else(|| "section \"simd\" must be an array".to_string())?;
        if entries.is_empty() {
            return Err("section \"simd\" is present but empty".to_string());
        }
        for (i, entry) in entries.iter().enumerate() {
            let context = format!("simd[{i}]");
            require_str(entry, "kernel", &context)?;
            require_str(entry, "backend", &context)?;
            for field in SIMD_FIELDS {
                require_num(entry, field, &context)?;
            }
        }
    }

    // The thread sweep must prove statistics are thread-count invariant:
    // every entry carries a checksum folded from the solution statistics and
    // all checksums must be bit-identical. Entries asking for more workers
    // than the machine has cannot report honest scaling numbers, so they
    // must declare themselves `degraded` — their checksums still count
    // towards the invariance proof, their timings do not count as speedups.
    let threads = require_section(report, "threads")?;
    let reference = require_num(&threads[0], "stat_checksum", "threads[0]")?;
    for (i, entry) in threads.iter().enumerate() {
        let checksum = require_num(entry, "stat_checksum", "threads")?;
        if checksum.to_bits() != reference.to_bits() {
            return Err(format!(
                "threads[{i}] stat_checksum {checksum} differs from threads[0] \
                 {reference}: statistics must be bit-identical for every thread count"
            ));
        }
        let requested = require_num(entry, "threads", "threads")?;
        if requested > threads_available && entry.get("degraded") != Some(&Json::Bool(true)) {
            return Err(format!(
                "threads[{i}] requests {requested} workers but only \
                 {threads_available} are available: oversubscribed entries must \
                 carry \"degraded\": true"
            ));
        }
    }
    Ok(())
}

/// Parses and validates a trajectory document in one step.
///
/// # Errors
///
/// Returns parse errors and schema violations as human-readable messages.
pub fn validate_text(text: &str) -> Result<(), String> {
    validate_report(&crate::json::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fields: &[&str]) -> Json {
        let mut obj: Vec<(String, Json)> = fields
            .iter()
            .map(|f| (f.to_string(), Json::Num(1.0)))
            .collect();
        obj.push(("matrix".to_string(), Json::str("paper_grid")));
        obj.push(("ordering".to_string(), Json::str("rcm")));
        obj.push(("kernel".to_string(), Json::str("panel_transient_solve")));
        obj.push(("backend".to_string(), Json::str("avx512")));
        Json::Obj(obj)
    }

    fn minimal_report() -> Json {
        Json::Obj(vec![
            ("schema".to_string(), Json::str(PERF_SCHEMA)),
            ("pr".to_string(), Json::Num(5.0)),
            ("scale".to_string(), Json::Num(1.0)),
            ("threads_available".to_string(), Json::Num(8.0)),
            ("default_ordering".to_string(), Json::str("amd")),
            ("steady_state_step_allocations".to_string(), Json::Num(0.0)),
            ("phases".to_string(), Json::Arr(vec![entry(PHASE_FIELDS)])),
            (
                "galerkin_multi_rhs".to_string(),
                Json::Arr(vec![entry(MULTI_RHS_FIELDS)]),
            ),
            (
                "orderings".to_string(),
                Json::Arr(vec![entry(ORDERING_FIELDS), entry(ORDERING_FIELDS)]),
            ),
            ("threads".to_string(), Json::Arr(vec![entry(THREAD_FIELDS)])),
        ])
    }

    #[test]
    fn minimal_report_validates_and_round_trips() {
        let report = minimal_report();
        validate_report(&report).unwrap();
        validate_text(&report.to_pretty()).unwrap();
    }

    #[test]
    fn schema_violations_are_reported() {
        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            entries[0].1 = Json::str("bogus/v0");
        }
        assert!(validate_report(&report).unwrap_err().contains("schema"));

        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            entries.retain(|(k, _)| k != "phases");
        }
        assert!(validate_report(&report).unwrap_err().contains("phases"));

        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            for (k, v) in entries.iter_mut() {
                if k == "steady_state_step_allocations" {
                    *v = Json::Num(3.0);
                }
            }
        }
        assert!(validate_report(&report)
            .unwrap_err()
            .contains("zero steady-state allocations"));

        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            entries.retain(|(k, _)| k != "default_ordering");
        }
        assert!(validate_report(&report)
            .unwrap_err()
            .contains("default_ordering"));
    }

    #[test]
    fn adaptive_section_is_optional_but_validated_when_present() {
        // Absent: fine for pre-PR-9 trajectory points (the minimal report
        // is PR 5) ...
        validate_report(&minimal_report()).unwrap();

        // ... but points from PR 9 on must record the adaptive phase.
        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            for (k, v) in entries.iter_mut() {
                if k == "pr" {
                    *v = Json::Num(9.0);
                }
            }
        }
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("adaptive"), "unexpected error: {err}");

        let with_adaptive = |mutate: fn(&mut Vec<(String, Json)>)| {
            let mut report = minimal_report();
            if let Json::Obj(entries) = &mut report {
                let mut entry = entry(ADAPTIVE_FIELDS);
                if let Json::Obj(fields) = &mut entry {
                    mutate(fields);
                }
                entries.push(("adaptive".to_string(), Json::Arr(vec![entry])));
            }
            report
        };

        // Complete entry with one symbolic analysis: fine.
        validate_report(&with_adaptive(|_| {})).unwrap();

        // A missing field is rejected.
        let err = validate_report(&with_adaptive(|fields| {
            fields.retain(|(k, _)| k != "step_ratio");
        }))
        .unwrap_err();
        assert!(err.contains("step_ratio"), "unexpected error: {err}");

        // More than one symbolic analysis breaks the reuse contract.
        let err = validate_report(&with_adaptive(|fields| {
            for (k, v) in fields.iter_mut() {
                if k == "symbolic_analyses" {
                    *v = Json::Num(2.0);
                }
            }
        }))
        .unwrap_err();
        assert!(err.contains("symbolic_analyses"), "unexpected error: {err}");

        // Present-but-empty is a schema violation, not a silent pass.
        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            entries.push(("adaptive".to_string(), Json::Arr(vec![])));
        }
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("empty"), "unexpected error: {err}");
    }

    #[test]
    fn simd_section_is_required_from_pr_10_and_validated_when_present() {
        // Absent: fine for pre-PR-10 trajectory points (the minimal report
        // is PR 5) ...
        validate_report(&minimal_report()).unwrap();

        // ... but points from PR 10 on must record the kernel comparison.
        // (PR 10 also requires the adaptive section, so the helper carries
        // a valid one.)
        let at_pr_10 = |extra: Vec<(String, Json)>| {
            let mut report = minimal_report();
            if let Json::Obj(entries) = &mut report {
                for (k, v) in entries.iter_mut() {
                    if k == "pr" {
                        *v = Json::Num(10.0);
                    }
                }
                entries.push((
                    "adaptive".to_string(),
                    Json::Arr(vec![entry(ADAPTIVE_FIELDS)]),
                ));
                entries.extend(extra);
            }
            report
        };
        let err = validate_report(&at_pr_10(vec![])).unwrap_err();
        assert!(err.contains("simd"), "unexpected error: {err}");

        // The section alone is not enough: the detected backend must be
        // recorded too.
        let err = validate_report(&at_pr_10(vec![(
            "simd".to_string(),
            Json::Arr(vec![entry(SIMD_FIELDS)]),
        )]))
        .unwrap_err();
        assert!(
            err.contains("simd_backend_detected"),
            "unexpected error: {err}"
        );

        // A complete point validates.
        let complete = at_pr_10(vec![
            ("simd".to_string(), Json::Arr(vec![entry(SIMD_FIELDS)])),
            ("simd_backend_detected".to_string(), Json::str("avx512")),
        ]);
        validate_report(&complete).unwrap();

        // A missing per-entry field is rejected.
        let mut incomplete = entry(SIMD_FIELDS);
        if let Json::Obj(fields) = &mut incomplete {
            fields.retain(|(k, _)| k != "speedup");
        }
        let err = validate_report(&at_pr_10(vec![
            ("simd".to_string(), Json::Arr(vec![incomplete])),
            ("simd_backend_detected".to_string(), Json::str("avx512")),
        ]))
        .unwrap_err();
        assert!(err.contains("speedup"), "unexpected error: {err}");

        // Present-but-empty is a schema violation, not a silent pass.
        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            entries.push(("simd".to_string(), Json::Arr(vec![])));
        }
        let err = validate_report(&report).unwrap_err();
        assert!(err.contains("empty"), "unexpected error: {err}");
    }

    #[test]
    fn oversubscribed_thread_entries_must_be_marked_degraded() {
        // threads_available is 8 in the minimal report; an entry asking for
        // 16 workers is rejected until it carries `degraded: true`.
        let oversubscribed = |degraded: Option<Json>| {
            let mut report = minimal_report();
            if let Json::Obj(entries) = &mut report {
                for (k, v) in entries.iter_mut() {
                    if k == "threads" {
                        let mut entry = entry(THREAD_FIELDS);
                        if let Json::Obj(fields) = &mut entry {
                            for (fk, fv) in fields.iter_mut() {
                                if fk == "threads" {
                                    *fv = Json::Num(16.0);
                                }
                            }
                            if let Some(flag) = degraded.clone() {
                                fields.push(("degraded".to_string(), flag));
                            }
                        }
                        *v = Json::Arr(vec![entry]);
                    }
                }
            }
            report
        };
        let err = validate_report(&oversubscribed(None)).unwrap_err();
        assert!(err.contains("degraded"), "unexpected error: {err}");
        let err = validate_report(&oversubscribed(Some(Json::Bool(false)))).unwrap_err();
        assert!(err.contains("degraded"), "unexpected error: {err}");
        validate_report(&oversubscribed(Some(Json::Bool(true)))).unwrap();
    }

    #[test]
    fn thread_checksum_mismatches_are_rejected() {
        let mut report = minimal_report();
        if let Json::Obj(entries) = &mut report {
            for (k, v) in entries.iter_mut() {
                if k == "threads" {
                    let mut second = entry(THREAD_FIELDS);
                    if let Json::Obj(fields) = &mut second {
                        for (fk, fv) in fields.iter_mut() {
                            if fk == "stat_checksum" {
                                *fv = Json::Num(2.0);
                            }
                        }
                    }
                    *v = Json::Arr(vec![entry(THREAD_FIELDS), second]);
                }
            }
        }
        assert!(validate_report(&report)
            .unwrap_err()
            .contains("bit-identical"));
    }
}
