//! Guards the committed performance trajectory: every `BENCH_*.json` at the
//! repo root must parse and validate against the current schema, and the
//! PR-5 point must carry the panel-speedup measurement its acceptance
//! criterion rests on.

use opera_bench::json;
use opera_bench::perf::validate_text;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_trajectory_points_validate() {
    let mut found = 0;
    for entry in std::fs::read_dir(repo_root()).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        validate_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    assert!(found >= 1, "no BENCH_*.json trajectory points at repo root");
}

#[test]
fn bench_5_records_the_panel_speedup_at_paper_scale() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_5.json")).unwrap();
    let report = json::parse(&text).unwrap();
    assert_eq!(
        report.get("scale").and_then(json::Json::as_num),
        Some(1.0),
        "the committed BENCH_5.json must be a paper-scale measurement"
    );
    let multi_rhs = report
        .get("galerkin_multi_rhs")
        .and_then(json::Json::as_arr)
        .unwrap();
    let best = multi_rhs
        .iter()
        .filter_map(|e| e.get("speedup").and_then(json::Json::as_num))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 2.0,
        "panel speedup {best} is below the 2x acceptance threshold"
    );
}
