//! Guards the committed performance trajectory: every `BENCH_*.json` at the
//! repo root must parse and validate against the current schema, the PR-5
//! point must carry the panel-speedup measurement its acceptance criterion
//! rests on, the PR-6 point must show AMD + supernodal factorisation
//! breaking the order-2 factorisation wall, and the PR-9 point must record
//! the adaptive-vs-fixed phase with its step-count advantage and the
//! one-symbolic-analysis refactorisation contract, and the PR-10 point must
//! record the SIMD panel-solve speedup on the best detected backend.

use opera_bench::json;
use opera_bench::perf::validate_text;

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn committed_trajectory_points_validate() {
    let mut found = 0;
    for entry in std::fs::read_dir(repo_root()).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        validate_text(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    assert!(found >= 1, "no BENCH_*.json trajectory points at repo root");
}

#[test]
fn bench_5_records_the_panel_speedup_at_paper_scale() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_5.json")).unwrap();
    let report = json::parse(&text).unwrap();
    assert_eq!(
        report.get("scale").and_then(json::Json::as_num),
        Some(1.0),
        "the committed BENCH_5.json must be a paper-scale measurement"
    );
    let multi_rhs = report
        .get("galerkin_multi_rhs")
        .and_then(json::Json::as_arr)
        .unwrap();
    let best = multi_rhs
        .iter()
        .filter_map(|e| e.get("speedup").and_then(json::Json::as_num))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 2.0,
        "panel speedup {best} is below the 2x acceptance threshold"
    );
}

#[test]
fn bench_6_breaks_the_order_2_factorization_wall() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_6.json")).unwrap();
    let report = json::parse(&text).unwrap();
    assert_eq!(
        report.get("scale").and_then(json::Json::as_num),
        Some(1.0),
        "the committed BENCH_6.json must be a paper-scale measurement"
    );
    // The measured default must be the AMD ordering this PR flips to.
    assert_eq!(
        report.get("default_ordering").and_then(json::Json::as_str),
        Some("amd"),
        "BENCH_6.json must record AMD as the measured default ordering"
    );
    // Acceptance: the order-2 augmented companion (115k+ unknowns) must
    // factorise in under 5 seconds — BENCH_5 recorded 34.3s.
    let phases = report.get("phases").and_then(json::Json::as_arr).unwrap();
    let order2 = phases
        .iter()
        .find(|p| p.get("order").and_then(json::Json::as_num) == Some(2.0))
        .expect("BENCH_6.json must include the order-2 phase");
    let prepare = order2
        .get("prepare_seconds")
        .and_then(json::Json::as_num)
        .unwrap();
    assert!(
        prepare < 5.0,
        "order-2 prepare took {prepare}s, the factorisation wall is not broken"
    );
    // AMD must beat RCM on fill for the paper-grid companion.
    let orderings = report
        .get("orderings")
        .and_then(json::Json::as_arr)
        .unwrap();
    let nnz_of = |ordering: &str| -> f64 {
        orderings
            .iter()
            .find(|e| {
                e.get("matrix").and_then(json::Json::as_str) == Some("paper_grid_companion")
                    && e.get("ordering").and_then(json::Json::as_str) == Some(ordering)
            })
            .and_then(|e| e.get("nnz_l").and_then(json::Json::as_num))
            .unwrap_or_else(|| panic!("missing paper_grid_companion/{ordering} entry"))
    };
    assert!(
        nnz_of("amd") < nnz_of("rcm"),
        "AMD fill must be below RCM fill on the paper-grid companion"
    );
}

#[test]
fn bench_9_records_the_adaptive_step_advantage() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_9.json")).unwrap();
    let report = json::parse(&text).unwrap();
    assert_eq!(
        report.get("scale").and_then(json::Json::as_num),
        Some(1.0),
        "the committed BENCH_9.json must be a paper-scale measurement"
    );
    let adaptive = report
        .get("adaptive")
        .and_then(json::Json::as_arr)
        .expect("BENCH_9.json must carry the adaptive-vs-fixed phase");
    // The order-2 augmented transient (the paper's headline configuration)
    // must be measured, and every entry must prove the refactor-only
    // contract: exactly one symbolic analysis regardless of how many step
    // sizes the controller visited.
    assert!(
        adaptive
            .iter()
            .any(|e| e.get("order").and_then(json::Json::as_num) == Some(2.0)),
        "BENCH_9.json must include the order-2 adaptive entry"
    );
    for entry in adaptive {
        assert_eq!(
            entry.get("symbolic_analyses").and_then(json::Json::as_num),
            Some(1.0),
            "step-size changes must reuse the one symbolic analysis"
        );
    }
    // Acceptance: the controller must beat the deck's fixed `.tran` grid on
    // accepted step count at its tighter tolerance-controlled accuracy. (The
    // >=3x bar at *matched* error budgets is the golden-waveform suite's —
    // `tests/golden_waveforms.rs` compares against fine reference grids; the
    // deck grid here is already coarse, so the honest ratio is smaller.)
    let best = adaptive
        .iter()
        .filter_map(|e| e.get("step_ratio").and_then(json::Json::as_num))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best >= 1.5,
        "adaptive step ratio {best} does not beat the fixed deck grid"
    );
}

#[test]
fn bench_10_records_the_panel_solve_simd_speedup() {
    let text = std::fs::read_to_string(repo_root().join("BENCH_10.json")).unwrap();
    let report = json::parse(&text).unwrap();
    assert_eq!(
        report.get("scale").and_then(json::Json::as_num),
        Some(1.0),
        "the committed BENCH_10.json must be a paper-scale measurement"
    );
    // The measurement must name the backend it ran on (what `detect_best`
    // found on the benchmark machine).
    let backend = report
        .get("simd_backend_detected")
        .and_then(json::Json::as_str)
        .expect("BENCH_10.json must record the detected SIMD backend");
    let simd = report
        .get("simd")
        .and_then(json::Json::as_arr)
        .expect("BENCH_10.json must carry the scalar-vs-SIMD kernel phase");
    // Acceptance: the headline 8-RHS panel transient solve must run at
    // least 1.5x faster on the best detected backend than on the scalar
    // reference (the two paths are verified bit-identical before the
    // emitter reports the speedup).
    let headline = simd
        .iter()
        .find(|e| e.get("kernel").and_then(json::Json::as_str) == Some("panel_transient_solve"))
        .expect("BENCH_10.json must include the panel_transient_solve entry");
    assert_eq!(
        headline.get("backend").and_then(json::Json::as_str),
        Some(backend),
        "the headline entry must be measured on the detected backend"
    );
    let speedup = headline
        .get("speedup")
        .and_then(json::Json::as_num)
        .unwrap();
    assert!(
        speedup >= 1.5,
        "panel-solve SIMD speedup {speedup} on {backend} is below the 1.5x \
         acceptance threshold"
    );
}
