//! Property-based tests of the power-grid model and the synthetic generator.

use proptest::prelude::*;

use opera_grid::{BranchKind, CapacitorClass, GridSpec, PowerGrid, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any generated grid is connected to a pad, has an SPD-stampable
    /// conductance matrix and non-negative DC voltage drops bounded by VDD.
    #[test]
    fn generated_grids_are_well_posed(target in 60usize..400, seed in 0u64..500) {
        let grid = GridSpec::small_test(target).with_seed(seed).build().unwrap();
        grid.validate_connectivity().unwrap();
        let g = grid.conductance_matrix();
        prop_assert!(g.is_symmetric(1e-9 * g.frobenius_norm()));
        let u = grid.excitation(0.0);
        let v = opera_sparse::cholesky_solve(&g, &u).unwrap();
        for &vi in &v {
            prop_assert!(vi <= grid.vdd() + 1e-9);
            prop_assert!(vi >= 0.0);
        }
    }

    /// The capacitance class split respects the specified fractions for any
    /// seed and size.
    #[test]
    fn capacitance_fractions_hold(target in 60usize..300, seed in 0u64..200) {
        let spec = GridSpec::small_test(target).with_seed(seed);
        let grid = spec.build().unwrap();
        let total = grid.total_capacitance();
        prop_assert!(total > 0.0);
        let gate = grid.capacitance_of_class(CapacitorClass::Gate);
        prop_assert!((gate / total - spec.gate_capacitance_fraction).abs() < 1e-6);
    }

    /// Waveform interpolation stays within the envelope of its breakpoints
    /// and is exact at the breakpoints.
    #[test]
    fn waveform_interpolation_is_bounded(
        mut pts in proptest::collection::vec((0.0f64..10.0, -5.0f64..5.0), 2..12),
        query in 0.0f64..10.0,
    ) {
        // De-duplicate times so breakpoints are unambiguous.
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-9);
        prop_assume!(pts.len() >= 2);
        let wave = Waveform::from_points(pts.clone());
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let v = wave.value_at(query);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        for &(t, val) in &pts {
            prop_assert!((wave.value_at(t) - val).abs() < 1e-9);
        }
        prop_assert!((wave.peak() - hi).abs() < 1e-12);
    }

    /// Conductance stamping is linear in the per-branch weights:
    /// stamping with weight w equals the weighted sum of individual stamps.
    #[test]
    fn weighted_stamping_is_linear(w_wire in 0.0f64..2.0, w_pad in 0.0f64..2.0) {
        let grid = GridSpec::small_test(120).with_seed(3).build().unwrap();
        let full = grid.conductance_matrix_weighted(|b| match b.kind {
            BranchKind::MetalWire | BranchKind::Via => w_wire,
            BranchKind::PackagePad => w_pad,
        });
        let wires = grid.conductance_matrix_weighted(|b| match b.kind {
            BranchKind::MetalWire | BranchKind::Via => 1.0,
            BranchKind::PackagePad => 0.0,
        });
        let pads = grid.conductance_matrix_weighted(|b| match b.kind {
            BranchKind::MetalWire | BranchKind::Via => 0.0,
            BranchKind::PackagePad => 1.0,
        });
        let combo = wires.scaled(w_wire).add_scaled(&pads.scaled(w_pad), 1.0).unwrap();
        let diff = full.add_scaled(&combo, -1.0).unwrap();
        prop_assert!(diff.frobenius_norm() < 1e-9 * full.frobenius_norm().max(1.0));
    }

    /// Scaling the currents scales the drain part of the excitation and
    /// leaves the pad part untouched.
    #[test]
    fn current_scaling_only_affects_drains(alpha in 0.1f64..5.0, t in 0.0f64..2.0e-9) {
        let mut grid = GridSpec::small_test(100).with_seed(8).build().unwrap();
        let pads = grid.pad_injection_vector();
        let before = grid.excitation(t);
        grid.scale_currents(alpha);
        let after = grid.excitation(t);
        for i in 0..grid.node_count() {
            let drain_before = pads[i] - before[i];
            let drain_after = pads[i] - after[i];
            prop_assert!((drain_after - alpha * drain_before).abs() < 1e-12 + 1e-9 * drain_before.abs());
        }
    }
}

/// A hand-built grid exercising every element type, kept outside proptest.
#[test]
fn manual_grid_construction_round_trip() {
    let mut grid = PowerGrid::new(4, 1.0).unwrap();
    grid.add_pad(0, 20.0).unwrap();
    grid.add_wire(0, 1, 10.0, BranchKind::MetalWire).unwrap();
    grid.add_wire(1, 2, 10.0, BranchKind::Via).unwrap();
    grid.add_wire(2, 3, 10.0, BranchKind::MetalWire).unwrap();
    grid.add_capacitor(3, 1e-15, CapacitorClass::Gate).unwrap();
    grid.add_current_source(3, Waveform::constant(1e-3), 0)
        .unwrap();
    grid.validate_connectivity().unwrap();
    assert_eq!(grid.branches().len(), 4);
    assert_eq!(grid.capacitors().len(), 1);
    assert_eq!(grid.sources().len(), 1);
    let g = grid.conductance_matrix();
    let v = opera_sparse::cholesky_solve(&g, &grid.excitation(0.0)).unwrap();
    // 1 mA through 0.05 + 0.1 + 0.1 + 0.1 Ω of series resistance.
    let expected_drop = 1e-3 * (0.05 + 0.3);
    assert!((1.0 - v[3] - expected_drop).abs() < 1e-9);
}
