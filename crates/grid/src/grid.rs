//! Circuit-level power-grid model and MNA stamping.

use opera_sparse::{CsrMatrix, TripletMatrix};

use crate::{GridError, Result, Waveform};

/// Classification of a resistive branch — used by the variation models to
/// decide which branches are affected by which process parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// An on-chip metal stripe segment (width/thickness variation applies).
    MetalWire,
    /// A via between metal layers.
    Via,
    /// A package/C4 pad connection to the external VDD supply.
    PackagePad,
}

/// Classification of a grounded capacitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CapacitorClass {
    /// Gate capacitance of driven transistors — varies with `Leff`
    /// (about 40 % of the total grid capacitance in the paper's model).
    Gate,
    /// Source/drain diffusion capacitance — treated as fixed.
    Diffusion,
    /// Interconnect (wire-to-ground) capacitance — treated as fixed; the
    /// paper notes it is only ~5 % of the total.
    Interconnect,
}

/// A two-terminal conductance. `b == None` means the branch connects node `a`
/// to the external VDD supply (a package pad): the ideal source is folded
/// into the MNA formulation as a Norton equivalent, contributing `g` to the
/// diagonal and `g·VDD` to the excitation vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ResistiveBranch {
    /// Kind of physical structure this branch models.
    pub kind: BranchKind,
    /// First node.
    pub a: usize,
    /// Second node, or `None` for a connection to the VDD supply.
    pub b: Option<usize>,
    /// Branch conductance in siemens (must be positive).
    pub conductance: f64,
}

/// A grounded capacitor attached to a grid node.
#[derive(Debug, Clone, PartialEq)]
pub struct Capacitor {
    /// Node the capacitor is attached to.
    pub node: usize,
    /// Physical origin of the capacitance.
    pub class: CapacitorClass,
    /// Capacitance in farads (must be non-negative).
    pub capacitance: f64,
}

/// A transient drain-current source drawing current from a grid node to
/// ground (a functional block's switching current).
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    /// Node the block draws current from.
    pub node: usize,
    /// Current waveform in amperes.
    pub waveform: Waveform,
    /// Identifier of the functional block this source belongs to (used by
    /// intra-die variation models that assign different random variables to
    /// different chip regions).
    pub block: usize,
}

/// An RC model of an on-chip power distribution grid.
///
/// See the crate-level documentation for the modelling assumptions. All
/// matrices are stamped over the grid nodes only (the VDD net is eliminated
/// via Norton equivalents of the pad connections), so the conductance matrix
/// is symmetric positive definite as long as every node has a resistive path
/// to some pad.
#[derive(Debug, Clone)]
pub struct PowerGrid {
    node_count: usize,
    vdd: f64,
    branches: Vec<ResistiveBranch>,
    capacitors: Vec<Capacitor>,
    sources: Vec<CurrentSource>,
}

impl PowerGrid {
    /// Creates an empty grid with `node_count` nodes and the given supply
    /// voltage.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidSpec`] if `node_count == 0` or `vdd <= 0`.
    pub fn new(node_count: usize, vdd: f64) -> Result<Self> {
        if node_count == 0 {
            return Err(GridError::InvalidSpec {
                reason: "a grid needs at least one node".to_string(),
            });
        }
        if crate::is_not_positive(vdd) {
            return Err(GridError::InvalidSpec {
                reason: format!("supply voltage must be positive, got {vdd}"),
            });
        }
        Ok(PowerGrid {
            node_count,
            vdd,
            branches: Vec::new(),
            capacitors: Vec::new(),
            sources: Vec::new(),
        })
    }

    /// Number of grid nodes (unknown voltages).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// All resistive branches.
    pub fn branches(&self) -> &[ResistiveBranch] {
        &self.branches
    }

    /// All grounded capacitors.
    pub fn capacitors(&self) -> &[Capacitor] {
        &self.capacitors
    }

    /// All drain-current sources.
    pub fn sources(&self) -> &[CurrentSource] {
        &self.sources
    }

    /// Nodes that have a pad (supply) connection.
    pub fn pad_nodes(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self
            .branches
            .iter()
            .filter(|b| b.b.is_none())
            .map(|b| b.a)
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    fn check_node(&self, node: usize) -> Result<()> {
        if node >= self.node_count {
            return Err(GridError::UnknownNode {
                node,
                node_count: self.node_count,
            });
        }
        Ok(())
    }

    /// Adds a metal wire or via between two distinct nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] for out-of-range nodes and
    /// [`GridError::InvalidElement`] for non-positive conductance or `a == b`.
    pub fn add_wire(
        &mut self,
        a: usize,
        b: usize,
        conductance: f64,
        kind: BranchKind,
    ) -> Result<()> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(GridError::InvalidElement {
                reason: format!("wire endpoints must differ (both are node {a})"),
            });
        }
        if conductance <= 0.0 || !conductance.is_finite() {
            return Err(GridError::InvalidElement {
                reason: format!("wire conductance must be positive and finite, got {conductance}"),
            });
        }
        self.branches.push(ResistiveBranch {
            kind,
            a,
            b: Some(b),
            conductance,
        });
        Ok(())
    }

    /// Adds a package pad: a conductance from `node` to the external VDD
    /// supply.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] or [`GridError::InvalidElement`].
    pub fn add_pad(&mut self, node: usize, conductance: f64) -> Result<()> {
        self.check_node(node)?;
        if conductance <= 0.0 || !conductance.is_finite() {
            return Err(GridError::InvalidElement {
                reason: format!("pad conductance must be positive and finite, got {conductance}"),
            });
        }
        self.branches.push(ResistiveBranch {
            kind: BranchKind::PackagePad,
            a: node,
            b: None,
            conductance,
        });
        Ok(())
    }

    /// Adds a grounded capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] or [`GridError::InvalidElement`].
    pub fn add_capacitor(
        &mut self,
        node: usize,
        capacitance: f64,
        class: CapacitorClass,
    ) -> Result<()> {
        self.check_node(node)?;
        if capacitance < 0.0 || !capacitance.is_finite() {
            return Err(GridError::InvalidElement {
                reason: format!("capacitance must be non-negative and finite, got {capacitance}"),
            });
        }
        self.capacitors.push(Capacitor {
            node,
            class,
            capacitance,
        });
        Ok(())
    }

    /// Adds a transient drain-current source belonging to functional block
    /// `block`.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::UnknownNode`] for an out-of-range node.
    pub fn add_current_source(
        &mut self,
        node: usize,
        waveform: Waveform,
        block: usize,
    ) -> Result<()> {
        self.check_node(node)?;
        self.sources.push(CurrentSource {
            node,
            waveform,
            block,
        });
        Ok(())
    }

    /// Scales every current waveform by `alpha` (used to calibrate the peak
    /// IR drop to a fraction of VDD, as the paper does).
    pub fn scale_currents(&mut self, alpha: f64) {
        for s in &mut self.sources {
            s.waveform = s.waveform.scaled(alpha);
        }
    }

    /// Nominal conductance matrix `G` (all branch weights 1).
    pub fn conductance_matrix(&self) -> CsrMatrix {
        self.conductance_matrix_weighted(|_| 1.0)
    }

    /// Conductance matrix with a per-branch multiplier: each branch is
    /// stamped with `weight(branch) · branch.conductance`. Used to build the
    /// perturbation matrices `G_g` (only metal wires affected by `ξ_G`) and
    /// sensitivity/ablation variants.
    pub fn conductance_matrix_weighted(
        &self,
        weight: impl Fn(&ResistiveBranch) -> f64,
    ) -> CsrMatrix {
        let mut t =
            TripletMatrix::with_capacity(self.node_count, self.node_count, 4 * self.branches.len());
        for branch in &self.branches {
            let g = branch.conductance * weight(branch);
            if g == 0.0 {
                continue;
            }
            match branch.b {
                Some(b) => t.add_symmetric_pair(branch.a, b, g),
                None => t.add_to_ground(branch.a, g),
            }
        }
        t.to_csr()
    }

    /// Nominal (diagonal) capacitance matrix `C`.
    pub fn capacitance_matrix(&self) -> CsrMatrix {
        self.capacitance_matrix_weighted(|_| 1.0)
    }

    /// Capacitance matrix with a per-capacitor multiplier; used to build the
    /// `C_c` perturbation matrix (only gate capacitance varies with `Leff`).
    pub fn capacitance_matrix_weighted(&self, weight: impl Fn(&Capacitor) -> f64) -> CsrMatrix {
        let mut diag = vec![0.0; self.node_count];
        for cap in &self.capacitors {
            diag[cap.node] += cap.capacitance * weight(cap);
        }
        CsrMatrix::from_diagonal(&diag)
    }

    /// The constant part of the excitation coming from the pad connections:
    /// `u_pad[n] = Σ_{pads at n} g_pad · VDD`.
    pub fn pad_injection_vector(&self) -> Vec<f64> {
        self.pad_injection_weighted(|_| 1.0)
    }

    /// Pad injection with a per-branch multiplier (pads whose conductance
    /// varies also perturb the excitation, paper Eq. 13).
    pub fn pad_injection_weighted(&self, weight: impl Fn(&ResistiveBranch) -> f64) -> Vec<f64> {
        let mut u = vec![0.0; self.node_count];
        for branch in &self.branches {
            if branch.b.is_none() {
                u[branch.a] += branch.conductance * weight(branch) * self.vdd;
            }
        }
        u
    }

    /// The drain-current vector `i(t)` (amperes drawn from each node) at time
    /// `t`.
    pub fn drain_current_vector(&self, t: f64) -> Vec<f64> {
        self.drain_current_vector_weighted(t, |_| 1.0)
    }

    /// Drain currents with a per-source multiplier (drain currents vary with
    /// `Leff`, leakage with `Vth`; the multiplier lets variation models scale
    /// individual blocks).
    pub fn drain_current_vector_weighted(
        &self,
        t: f64,
        weight: impl Fn(&CurrentSource) -> f64,
    ) -> Vec<f64> {
        let mut i = vec![0.0; self.node_count];
        for s in &self.sources {
            i[s.node] += s.waveform.value_at(t) * weight(s);
        }
        i
    }

    /// The full excitation vector `u(t) = u_pad − i(t)` of the MNA system
    /// `G·v + C·dv/dt = u(t)`.
    pub fn excitation(&self, t: f64) -> Vec<f64> {
        let mut u = self.pad_injection_vector();
        for s in &self.sources {
            u[s.node] -= s.waveform.value_at(t);
        }
        u
    }

    /// Total grid capacitance in farads.
    pub fn total_capacitance(&self) -> f64 {
        self.capacitors.iter().map(|c| c.capacitance).sum()
    }

    /// Total capacitance of one class in farads.
    pub fn capacitance_of_class(&self, class: CapacitorClass) -> f64 {
        self.capacitors
            .iter()
            .filter(|c| c.class == class)
            .map(|c| c.capacitance)
            .sum()
    }

    /// Sum of the peak currents of all sources (a pessimistic bound on the
    /// total instantaneous current).
    pub fn peak_total_current(&self) -> f64 {
        self.sources.iter().map(|s| s.waveform.peak()).sum()
    }

    /// Latest breakpoint over all source waveforms — a natural end time for
    /// transient analysis.
    pub fn waveform_end_time(&self) -> f64 {
        self.sources
            .iter()
            .map(|s| s.waveform.end_time())
            .fold(0.0, f64::max)
    }

    /// The lowest-indexed node with no resistive path to any pad, or `None`
    /// when the grid is fully pad-connected (which is what makes the
    /// conductance matrix positive definite). The netlist front end uses
    /// this to report unreachable nodes by *name*.
    pub fn first_unreached_node(&self) -> Option<usize> {
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); self.node_count];
        let mut reached = vec![false; self.node_count];
        let mut queue = std::collections::VecDeque::new();
        for branch in &self.branches {
            match branch.b {
                Some(b) => {
                    adjacency[branch.a].push(b);
                    adjacency[b].push(branch.a);
                }
                None => {
                    if !reached[branch.a] {
                        reached[branch.a] = true;
                        queue.push_back(branch.a);
                    }
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u] {
                if !reached[v] {
                    reached[v] = true;
                    queue.push_back(v);
                }
            }
        }
        reached.iter().position(|&r| !r)
    }

    /// Checks that every node has a resistive path to at least one pad, which
    /// is what makes the conductance matrix positive definite.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidSpec`] naming one unreachable node.
    pub fn validate_connectivity(&self) -> Result<()> {
        match self.first_unreached_node() {
            None => Ok(()),
            Some(node) => Err(GridError::InvalidSpec {
                reason: format!("node {node} has no resistive path to any pad"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-node chain: pad — n0 — n1 — n2, caps and one source on n2.
    fn small_grid() -> PowerGrid {
        let mut g = PowerGrid::new(3, 1.2).unwrap();
        g.add_pad(0, 10.0).unwrap();
        g.add_wire(0, 1, 5.0, BranchKind::MetalWire).unwrap();
        g.add_wire(1, 2, 5.0, BranchKind::MetalWire).unwrap();
        g.add_capacitor(1, 1.0e-15, CapacitorClass::Gate).unwrap();
        g.add_capacitor(2, 2.0e-15, CapacitorClass::Diffusion)
            .unwrap();
        g.add_current_source(2, Waveform::constant(1.0e-3), 0)
            .unwrap();
        g
    }

    #[test]
    fn conductance_matrix_is_spd_stamped() {
        let g = small_grid();
        let gm = g.conductance_matrix();
        assert_eq!(gm.nrows(), 3);
        assert!(gm.is_symmetric(0.0));
        assert_eq!(gm.get(0, 0), 15.0); // pad 10 + wire 5
        assert_eq!(gm.get(0, 1), -5.0);
        assert_eq!(gm.get(1, 1), 10.0);
        assert_eq!(gm.get(2, 2), 5.0);
    }

    #[test]
    fn weighted_conductance_selects_branch_kinds() {
        let g = small_grid();
        let wires_only = g.conductance_matrix_weighted(|b| {
            if b.kind == BranchKind::MetalWire {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(wires_only.get(0, 0), 5.0); // pad excluded
        assert_eq!(wires_only.get(0, 1), -5.0);
    }

    #[test]
    fn capacitance_matrix_is_diagonal_by_class() {
        let g = small_grid();
        let c = g.capacitance_matrix();
        assert_eq!(c.get(1, 1), 1.0e-15);
        assert_eq!(c.get(2, 2), 2.0e-15);
        assert_eq!(c.get(0, 0), 0.0);
        let gate_only = g.capacitance_matrix_weighted(|cap| {
            if cap.class == CapacitorClass::Gate {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(gate_only.get(2, 2), 0.0);
        assert_eq!(gate_only.get(1, 1), 1.0e-15);
        assert!((g.capacitance_of_class(CapacitorClass::Gate) - 1.0e-15).abs() < 1e-30);
        assert!((g.total_capacitance() - 3.0e-15).abs() < 1e-30);
    }

    #[test]
    fn excitation_combines_pads_and_drains() {
        let g = small_grid();
        let u = g.excitation(0.0);
        assert!((u[0] - 12.0).abs() < 1e-12); // 10 S × 1.2 V
        assert_eq!(u[1], 0.0);
        assert!((u[2] + 1.0e-3).abs() < 1e-15);
        assert_eq!(g.pad_nodes(), vec![0]);
        assert!((g.peak_total_current() - 1.0e-3).abs() < 1e-15);
    }

    #[test]
    fn dc_solution_matches_hand_computation() {
        // Solve G v = u at t = 0 and check the voltage drop at node 2:
        // current 1 mA flows through pad (0.1 Ω) + two 0.2 Ω wires.
        let g = small_grid();
        let gm = g.conductance_matrix();
        let u = g.excitation(0.0);
        let v = opera_sparse::cholesky_solve(&gm, &u).unwrap();
        let drop2 = g.vdd() - v[2];
        let expected = 1.0e-3 * (1.0 / 10.0 + 1.0 / 5.0 + 1.0 / 5.0);
        assert!((drop2 - expected).abs() < 1e-12);
    }

    #[test]
    fn validation_detects_floating_nodes() {
        let mut g = PowerGrid::new(3, 1.0).unwrap();
        g.add_pad(0, 1.0).unwrap();
        g.add_wire(0, 1, 1.0, BranchKind::MetalWire).unwrap();
        // Node 2 is floating.
        assert!(matches!(
            g.validate_connectivity(),
            Err(GridError::InvalidSpec { .. })
        ));
        g.add_wire(1, 2, 1.0, BranchKind::Via).unwrap();
        assert!(g.validate_connectivity().is_ok());
    }

    #[test]
    fn invalid_elements_are_rejected() {
        let mut g = PowerGrid::new(2, 1.0).unwrap();
        assert!(g.add_wire(0, 0, 1.0, BranchKind::MetalWire).is_err());
        assert!(g.add_wire(0, 5, 1.0, BranchKind::MetalWire).is_err());
        assert!(g.add_wire(0, 1, -1.0, BranchKind::MetalWire).is_err());
        assert!(g.add_pad(0, 0.0).is_err());
        assert!(g.add_capacitor(0, -1.0, CapacitorClass::Gate).is_err());
        assert!(g.add_current_source(9, Waveform::constant(0.0), 0).is_err());
        assert!(PowerGrid::new(0, 1.0).is_err());
        assert!(PowerGrid::new(5, 0.0).is_err());
    }

    #[test]
    fn scaling_currents_scales_excitation() {
        let mut g = small_grid();
        let before = g.excitation(0.0)[2];
        g.scale_currents(2.0);
        let after = g.excitation(0.0)[2];
        assert!((after - 2.0 * before).abs() < 1e-15);
    }
}
