//! RC power-grid modelling for stochastic IR-drop analysis.
//!
//! The OPERA paper analyses on-chip power distribution networks modelled as
//! RC meshes: metal stripes and vias are resistors, functional blocks are
//! transient drain-current sources in parallel with their non-switching load
//! capacitance, and the package connections are ideal VDD sources behind pad
//! resistances. This crate provides:
//!
//! * [`PowerGrid`] — the circuit-level model with conductance/capacitance
//!   stamping into [`opera_sparse`] matrices and time-dependent excitation
//!   vectors.
//! * [`Waveform`] — piecewise-linear transient current profiles (the paper
//!   obtains these from gate-level simulation; we synthesise clocked pulses).
//! * [`GridSpec`] / [`generator`] — a synthetic "industrial-like" mesh
//!   generator parameterised by node count, one of the two ways to obtain a
//!   grid (the other being the `opera-netlist` SPICE-deck front end; see
//!   DESIGN.md §5).
//! * [`NodeMap`] — the stable node-name ↔ node-index mapping that lets
//!   grids imported from netlists report real node names instead of raw
//!   indices.
//!
//! # Example
//!
//! ```
//! use opera_grid::{GridSpec, PowerGrid};
//!
//! # fn main() -> Result<(), opera_grid::GridError> {
//! let grid: PowerGrid = GridSpec::small_test(400).build()?;
//! assert!(grid.node_count() >= 380);
//! let g = grid.conductance_matrix();
//! assert!(g.is_symmetric(1e-9));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod grid;
mod names;
mod waveform;

pub mod generator;

pub use error::GridError;
pub use generator::{GridSpec, PAPER_GRID_NODE_COUNTS};
pub use grid::{BranchKind, CapacitorClass, CurrentSource, PowerGrid, ResistiveBranch};
pub use names::NodeMap;
pub use waveform::Waveform;

/// `true` unless the value is a strictly positive finite number — the
/// shared predicate behind every "must be positive" validation in this crate.
pub(crate) fn is_not_positive(value: f64) -> bool {
    value <= 0.0 || !value.is_finite()
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GridError>;
