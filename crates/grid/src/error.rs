//! Error type for power-grid construction and stamping.

use std::error::Error;
use std::fmt;

/// Errors produced while building or querying a power grid.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A grid specification is inconsistent (zero nodes, no pads, …).
    InvalidSpec {
        /// Explanation of the inconsistency.
        reason: String,
    },
    /// A node index referenced by a branch, capacitor or source is out of
    /// bounds.
    UnknownNode {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the grid.
        node_count: usize,
    },
    /// A circuit element has a non-physical value (negative conductance,
    /// negative capacitance, non-finite current, …).
    InvalidElement {
        /// Description of the element and value.
        reason: String,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::InvalidSpec { reason } => write!(f, "invalid grid specification: {reason}"),
            GridError::UnknownNode { node, node_count } => write!(
                f,
                "node index {node} out of bounds for a grid with {node_count} nodes"
            ),
            GridError::InvalidElement { reason } => write!(f, "invalid circuit element: {reason}"),
        }
    }
}

impl Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GridError::UnknownNode {
            node: 7,
            node_count: 5,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('5'));
        let e = GridError::InvalidSpec {
            reason: "no pads".to_string(),
        };
        assert!(e.to_string().contains("no pads"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GridError>();
    }
}
