//! Synthetic "industrial-like" power-grid generation.
//!
//! The paper evaluates OPERA on seven proprietary industrial grids with
//! 19,181 to 351,838 nodes. Those netlists are not available, so this module
//! generates synthetic grids with the same node counts and realistic
//! electrical characteristics (see DESIGN.md §5):
//!
//! * a regular 2-D mesh of metal stripes (different sheet resistance in the
//!   two routing directions),
//! * C4/package pads on a coarse regular array, each behind a pad resistance,
//! * functional blocks occupying rectangular regions, each drawing a
//!   clock-synchronous current pulse train with a block-specific phase and
//!   magnitude,
//! * per-node load capacitance split into gate (≈40 %), diffusion and
//!   interconnect contributions, matching the paper's capacitance model,
//! * drain currents calibrated so the peak nominal IR drop is a target
//!   fraction (default 8 %) of VDD, matching the paper's "< 10 % of VDD"
//!   condition.

use crate::is_not_positive;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use opera_sparse::{cg, CholeskyFactor};

use crate::{BranchKind, CapacitorClass, GridError, PowerGrid, Result, Waveform};

/// Node counts of the seven industrial grids of Table 1 in the paper.
pub const PAPER_GRID_NODE_COUNTS: [usize; 7] =
    [19_181, 25_813, 34_938, 49_262, 62_812, 91_729, 351_838];

/// Specification of a synthetic power grid.
///
/// # Example
///
/// ```
/// use opera_grid::GridSpec;
///
/// # fn main() -> Result<(), opera_grid::GridError> {
/// let grid = GridSpec::industrial(2_000).with_seed(7).build()?;
/// assert!(grid.node_count() >= 1_900 && grid.node_count() <= 2_100);
/// grid.validate_connectivity()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Desired number of grid nodes (the generator picks the closest
    /// `nx × ny` mesh).
    pub target_nodes: usize,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Conductance of one horizontal stripe segment in siemens.
    pub segment_conductance_x: f64,
    /// Conductance of one vertical stripe segment in siemens.
    pub segment_conductance_y: f64,
    /// Conductance of one pad (package + C4 bump) connection in siemens.
    pub pad_conductance: f64,
    /// Pad array pitch in mesh nodes (a pad every `pad_pitch` nodes in both
    /// directions).
    pub pad_pitch: usize,
    /// Number of functional blocks drawing current.
    pub block_count: usize,
    /// Average load capacitance per node in farads.
    pub average_node_capacitance: f64,
    /// Fraction of the load capacitance that is gate capacitance
    /// (varies with `Leff`); the paper assumes 40 %.
    pub gate_capacitance_fraction: f64,
    /// Fraction that is interconnect capacitance (≈5 % in the paper).
    pub interconnect_capacitance_fraction: f64,
    /// Clock period of the block current pulses in seconds.
    pub clock_period: f64,
    /// Number of clock cycles to synthesise.
    pub cycles: usize,
    /// Target peak nominal IR drop as a fraction of VDD (< 0.1 in the paper).
    pub target_peak_drop: f64,
    /// Relative random spread applied to segment conductances and block
    /// magnitudes (deterministic, systematic "design" irregularity — not the
    /// manufacturing variation studied by OPERA).
    pub irregularity: f64,
    /// RNG seed making the generated grid reproducible.
    pub seed: u64,
}

impl GridSpec {
    /// A realistic mid-size default targeting `target_nodes` nodes.
    pub fn industrial(target_nodes: usize) -> Self {
        GridSpec {
            target_nodes,
            vdd: 1.2,
            segment_conductance_x: 25.0, // 40 mΩ per segment
            segment_conductance_y: 18.0,
            pad_conductance: 12.0, // ~83 mΩ package + bump
            pad_pitch: 16,
            block_count: 24,
            average_node_capacitance: 8.0e-15,
            gate_capacitance_fraction: 0.40,
            interconnect_capacitance_fraction: 0.05,
            clock_period: 1.0e-9,
            cycles: 2,
            target_peak_drop: 0.08,
            irregularity: 0.25,
            seed: 0x0FE2A,
        }
    }

    /// The `index`-th grid of the paper's Table 1 (`0..7`), at full node
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidSpec`] if `index >= 7`.
    pub fn paper_grid(index: usize) -> Result<Self> {
        let Some(&nodes) = PAPER_GRID_NODE_COUNTS.get(index) else {
            return Err(GridError::InvalidSpec {
                reason: format!(
                    "the paper's Table 1 has {} grids, got index {index}",
                    PAPER_GRID_NODE_COUNTS.len()
                ),
            });
        };
        let mut spec = GridSpec::industrial(nodes);
        spec.seed = 1000 + index as u64;
        spec.block_count = 16 + 8 * index;
        Ok(spec)
    }

    /// A small grid suitable for unit tests and doc examples.
    pub fn small_test(target_nodes: usize) -> Self {
        let mut spec = GridSpec::industrial(target_nodes);
        spec.pad_pitch = 5;
        spec.block_count = 4;
        spec.cycles = 1;
        spec
    }

    /// Returns the spec with its node target scaled by `factor` (used to run
    /// the paper's experiments at reduced size on small machines).
    pub fn scaled_nodes(mut self, factor: f64) -> Self {
        let scaled = (self.target_nodes as f64 * factor).round().max(16.0) as usize;
        self.target_nodes = scaled;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of functional blocks.
    pub fn with_blocks(mut self, block_count: usize) -> Self {
        self.block_count = block_count;
        self
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidSpec`] describing the first problem found.
    pub fn validate(&self) -> Result<()> {
        if self.target_nodes < 4 {
            return Err(GridError::InvalidSpec {
                reason: "target_nodes must be at least 4".to_string(),
            });
        }
        if is_not_positive(self.vdd) {
            return Err(GridError::InvalidSpec {
                reason: "vdd must be positive".to_string(),
            });
        }
        if is_not_positive(self.segment_conductance_x)
            || is_not_positive(self.segment_conductance_y)
            || is_not_positive(self.pad_conductance)
        {
            return Err(GridError::InvalidSpec {
                reason: "conductances must be positive".to_string(),
            });
        }
        if self.pad_pitch == 0 {
            return Err(GridError::InvalidSpec {
                reason: "pad_pitch must be at least 1".to_string(),
            });
        }
        if self.block_count == 0 {
            return Err(GridError::InvalidSpec {
                reason: "at least one functional block is required".to_string(),
            });
        }
        if !(self.target_peak_drop > 0.0 && self.target_peak_drop < 0.5) {
            return Err(GridError::InvalidSpec {
                reason: "target_peak_drop must be in (0, 0.5)".to_string(),
            });
        }
        if self.gate_capacitance_fraction + self.interconnect_capacitance_fraction >= 1.0 {
            return Err(GridError::InvalidSpec {
                reason: "capacitance fractions must sum to less than 1".to_string(),
            });
        }
        if self.cycles == 0 || is_not_positive(self.clock_period) {
            return Err(GridError::InvalidSpec {
                reason: "clock period and cycle count must be positive".to_string(),
            });
        }
        Ok(())
    }

    /// Builds the power grid.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::InvalidSpec`] if the specification is invalid.
    pub fn build(&self) -> Result<PowerGrid> {
        let _span = opera_trace::span("grid.generate");
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Mesh dimensions closest to the target node count, slightly wider
        // than tall like a real die.
        let nx = ((self.target_nodes as f64).sqrt() * 1.15).round().max(2.0) as usize;
        let ny = (self.target_nodes as f64 / nx as f64).round().max(2.0) as usize;
        let n = nx * ny;
        let node = |x: usize, y: usize| y * nx + x;

        let mut grid = PowerGrid::new(n, self.vdd)?;

        // --- Metal stripes with a deterministic pseudo-random spread.
        let spread =
            |rng: &mut StdRng, base: f64, rel: f64| base * (1.0 + rel * (rng.gen::<f64>() - 0.5));
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    let g = spread(&mut rng, self.segment_conductance_x, self.irregularity);
                    grid.add_wire(node(x, y), node(x + 1, y), g, BranchKind::MetalWire)?;
                }
                if y + 1 < ny {
                    let g = spread(&mut rng, self.segment_conductance_y, self.irregularity);
                    grid.add_wire(node(x, y), node(x, y + 1), g, BranchKind::Via)?;
                }
            }
        }

        // --- Pads on a coarse regular array (always including the corners).
        let pitch_x = self.pad_pitch.min(nx.max(2) - 1).max(1);
        let pitch_y = self.pad_pitch.min(ny.max(2) - 1).max(1);
        let mut pad_count = 0usize;
        let mut y = 0;
        while y < ny {
            let mut x = 0;
            while x < nx {
                grid.add_pad(node(x, y), self.pad_conductance)?;
                pad_count += 1;
                x += pitch_x;
            }
            y += pitch_y;
        }
        debug_assert!(pad_count > 0);

        // --- Load capacitance per node (gate / diffusion / interconnect).
        let gate_frac = self.gate_capacitance_fraction;
        let wire_frac = self.interconnect_capacitance_fraction;
        let diff_frac = 1.0 - gate_frac - wire_frac;
        for idx in 0..n {
            let total = spread(&mut rng, self.average_node_capacitance, self.irregularity);
            grid.add_capacitor(idx, total * gate_frac, CapacitorClass::Gate)?;
            grid.add_capacitor(idx, total * diff_frac, CapacitorClass::Diffusion)?;
            grid.add_capacitor(idx, total * wire_frac, CapacitorClass::Interconnect)?;
        }

        // --- Functional blocks: rectangular regions with clocked pulses.
        let blocks_x = (self.block_count as f64).sqrt().ceil() as usize;
        let blocks_y = self.block_count.div_ceil(blocks_x);
        let rise = 0.15 * self.clock_period;
        let width = 0.25 * self.clock_period;
        let fall = 0.20 * self.clock_period;
        for b in 0..self.block_count {
            let bx = b % blocks_x;
            let by = b / blocks_x;
            // Block footprint in mesh coordinates.
            let x0 = bx * nx / blocks_x;
            let x1 = ((bx + 1) * nx / blocks_x).max(x0 + 1).min(nx);
            let y0 = by * ny / blocks_y;
            let y1 = ((by + 1) * ny / blocks_y).max(y0 + 1).min(ny);
            let phase = rng.gen::<f64>() * (self.clock_period - rise - width - fall).max(0.0);
            let magnitude = spread(&mut rng, 1.0, 2.0 * self.irregularity).max(0.1);
            // A handful of tap points inside the block share the block current.
            let taps = 4.max((x1 - x0) * (y1 - y0) / 16);
            for _ in 0..taps {
                let x = rng.gen_range(x0..x1);
                let y = rng.gen_range(y0..y1);
                let peak = magnitude / taps as f64;
                let wave = Waveform::clocked_pulses(
                    self.clock_period,
                    phase,
                    rise,
                    width,
                    fall,
                    peak,
                    self.cycles,
                );
                grid.add_current_source(node(x, y), wave, b)?;
            }
        }

        // --- Calibrate the currents so the worst-case nominal DC drop at peak
        // current equals `target_peak_drop · VDD`.
        let worst_drop = self.worst_case_dc_drop(&grid)?;
        if worst_drop > 0.0 {
            let alpha = self.target_peak_drop * self.vdd / worst_drop;
            grid.scale_currents(alpha);
        }
        Ok(grid)
    }

    /// Worst-case DC voltage drop with every source at its peak current.
    fn worst_case_dc_drop(&self, grid: &PowerGrid) -> Result<f64> {
        let g = grid.conductance_matrix();
        let mut u = grid.pad_injection_vector();
        for s in grid.sources() {
            u[s.node] -= s.waveform.peak();
        }
        // Direct factorisation for small/medium grids, CG for very large ones.
        let v = if grid.node_count() <= 60_000 {
            CholeskyFactor::factor(&g)
                .map_err(|e| GridError::InvalidSpec {
                    reason: format!("generated grid is not solvable: {e}"),
                })?
                .solve(&u)
        } else {
            let pre = cg::IncompleteCholesky::new(&g).map_err(|e| GridError::InvalidSpec {
                reason: format!("generated grid is not solvable: {e}"),
            })?;
            cg::solve(
                &g,
                &u,
                &pre,
                cg::CgOptions {
                    max_iterations: 20_000,
                    tolerance: 1e-8,
                },
            )
            .map_err(|e| GridError::InvalidSpec {
                reason: format!("generated grid is not solvable: {e}"),
            })?
            .x
        };
        Ok(v.iter()
            .map(|&vi| self.vdd - vi)
            .fold(f64::NEG_INFINITY, f64::max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_grid_has_requested_size_and_is_connected() {
        let grid = GridSpec::small_test(300).build().unwrap();
        let n = grid.node_count();
        assert!((250..=350).contains(&n), "node count {n}");
        grid.validate_connectivity().unwrap();
        assert!(!grid.pad_nodes().is_empty());
        assert!(!grid.sources().is_empty());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = GridSpec::small_test(200).with_seed(5).build().unwrap();
        let b = GridSpec::small_test(200).with_seed(5).build().unwrap();
        let c = GridSpec::small_test(200).with_seed(6).build().unwrap();
        assert_eq!(a.branches(), b.branches());
        assert_eq!(a.capacitors(), b.capacitors());
        assert_ne!(a.branches(), c.branches());
    }

    #[test]
    fn peak_dc_drop_is_calibrated_to_target() {
        let spec = GridSpec::small_test(400);
        let grid = spec.build().unwrap();
        // Re-solve the DC system at peak currents and check the calibration.
        let g = grid.conductance_matrix();
        let mut u = grid.pad_injection_vector();
        for s in grid.sources() {
            u[s.node] -= s.waveform.peak();
        }
        let v = opera_sparse::cholesky_solve(&g, &u).unwrap();
        let worst = v.iter().map(|&vi| grid.vdd() - vi).fold(0.0, f64::max);
        let target = spec.target_peak_drop * spec.vdd;
        assert!(
            (worst - target).abs() < 1e-6 * spec.vdd,
            "worst drop {worst}, target {target}"
        );
    }

    #[test]
    fn capacitance_split_matches_fractions() {
        let spec = GridSpec::small_test(200);
        let grid = spec.build().unwrap();
        let total = grid.total_capacitance();
        let gate = grid.capacitance_of_class(CapacitorClass::Gate);
        let wire = grid.capacitance_of_class(CapacitorClass::Interconnect);
        assert!((gate / total - spec.gate_capacitance_fraction).abs() < 1e-9);
        assert!((wire / total - spec.interconnect_capacitance_fraction).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_specs_use_table1_node_counts() {
        for (i, &n) in PAPER_GRID_NODE_COUNTS.iter().enumerate() {
            let spec = GridSpec::paper_grid(i).unwrap();
            assert_eq!(spec.target_nodes, n);
        }
        let scaled = GridSpec::paper_grid(0).unwrap().scaled_nodes(0.1);
        assert_eq!(scaled.target_nodes, 1_918);
        assert!(matches!(
            GridSpec::paper_grid(PAPER_GRID_NODE_COUNTS.len()),
            Err(GridError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(GridSpec::industrial(2).build().is_err());
        let mut s = GridSpec::small_test(100);
        s.pad_pitch = 0;
        assert!(s.build().is_err());
        let mut s = GridSpec::small_test(100);
        s.target_peak_drop = 0.9;
        assert!(s.build().is_err());
        let mut s = GridSpec::small_test(100);
        s.gate_capacitance_fraction = 0.99;
        s.interconnect_capacitance_fraction = 0.05;
        assert!(s.build().is_err());
        let mut s = GridSpec::small_test(100);
        s.block_count = 0;
        assert!(s.build().is_err());
    }

    #[test]
    fn waveform_end_time_covers_all_cycles() {
        let spec = GridSpec::small_test(150);
        let grid = spec.build().unwrap();
        assert!(grid.waveform_end_time() <= spec.clock_period * spec.cycles as f64 + 1e-12);
        assert!(grid.waveform_end_time() > 0.0);
    }
}
