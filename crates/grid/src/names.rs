//! Stable node-name ↔ node-index mapping.
//!
//! Grids built by [`GridSpec`](crate::GridSpec) identify nodes by bare
//! indices, but grids imported from a netlist have real names
//! (`n1_123_456`, `vddcore_17`, …). [`NodeMap`] records the bijection chosen
//! at import time so that every downstream report can translate between the
//! engine's indices and the deck's names — and so that an exported deck can
//! be re-imported with the *same* index assignment, which is what makes
//! export → parse → stamp round trips bit-identical.

use std::collections::HashMap;

/// A bijection between node names and the `0..n` node indices of a
/// [`PowerGrid`](crate::PowerGrid).
///
/// Insertion order defines the index assignment: the first name inserted is
/// node `0`, the second node `1`, and so on. Lookups run in `O(1)` both
/// ways.
///
/// # Example
///
/// ```
/// use opera_grid::NodeMap;
///
/// let mut map = NodeMap::new();
/// assert_eq!(map.get_or_insert("n1_0_0"), 0);
/// assert_eq!(map.get_or_insert("n1_0_1"), 1);
/// assert_eq!(map.get_or_insert("n1_0_0"), 0); // already known
/// assert_eq!(map.name(1), Some("n1_0_1"));
/// assert_eq!(map.index("n1_0_1"), Some(1));
/// assert_eq!(map.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeMap {
    names: Vec<String>,
    indices: HashMap<String, usize>,
}

impl NodeMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        NodeMap::default()
    }

    /// Creates a map with the synthetic names `n0`, `n1`, …, `n{count-1}` —
    /// the naming scheme the netlist exporter uses for grids that were never
    /// imported from a deck.
    ///
    /// # Example
    ///
    /// ```
    /// use opera_grid::NodeMap;
    ///
    /// let map = NodeMap::numbered(3);
    /// assert_eq!(map.name(2), Some("n2"));
    /// assert_eq!(map.index("n1"), Some(1));
    /// ```
    pub fn numbered(count: usize) -> Self {
        let mut map = NodeMap::new();
        for i in 0..count {
            map.get_or_insert(&format!("n{i}"));
        }
        map
    }

    /// Returns the index of `name`, inserting it as the next fresh index if
    /// it is not yet known.
    pub fn get_or_insert(&mut self, name: &str) -> usize {
        if let Some(&idx) = self.indices.get(name) {
            return idx;
        }
        let idx = self.names.len();
        self.names.push(name.to_string());
        self.indices.insert(name.to_string(), idx);
        idx
    }

    /// The name of node `index`, or `None` if the index is out of range.
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// The index of `name`, or `None` if the name is unknown.
    pub fn index(&self, name: &str) -> Option<usize> {
        self.indices.get(name).copied()
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no node has been mapped yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> + '_ {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_defines_indices() {
        let mut map = NodeMap::new();
        assert!(map.is_empty());
        assert_eq!(map.get_or_insert("b"), 0);
        assert_eq!(map.get_or_insert("a"), 1);
        assert_eq!(map.get_or_insert("b"), 0);
        assert_eq!(map.len(), 2);
        assert_eq!(map.name(0), Some("b"));
        assert_eq!(map.name(2), None);
        assert_eq!(map.index("a"), Some(1));
        assert_eq!(map.index("zz"), None);
        let pairs: Vec<_> = map.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
    }

    #[test]
    fn numbered_names_round_trip() {
        let map = NodeMap::numbered(5);
        assert_eq!(map.len(), 5);
        for i in 0..5 {
            assert_eq!(map.index(&format!("n{i}")), Some(i));
        }
    }
}
