//! Piecewise-linear transient current waveforms.
//!
//! The paper obtains functional-block drain current profiles by simulating
//! the blocks "at a full supply voltage for a large sequence of random input
//! vectors". The resulting profiles are clock-synchronous current pulses. We
//! model them as piecewise-linear waveforms; [`Waveform::clocked_pulses`]
//! synthesises a typical triangular pulse train.

/// A piecewise-linear waveform `i(t)` defined by `(time, value)` breakpoints.
///
/// Outside the breakpoint range the waveform is extended with its first/last
/// value. Breakpoints are kept sorted by time.
///
/// # Example
///
/// ```
/// use opera_grid::Waveform;
///
/// let w = Waveform::pulse(1.0e-9, 0.2e-9, 0.6e-9, 0.2e-9, 1.0e-3);
/// assert_eq!(w.value_at(0.0), 0.0);
/// assert!((w.value_at(1.2e-9) - 1.0e-3).abs() < 1e-12);
/// assert_eq!(w.value_at(5.0e-9), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    points: Vec<(f64, f64)>,
}

impl Waveform {
    /// A constant waveform.
    pub fn constant(value: f64) -> Self {
        Waveform {
            points: vec![(0.0, value)],
        }
    }

    /// Builds a waveform from `(time, value)` breakpoints; the points are
    /// sorted by time.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or contains non-finite values.
    pub fn from_points(mut points: Vec<(f64, f64)>) -> Self {
        assert!(
            !points.is_empty(),
            "a waveform needs at least one breakpoint"
        );
        assert!(
            points.iter().all(|(t, v)| t.is_finite() && v.is_finite()),
            "waveform breakpoints must be finite"
        );
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Waveform { points }
    }

    /// A single trapezoidal pulse starting at `start`: value rises from 0 to
    /// `peak` over `rise`, stays for `width`, and falls back over `fall`.
    pub fn pulse(start: f64, rise: f64, width: f64, fall: f64, peak: f64) -> Self {
        Waveform::from_points(vec![
            (start, 0.0),
            (start + rise, peak),
            (start + rise + width, peak),
            (start + rise + width + fall, 0.0),
        ])
    }

    /// A clock-synchronous train of `cycles` triangular/trapezoidal pulses of
    /// period `period`, each with the given `rise`, `width`, `fall` and
    /// `peak`, starting at phase `phase` within each cycle.
    ///
    /// # Panics
    ///
    /// Panics if the pulse does not fit within one period.
    pub fn clocked_pulses(
        period: f64,
        phase: f64,
        rise: f64,
        width: f64,
        fall: f64,
        peak: f64,
        cycles: usize,
    ) -> Self {
        assert!(
            phase + rise + width + fall <= period * (1.0 + 1e-12),
            "pulse does not fit in one clock period"
        );
        let mut points = vec![(0.0, 0.0)];
        for c in 0..cycles {
            let t0 = c as f64 * period + phase;
            points.push((t0, 0.0));
            points.push((t0 + rise, peak));
            points.push((t0 + rise + width, peak));
            points.push((t0 + rise + width + fall, 0.0));
        }
        Waveform::from_points(points)
    }

    /// Value of the waveform at time `t` (linear interpolation, constant
    /// extension outside the breakpoints).
    pub fn value_at(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing t.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = pts[lo];
        let (t1, v1) = pts[hi];
        if t1 == t0 {
            v1
        } else {
            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
        }
    }

    /// Maximum value over the breakpoints (the peak of a piecewise-linear
    /// waveform is always attained at a breakpoint).
    pub fn peak(&self) -> f64 {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Last breakpoint time.
    pub fn end_time(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> Waveform {
        Waveform {
            points: self.points.iter().map(|&(t, v)| (t, alpha * v)).collect(),
        }
    }

    /// The breakpoints of the waveform.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_waveform_is_flat() {
        let w = Waveform::constant(2.5);
        assert_eq!(w.value_at(-1.0), 2.5);
        assert_eq!(w.value_at(0.0), 2.5);
        assert_eq!(w.value_at(1.0e9), 2.5);
        assert_eq!(w.peak(), 2.5);
    }

    #[test]
    fn pulse_interpolates_linearly() {
        let w = Waveform::pulse(1.0, 1.0, 2.0, 1.0, 10.0);
        assert_eq!(w.value_at(0.5), 0.0);
        assert!((w.value_at(1.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(2.5), 10.0);
        assert!((w.value_at(4.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value_at(6.0), 0.0);
        assert_eq!(w.peak(), 10.0);
        assert_eq!(w.end_time(), 5.0);
    }

    #[test]
    fn clocked_pulses_repeat_each_period() {
        let w = Waveform::clocked_pulses(10.0, 2.0, 1.0, 2.0, 1.0, 4.0, 3);
        // Same phase in consecutive cycles gives the same value.
        for t in [2.5, 3.5, 5.5] {
            assert!((w.value_at(t) - w.value_at(t + 10.0)).abs() < 1e-12);
        }
        assert_eq!(w.peak(), 4.0);
    }

    #[test]
    fn scaling_scales_values_not_times() {
        let w = Waveform::pulse(0.0, 1.0, 1.0, 1.0, 2.0).scaled(3.0);
        assert_eq!(w.peak(), 6.0);
        assert_eq!(w.end_time(), 3.0);
    }

    #[test]
    fn unsorted_points_are_sorted() {
        let w = Waveform::from_points(vec![(2.0, 1.0), (0.0, 0.0), (1.0, 0.5)]);
        assert!((w.value_at(0.5) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_waveform_is_rejected() {
        let _ = Waveform::from_points(vec![]);
    }

    #[test]
    #[should_panic]
    fn oversized_pulse_is_rejected() {
        let _ = Waveform::clocked_pulses(1.0, 0.5, 0.3, 0.3, 0.3, 1.0, 2);
    }
}
