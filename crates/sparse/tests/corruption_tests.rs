//! Regression tests: every structural-invariant dimension, corrupted on
//! purpose, must produce a *descriptive* error — not a panic, not a wrong
//! answer deep inside the numeric phase.
//!
//! The validators in `opera_sparse::invariants` are always compiled, so the
//! slice-level cases below run in every configuration. The constructor-level
//! cases (feature-gated at the bottom) additionally prove that the checked
//! constructors invoke the validators when `strict-invariants` is enabled.

use opera_sparse::invariants::{
    validate_csc_slices, validate_postorder, validate_supernode_containment,
};
use opera_sparse::{CscMatrix, SparseError};

fn reason_of(err: SparseError) -> String {
    match err {
        SparseError::InvalidStructure { reason } => reason,
        other => panic!("expected InvalidStructure, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Dimension 1: CSC storage.
// ---------------------------------------------------------------------------

#[test]
fn unsorted_row_indices_are_named() {
    // Column 0 lists row 1 before row 0.
    let err = validate_csc_slices(2, 2, &[0, 2, 3], &[1, 0, 1], &[1.0, 2.0, 3.0]);
    let reason = reason_of(err.unwrap_err());
    assert!(
        reason.contains("column 0") && reason.contains("ascending"),
        "unhelpful reason: {reason}"
    );
}

#[test]
fn duplicate_row_indices_are_rejected() {
    // "Strictly ascending" also bans duplicates within a column.
    let err = validate_csc_slices(3, 1, &[0, 2], &[1, 1], &[1.0, 2.0]);
    assert!(reason_of(err.unwrap_err()).contains("ascending"));
}

#[test]
fn out_of_bounds_row_index_is_named() {
    let err = validate_csc_slices(2, 2, &[0, 1, 2], &[0, 5], &[1.0, 2.0]);
    let reason = reason_of(err.unwrap_err());
    assert!(
        reason.contains("row index 5") && reason.contains("nrows = 2"),
        "unhelpful reason: {reason}"
    );
}

#[test]
fn non_monotone_indptr_is_named() {
    let err = validate_csc_slices(3, 3, &[0, 2, 1, 3], &[0, 1, 2], &[1.0; 3]);
    let reason = reason_of(err.unwrap_err());
    assert!(reason.contains("monotone"), "unhelpful reason: {reason}");
}

#[test]
fn wrong_indptr_length_is_named() {
    let err = validate_csc_slices(2, 3, &[0, 1], &[0], &[1.0]);
    assert!(reason_of(err.unwrap_err()).contains("expected ncols + 1"));
}

#[test]
fn value_index_length_mismatch_is_named() {
    let err = validate_csc_slices(2, 1, &[0, 2], &[0, 1], &[1.0]);
    assert!(reason_of(err.unwrap_err()).contains("1 values for 2 stored indices"));
}

#[test]
fn non_finite_value_is_named() {
    let err = validate_csc_slices(2, 1, &[0, 2], &[0, 1], &[1.0, f64::NAN]);
    let reason = reason_of(err.unwrap_err());
    assert!(
        reason.contains("non-finite") && reason.contains("position 1"),
        "unhelpful reason: {reason}"
    );
}

#[test]
fn validate_method_accepts_real_matrices() {
    let a = CscMatrix::identity(4);
    a.validate().expect("identity is structurally valid");
}

// ---------------------------------------------------------------------------
// Dimension 2: elimination-tree postorder.
// ---------------------------------------------------------------------------

#[test]
fn postorder_visiting_parent_first_is_named() {
    // Chain 0 -> 1 -> 2; visiting 2 (the root) first breaks child-before-
    // parent ordering for both of its descendants.
    let parent = [Some(1), Some(2), None];
    let err = validate_postorder(&[2, 1, 0], &parent);
    let reason = reason_of(err.unwrap_err());
    assert!(reason.contains("parent"), "unhelpful reason: {reason}");
}

#[test]
fn postorder_with_duplicate_vertex_is_named() {
    let parent = [None, None, None];
    let err = validate_postorder(&[0, 0, 2], &parent);
    assert!(reason_of(err.unwrap_err()).contains("twice"));
}

#[test]
fn postorder_with_wrong_length_is_named() {
    let parent = [None, None];
    let err = validate_postorder(&[0], &parent);
    assert!(reason_of(err.unwrap_err()).contains("visits 1 vertices"));
}

#[test]
fn postorder_with_out_of_bounds_vertex_is_named() {
    let parent = [None, None];
    let err = validate_postorder(&[0, 7], &parent);
    assert!(reason_of(err.unwrap_err()).contains("vertex 7"));
}

// ---------------------------------------------------------------------------
// Dimension 3: supernode containment.
// ---------------------------------------------------------------------------

#[test]
fn broken_suffix_pattern_is_named() {
    // Supernode {0,1}: column 0 has pattern {0,1,2}, so column 1 must be
    // exactly {1,2}. Give it {1} instead.
    let l_indptr = [0, 3, 4, 5];
    let l_indices = [0, 1, 2, 1, 2];
    let err = validate_supernode_containment(&[0, 2, 3], &l_indptr, &l_indices);
    let reason = reason_of(err.unwrap_err());
    assert!(
        reason.contains("supernode 0") && reason.contains("column 1"),
        "unhelpful reason: {reason}"
    );
}

#[test]
fn missing_panel_diagonal_is_named() {
    // Leading pattern of supernode {0,1} must start 0,1,...; start it at 0,2.
    let l_indptr = [0, 2, 3, 4];
    let l_indices = [0, 2, 2, 2];
    let err = validate_supernode_containment(&[0, 2, 3], &l_indptr, &l_indices);
    assert!(reason_of(err.unwrap_err()).contains("diagonal"));
}

#[test]
fn invalid_boundary_range_is_named() {
    let l_indptr = [0, 1, 2];
    let l_indices = [0, 1];
    let err = validate_supernode_containment(&[0, 0, 2], &l_indptr, &l_indices);
    assert!(reason_of(err.unwrap_err()).contains("invalid column range"));
}

#[test]
fn narrow_leading_pattern_is_named() {
    // Supernode 2 columns wide whose leading pattern has only 1 row.
    let l_indptr = [0, 1, 2];
    let l_indices = [0, 1];
    let err = validate_supernode_containment(&[0, 2], &l_indptr, &l_indices);
    assert!(reason_of(err.unwrap_err()).contains("2 columns wide"));
}

// ---------------------------------------------------------------------------
// Constructor wiring: with `strict-invariants`, the checked constructors
// invoke the validators automatically. `CsrMatrix::from_raw_parts` already
// rejects unsorted/out-of-bounds input unconditionally, so the cases below
// target invariants only the strict layer rechecks (e.g. finiteness).
// ---------------------------------------------------------------------------

#[cfg(feature = "strict-invariants")]
mod strict {
    use super::*;

    #[test]
    fn from_raw_parts_rejects_non_finite_values() {
        let err = CscMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, f64::NAN]);
        assert!(reason_of(err.unwrap_err()).contains("non-finite"));
    }

    #[test]
    fn factorization_pipeline_still_passes_under_strict_checks() {
        // A healthy SPD system must sail through all the extra validation
        // (permute_symmetric, postorder, supernode containment) unchanged.
        use opera_sparse::{CholeskyFactor, CsrMatrix};
        let a = CsrMatrix::from_dense(
            3,
            3,
            &[4.0, -1.0, 0.0, -1.0, 4.0, -1.0, 0.0, -1.0, 4.0],
            0.0,
        );
        let chol = CholeskyFactor::factor(&a).expect("SPD factorization");
        let x = chol.solve(&[1.0, 2.0, 3.0]);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip([1.0, 2.0, 3.0]) {
            assert!((ri - bi).abs() < 1e-10);
        }
    }
}
