//! Property-based tests of the sparse linear algebra kernels.

use proptest::prelude::*;

use opera_sparse::{
    cg, CholeskyFactor, CsrMatrix, LuFactor, MatrixFactor, OrderingChoice, Panel, Permutation,
    SolveWorkspace, TripletMatrix,
};

/// Strategy: a random symmetric positive definite matrix built as a weighted
/// graph Laplacian plus a positive diagonal shift (exactly the structure of a
/// power-grid conductance matrix).
fn spd_matrix(max_n: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_n)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec((0..n, 0..n, 0.1f64..5.0), 1..4 * n),
                proptest::collection::vec(0.05f64..2.0, n),
            )
        })
        .prop_map(|(n, edges, shifts)| {
            let mut t = TripletMatrix::new(n, n);
            for (i, &s) in shifts.iter().enumerate() {
                t.push(i, i, s);
            }
            for (a, b, w) in edges {
                if a != b {
                    t.add_symmetric_pair(a, b, w);
                }
            }
            t.to_csr()
        })
}

/// Strategy: an arbitrary dense-ish vector of a given length.
fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_spd_systems(a in spd_matrix(40)) {
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.matvec(&x_true);
        let chol = CholeskyFactor::factor(&a).expect("SPD by construction");
        let x = chol.solve(&b);
        let err = x.iter().zip(&x_true).map(|(u, v)| (u - v).abs()).fold(0.0, f64::max);
        prop_assert!(err < 1e-6, "max error {err}");
    }

    #[test]
    fn cholesky_orderings_agree(a in spd_matrix(30)) {
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.3).sin()).collect();
        let x_nat = CholeskyFactor::factor_with(&a, OrderingChoice::Natural).unwrap().solve(&b);
        let x_rcm = CholeskyFactor::factor_with(&a, OrderingChoice::ReverseCuthillMckee)
            .unwrap()
            .solve(&b);
        let x_md = CholeskyFactor::factor_with(&a, OrderingChoice::MinimumDegree)
            .unwrap()
            .solve(&b);
        let x_amd = CholeskyFactor::factor_with(&a, OrderingChoice::ApproximateMinimumDegree)
            .unwrap()
            .solve(&b);
        for i in 0..b.len() {
            prop_assert!((x_nat[i] - x_rcm[i]).abs() < 1e-7);
            prop_assert!((x_nat[i] - x_md[i]).abs() < 1e-7);
            prop_assert!((x_nat[i] - x_amd[i]).abs() < 1e-7);
        }
    }

    /// AMD must emit a valid permutation on any symmetric pattern (the
    /// `Permutation` constructor validates bijectivity, so length equality
    /// plus a solved system is the full contract), and the AMD-ordered
    /// factorisation must solve the same systems the RCM-ordered one does.
    #[test]
    fn amd_permutes_validly_and_matches_rcm_solves(a in spd_matrix(40)) {
        let n = a.nrows();
        let p = opera_sparse::ordering::approximate_minimum_degree(&a.to_csc());
        prop_assert_eq!(p.len(), n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 5.0).collect();
        let b = a.matvec(&x_true);
        let x_amd = CholeskyFactor::factor_with(&a, OrderingChoice::ApproximateMinimumDegree)
            .unwrap()
            .solve(&b);
        let x_rcm = CholeskyFactor::factor_with(&a, OrderingChoice::ReverseCuthillMckee)
            .unwrap()
            .solve(&b);
        for i in 0..n {
            prop_assert!((x_amd[i] - x_rcm[i]).abs() < 1e-6,
                "AMD and RCM solves disagree at {i}: {} vs {}", x_amd[i], x_rcm[i]);
        }
        prop_assert!(a.residual_inf_norm(&x_amd, &b) < 1e-8);
    }

    /// Every CSC matrix the kernels produce must satisfy the structural
    /// invariants the solvers index by — the same validator the
    /// `strict-invariants` feature wires into the checked constructors.
    #[test]
    fn produced_csc_matrices_satisfy_structural_invariants(a in spd_matrix(35)) {
        let csc = a.to_csc();
        prop_assert!(csc.validate().is_ok());
        let p = opera_sparse::ordering::approximate_minimum_degree(&csc);
        prop_assert!(csc.permute_symmetric(&p).unwrap().validate().is_ok());
        let chol = CholeskyFactor::factor(&a).expect("SPD by construction");
        prop_assert!(chol.lower().validate().is_ok());
    }

    /// The supernodal numeric phase must reproduce `P·A·Pᵀ = L·Lᵀ` exactly
    /// (up to roundoff) — multi-column panels, descendant updates and the
    /// dense diagonal-block Cholesky all feed this single identity.
    #[test]
    fn supernodal_factor_reconstructs_matrix_under_amd(a in spd_matrix(35)) {
        let chol = CholeskyFactor::factor_with(&a, OrderingChoice::ApproximateMinimumDegree)
            .unwrap();
        let l = chol.lower().to_csr().to_dense();
        let llt = l.matmul(&l.transpose());
        let ap = a
            .to_csc()
            .permute_symmetric(chol.permutation())
            .unwrap()
            .to_csr()
            .to_dense();
        prop_assert!(llt.max_abs_diff(&ap) < 1e-8);
    }

    /// Panel solves must be *bit-identical* to per-column scalar solves on
    /// random SPD patterns with 1..=17 right-hand-side columns — the blocked
    /// kernels only amortise factor traffic, they must not change a single
    /// rounding. The range covers every strip width (1..=8), the
    /// strip+tail cases, and panels spanning two full strips plus a tail
    /// (so `for_each_strip`'s second-and-later iterations are exercised).
    #[test]
    fn panel_solves_are_bit_identical_to_scalar_solves(
        a in spd_matrix(40),
        k in 1usize..=17,
        seed in 0u64..1000,
    ) {
        let n = a.nrows();
        let columns: Vec<Vec<f64>> = (0..k)
            .map(|c| {
                (0..n)
                    .map(|i| (((seed + 1) * (c as u64 + 1)) as f64 * (i as f64 + 0.5) * 0.37).sin())
                    .collect()
            })
            .collect();
        let chol = CholeskyFactor::factor(&a).expect("SPD by construction");
        let mut ws = SolveWorkspace::new();
        let mut panel = Panel::from_columns(&columns);
        chol.solve_panel(&mut panel, &mut ws);
        for (j, b) in columns.iter().enumerate() {
            prop_assert_eq!(panel.col(j), &chol.solve(b)[..], "cholesky panel col {}", j);
        }
        // Same contract for the LU and unified-factor panel paths.
        let lu = LuFactor::factor(&a).expect("SPD matrices are non-singular");
        let mut panel = Panel::from_columns(&columns);
        lu.solve_panel(&mut panel, &mut ws);
        for (j, b) in columns.iter().enumerate() {
            prop_assert_eq!(panel.col(j), &lu.solve(b)[..], "lu panel col {}", j);
        }
        let factor = MatrixFactor::cholesky_or_lu(&a).unwrap();
        let mut panel = Panel::from_columns(&columns);
        factor.solve_panel(&mut panel, &mut ws);
        for (j, b) in columns.iter().enumerate() {
            prop_assert_eq!(panel.col(j), &factor.solve(b)[..], "factor panel col {}", j);
        }
    }

    /// The in-place workspace solves must also be bit-identical to the
    /// allocating path, with zero allocations once the workspace is warm.
    #[test]
    fn workspace_solves_are_bit_identical_and_allocation_free(a in spd_matrix(30)) {
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.77).cos()).collect();
        let factor = MatrixFactor::cholesky_or_lu(&a).unwrap();
        let expected = factor.solve(&b);
        let mut ws = SolveWorkspace::new();
        let mut x = b.clone();
        factor.solve_in_place(&mut x, &mut ws);
        prop_assert_eq!(&x, &expected);
        let warm = ws.allocation_count();
        for _ in 0..3 {
            x.copy_from_slice(&b);
            factor.solve_in_place(&mut x, &mut ws);
            prop_assert_eq!(&x, &expected);
        }
        prop_assert_eq!(ws.allocation_count(), warm);
    }

    #[test]
    fn lu_and_cholesky_agree_on_spd_matrices(a in spd_matrix(25)) {
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let x_lu = LuFactor::factor(&a).unwrap().solve(&b);
        let x_ch = CholeskyFactor::factor(&a).unwrap().solve(&b);
        for (u, v) in x_lu.iter().zip(&x_ch) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn conjugate_gradient_matches_direct_solve(a in spd_matrix(25)) {
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let direct = CholeskyFactor::factor(&a).unwrap().solve(&b);
        let jacobi = cg::JacobiPreconditioner::new(&a).unwrap();
        let sol = cg::solve(&a, &b, &jacobi, cg::CgOptions {
            max_iterations: 10_000,
            tolerance: 1e-12,
        }).unwrap();
        for (u, v) in sol.x.iter().zip(&direct) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn refactor_accepts_pattern_preserving_updates_and_matches_fresh_factorization(
        a in spd_matrix(30),
        scales in proptest::collection::vec(0.2f64..4.0, 8),
    ) {
        // Perturb every stored value (pattern untouched) by per-entry scales
        // drawn from the strategy; `refactor` must succeed and agree with a
        // from-scratch factorisation of the same matrix.
        let mut perturbed = a.clone();
        {
            let data = perturbed.data_mut();
            for (k, v) in data.iter_mut().enumerate() {
                *v *= scales[k % scales.len()];
            }
        }
        // Restore symmetry, then make the result strictly diagonally dominant
        // (hence SPD) without touching the sparsity pattern.
        let sym = perturbed
            .add_scaled(&perturbed.transpose(), 1.0)
            .unwrap()
            .scaled(0.5);
        let boost: Vec<f64> = (0..sym.nrows())
            .map(|i| {
                let (_, vals) = sym.row(i);
                vals.iter().map(|v| v.abs()).sum::<f64>() + 1.0
            })
            .collect();
        let spd = sym
            .add_scaled(&CsrMatrix::from_diagonal(&boost), 1.0)
            .unwrap();

        let mut chol = CholeskyFactor::factor(&a).expect("SPD by construction");
        chol.refactor(&spd).expect("pattern-preserving refactor must succeed");
        let fresh = CholeskyFactor::factor(&spd).unwrap();
        let b: Vec<f64> = (0..a.nrows()).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x_re = chol.solve(&b);
        let x_fresh = fresh.solve(&b);
        prop_assert!(spd.residual_inf_norm(&x_re, &b) < 1e-8);
        for (u, v) in x_re.iter().zip(&x_fresh) {
            prop_assert!((u - v).abs() < 1e-8, "refactor and fresh factorisation disagree");
        }
    }

    #[test]
    fn refactor_rejects_values_at_new_nonzero_positions(
        a in spd_matrix(25),
        i in 0usize..25,
        j in 0usize..25,
    ) {
        let n = a.nrows();
        let (i, j) = (i % n, j % n);
        prop_assume!(i != j);
        // Only interesting when (i, j) is NOT already in the pattern.
        prop_assume!(a.get(i, j) == 0.0);
        let mut extra = TripletMatrix::new(n, n);
        extra.add_symmetric_pair(i, j, 0.125);
        let widened = a.add_scaled(&extra.to_csr(), 1.0).unwrap();
        let mut chol = CholeskyFactor::factor(&a).unwrap();
        prop_assert!(
            chol.refactor(&widened).is_err(),
            "a new nonzero at ({i}, {j}) must be rejected"
        );
    }

    #[test]
    fn csr_csc_round_trip_preserves_entries(
        entries in proptest::collection::vec((0usize..15, 0usize..15, -5.0f64..5.0), 0..60)
    ) {
        let mut t = TripletMatrix::new(15, 15);
        for &(i, j, v) in &entries {
            t.push(i, j, v);
        }
        let csr = t.to_csr();
        let round = csr.to_csc().to_csr();
        prop_assert_eq!(&csr, &round);
        // The transpose of the transpose is the original.
        prop_assert_eq!(&csr, &csr.transpose().transpose());
    }

    #[test]
    fn matvec_is_linear(
        a in spd_matrix(20),
        alpha in -3.0f64..3.0,
    ) {
        let n = a.ncols();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(xi, yi)| xi + alpha * yi).collect();
        let lhs = a.matvec(&combo);
        let ax = a.matvec(&x);
        let ay = a.matvec(&y);
        for i in 0..n {
            prop_assert!((lhs[i] - (ax[i] + alpha * ay[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn permutation_apply_and_inverse_are_inverse_bijections(perm in proptest::collection::vec(0usize..1000, 1..50)) {
        // Turn an arbitrary vector into a permutation by ranking.
        let n = perm.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (perm[i], i));
        let p = Permutation::from_vec(order).unwrap();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let there = p.apply(&x);
        let back = p.apply_inverse(&there);
        prop_assert_eq!(back, x);
        // Composition with the inverse is the identity.
        let identity = p.compose(&p.inverse());
        for i in 0..n {
            prop_assert_eq!(identity.get(i), i);
        }
    }

    #[test]
    fn add_scaled_matches_dense_addition(
        a_entries in proptest::collection::vec((0usize..10, 0usize..10, -3.0f64..3.0), 0..40),
        b_entries in proptest::collection::vec((0usize..10, 0usize..10, -3.0f64..3.0), 0..40),
        alpha in -2.0f64..2.0,
    ) {
        let build = |entries: &[(usize, usize, f64)]| {
            let mut t = TripletMatrix::new(10, 10);
            for &(i, j, v) in entries {
                t.push(i, j, v);
            }
            t.to_csr()
        };
        let a = build(&a_entries);
        let b = build(&b_entries);
        let c = a.add_scaled(&b, alpha).unwrap();
        let (da, db, dc) = (a.to_dense(), b.to_dense(), c.to_dense());
        for i in 0..10 {
            for j in 0..10 {
                prop_assert!((dc[(i, j)] - (da[(i, j)] + alpha * db[(i, j)])).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn triangular_solve_vector_round_trip(v in vector(12), shift in 0.5f64..3.0) {
        // Build an SPD matrix, factor it, and verify L (L^T x) reproduces it.
        let n = v.len();
        let mut t = TripletMatrix::new(n, n);
        for (i, vi) in v.iter().enumerate() {
            t.push(i, i, shift + vi.abs());
            if i + 1 < n {
                t.add_symmetric_pair(i, i + 1, 0.3);
            }
        }
        let a = t.to_csr();
        let chol = CholeskyFactor::factor_with(&a, OrderingChoice::Natural).unwrap();
        let l = chol.lower().to_csr().to_dense();
        let llt = l.matmul(&l.transpose());
        prop_assert!(llt.max_abs_diff(&a.to_dense()) < 1e-8);
    }
}
