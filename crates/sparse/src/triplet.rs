//! Coordinate (triplet / COO) format matrix builder.

use crate::{CscMatrix, CsrMatrix};

/// A sparse matrix under assembly, stored as `(row, col, value)` triplets.
///
/// This is the natural format for stamping circuit elements into an MNA
/// matrix: each resistor or capacitor contributes a handful of triplets and
/// duplicate entries are summed when the matrix is compressed.
///
/// # Example
///
/// ```
/// use opera_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// // Stamp a 2-terminal conductance of 3.0 between nodes 0 and 1.
/// t.add_symmetric_pair(0, 1, 3.0);
/// let a = t.to_csr();
/// assert_eq!(a.get(0, 0), 3.0);
/// assert_eq!(a.get(0, 1), -3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty triplet matrix with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates an empty triplet matrix with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (duplicates are not merged until compression).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a triplet. Duplicate `(row, col)` entries are summed on
    /// conversion to CSR/CSC.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet index ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
    }

    /// Stamps a two-terminal admittance `g` between nodes `a` and `b`
    /// (both assumed to be ungrounded): adds `+g` to the two diagonal
    /// entries and `-g` to the two off-diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of bounds.
    pub fn add_symmetric_pair(&mut self, a: usize, b: usize, g: f64) {
        assert_ne!(a, b, "a two-terminal stamp needs distinct nodes");
        self.push(a, a, g);
        self.push(b, b, g);
        self.push(a, b, -g);
        self.push(b, a, -g);
    }

    /// Stamps an admittance `g` from node `a` to ground: adds `+g` to the
    /// diagonal entry `(a, a)`.
    pub fn add_to_ground(&mut self, a: usize, g: f64) {
        self.push(a, a, g);
    }

    /// Iterates over the raw (unmerged) triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Extends this builder with all triplets of `other`, scaled by `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn extend_scaled(&mut self, other: &TripletMatrix, alpha: f64) {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "extend_scaled requires matching shapes"
        );
        for (r, c, v) in other.iter() {
            self.push(r, c, alpha * v);
        }
    }

    /// Compresses to CSR, summing duplicate entries and dropping explicit
    /// zeros that result from cancellation only if `prune` were requested
    /// (we keep them: structural zeros are harmless and keep patterns stable).
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row after merging duplicates. We first sort by
        // (row, col) using a counting-sort style pass over rows, then sort
        // each row's column indices and merge.
        let nnz = self.values.len();
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        // Scatter into row buckets.
        let mut bucket_cols = vec![0usize; nnz];
        let mut bucket_vals = vec![0.0f64; nnz];
        let mut next = row_counts.clone();
        for k in 0..nnz {
            let r = self.rows[k];
            let p = next[r];
            bucket_cols[p] = self.cols[k];
            bucket_vals[p] = self.values[k];
            next[r] += 1;
        }
        // Per row: sort by column and merge duplicates.
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut data = Vec::with_capacity(nnz);
        indptr.push(0);
        let mut order: Vec<usize> = Vec::new();
        for r in 0..self.nrows {
            let start = row_counts[r];
            let end = row_counts[r + 1];
            order.clear();
            order.extend(start..end);
            order.sort_unstable_by_key(|&k| bucket_cols[k]);
            let mut i = 0;
            while i < order.len() {
                let col = bucket_cols[order[i]];
                let mut val = bucket_vals[order[i]];
                let mut j = i + 1;
                while j < order.len() && bucket_cols[order[j]] == col {
                    val += bucket_vals[order[j]];
                    j += 1;
                }
                indices.push(col);
                data.push(val);
                i = j;
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, data)
            // lint: allow(L001, compression sorts and bounds-checks entries, so the CSR invariants hold)
            .expect("triplet compression produced a valid CSR matrix")
    }

    /// Compresses to CSC, summing duplicate entries.
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csr().to_csc()
    }
}

impl FromIterator<(usize, usize, f64)> for TripletMatrix {
    /// Builds a triplet matrix whose shape is the smallest that fits all
    /// provided entries.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f64)>>(iter: I) -> Self {
        let mut rows = Vec::new();
        let mut cols = Vec::new();
        let mut values = Vec::new();
        let mut nrows = 0;
        let mut ncols = 0;
        for (r, c, v) in iter {
            nrows = nrows.max(r + 1);
            ncols = ncols.max(c + 1);
            rows.push(r);
            cols.push(c);
            values.push(v);
        }
        TripletMatrix {
            nrows,
            ncols,
            rows,
            cols,
            values,
        }
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_compresses_to_empty_csr() {
        let t = TripletMatrix::new(3, 4);
        assert!(t.is_empty());
        let a = t.to_csr();
        assert_eq!(a.nrows(), 3);
        assert_eq!(a.ncols(), 4);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 2.5);
        t.push(1, 1, -1.0);
        t.push(1, 0, 4.0);
        let a = t.to_csr();
        assert_eq!(a.nnz(), 3);
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 1), -1.0);
        assert_eq!(a.get(1, 0), 4.0);
        assert_eq!(a.get(0, 1), 0.0);
    }

    #[test]
    fn symmetric_pair_stamp_matches_conductance_stamp() {
        let mut t = TripletMatrix::new(3, 3);
        t.add_symmetric_pair(0, 2, 2.0);
        t.add_to_ground(1, 5.0);
        let a = t.to_csr();
        assert_eq!(a.get(0, 0), 2.0);
        assert_eq!(a.get(2, 2), 2.0);
        assert_eq!(a.get(0, 2), -2.0);
        assert_eq!(a.get(2, 0), -2.0);
        assert_eq!(a.get(1, 1), 5.0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_push_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn from_iterator_infers_shape() {
        let t: TripletMatrix = vec![(0, 0, 1.0), (3, 2, 2.0)].into_iter().collect();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 2);
    }

    #[test]
    fn extend_scaled_adds_scaled_copy() {
        let mut a = TripletMatrix::new(2, 2);
        a.push(0, 0, 1.0);
        let mut b = TripletMatrix::new(2, 2);
        b.push(0, 0, 2.0);
        b.push(1, 1, 3.0);
        a.extend_scaled(&b, 0.5);
        let m = a.to_csr();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 1.5);
    }

    #[test]
    fn rows_are_sorted_after_compression() {
        let mut t = TripletMatrix::new(1, 5);
        t.push(0, 4, 4.0);
        t.push(0, 1, 1.0);
        t.push(0, 3, 3.0);
        let a = t.to_csr();
        let (cols, vals) = a.row(0);
        assert_eq!(cols, &[1, 3, 4]);
        assert_eq!(vals, &[1.0, 3.0, 4.0]);
    }
}
