//! Sparse linear algebra substrate for the OPERA power-grid analysis suite.
//!
//! The DATE 2005 OPERA paper relies on an industrial sparse solver to
//! factorise the (augmented) MNA matrices of power grids with tens of
//! thousands to hundreds of thousands of nodes. This crate provides that
//! substrate from scratch:
//!
//! * [`TripletMatrix`] — coordinate-format builder for assembling stamps.
//! * [`CsrMatrix`] / [`CscMatrix`] — compressed row/column storage with the
//!   usual kernels (mat-vec, transpose, add, scale, pattern queries).
//! * [`Permutation`], [`ordering`] — fill-reducing orderings: quotient-graph
//!   approximate minimum degree (the default), reverse Cuthill–McKee, and
//!   exact greedy minimum degree.
//! * [`CholeskyFactor`] / [`SymbolicCholesky`] / [`Supernodes`] — sparse
//!   `L·Lᵀ` factorisation: symbolic analysis via the elimination tree
//!   (including the full factor pattern and its fundamental-supernode
//!   partition) + a supernodal dense-panel numeric phase, for the symmetric
//!   positive definite matrices produced by RC power grids.
//! * [`LuFactor`] — left-looking sparse LU with partial pivoting as a
//!   general-purpose fallback.
//! * [`MatrixFactor`] — one handle over "Cholesky, or LU when the matrix is
//!   not SPD", the factorisation policy shared by all OPERA solve paths.
//! * [`cg`] — preconditioned conjugate gradient (Jacobi and IC(0)
//!   preconditioners) for very large grids where a direct factorisation is
//!   not wanted.
//! * [`Panel`] / [`SolveWorkspace`] — column-major multi-RHS panels and
//!   reusable scratch arenas: the factor-once/solve-thousands hot loop of
//!   every transient runs through blocked panel triangular kernels with zero
//!   steady-state heap allocations.
//! * [`DenseMatrix`] — small dense kernels used by quadrature and tests.
//!
//! # Example
//!
//! ```
//! use opera_sparse::{TripletMatrix, CholeskyFactor};
//!
//! # fn main() -> Result<(), opera_sparse::SparseError> {
//! // 2x2 SPD system: [[4, 1], [1, 3]] x = [1, 2]
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let a = t.to_csr();
//! let chol = CholeskyFactor::factor(&a)?;
//! let x = chol.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod cholesky;
mod csc;
mod csr;
mod dense;
mod error;
mod etree;
mod factor;
mod lu;
mod panel;
mod permutation;
mod simd;
mod supernodal;
mod triangular;
mod triplet;

pub mod cg;
pub mod invariants;
pub mod ordering;

pub use cholesky::{cholesky_solve, CholeskyFactor, OrderingChoice, SymbolicCholesky};
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use etree::{column_counts, elimination_tree, postorder};
pub use factor::MatrixFactor;
pub use lu::LuFactor;
pub use panel::{Panel, SolveWorkspace};
pub use permutation::Permutation;
pub use supernodal::Supernodes;
pub use triangular::{
    solve_lower_csc, solve_lower_csc_panel, solve_lower_transpose_csc,
    solve_lower_transpose_csc_panel, solve_upper_csc, solve_upper_csc_panel,
};
pub use triplet::TripletMatrix;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
