//! Compressed sparse row (CSR) matrix.

use crate::{CscMatrix, DenseMatrix, Result, SparseError, TripletMatrix};

/// A sparse matrix in compressed sparse row format.
///
/// Row `i` occupies `indices[indptr[i]..indptr[i+1]]` (column indices, sorted
/// ascending and unique) and the matching slice of `data`.
///
/// # Example
///
/// ```
/// use opera_sparse::CsrMatrix;
///
/// let a = CsrMatrix::identity(3).scaled(2.0);
/// let y = a.matvec(&[1.0, 2.0, 3.0]);
/// assert_eq!(y, vec![2.0, 4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if `indptr` has the wrong
    /// length, is not non-decreasing, or column indices are out of bounds or
    /// unsorted within a row.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure {
                reason: format!(
                    "indptr length {} != nrows + 1 = {}",
                    indptr.len(),
                    nrows + 1
                ),
            });
        }
        if indices.len() != data.len() {
            return Err(SparseError::InvalidStructure {
                reason: "indices and data lengths differ".to_string(),
            });
        }
        if *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(SparseError::InvalidStructure {
                reason: "last indptr entry does not equal nnz".to_string(),
            });
        }
        for i in 0..nrows {
            if indptr[i] > indptr[i + 1] {
                return Err(SparseError::InvalidStructure {
                    reason: format!("indptr decreases at row {i}"),
                });
            }
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::InvalidStructure {
                        reason: format!("unsorted or duplicate column indices in row {i}"),
                    });
                }
            }
            if let Some(&last) = row.last() {
                if last >= ncols {
                    return Err(SparseError::InvalidStructure {
                        reason: format!("column index {last} out of bounds in row {i}"),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        })
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![1.0; n],
        }
    }

    /// Creates an `nrows`×`ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: diag.to_vec(),
        }
    }

    /// Builds a CSR matrix from a dense row-major slice.
    ///
    /// Entries with absolute value `<= drop_tol` are not stored.
    pub fn from_dense(rows: usize, cols: usize, values: &[f64], drop_tol: f64) -> Self {
        assert_eq!(values.len(), rows * cols, "dense data has wrong length");
        let mut t = TripletMatrix::new(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                let v = values[i * cols + j];
                if v.abs() > drop_tol {
                    t.push(i, j, v);
                }
            }
        }
        t.to_csr()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Row pointer array (length `nrows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the stored values (pattern is fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Returns the value at `(i, j)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Dense matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product writing into a preallocated output buffer.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.nrows, "matvec output dimension mismatch");
        for (i, out) in y.iter_mut().enumerate() {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k]];
            }
            *out = acc;
        }
    }

    /// Accumulating matrix-vector product `y += alpha · A·x`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions do not match.
    pub fn matvec_acc(&self, x: &[f64], alpha: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.nrows, "matvec output dimension mismatch");
        for (i, out) in y.iter_mut().enumerate() {
            let lo = self.indptr[i];
            let hi = self.indptr[i + 1];
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.data[k] * x[self.indices[k]];
            }
            *out += alpha * acc;
        }
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> CsrMatrix {
        // Transposing CSR is the same as reinterpreting as CSC and converting.
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![0.0; self.nnz()];
        for i in 0..self.nrows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let c = self.indices[k];
                let p = indptr[c];
                indices[p] = i;
                data[p] = self.data[k];
                indptr[c] += 1;
            }
        }
        // Shift back.
        for j in (1..=self.ncols).rev() {
            indptr[j] = indptr[j - 1];
        }
        indptr[0] = 0;
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr,
            indices,
            data,
        }
    }

    /// Converts to compressed sparse column format.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        CscMatrix::from_transposed_csr(t)
    }

    /// Converts to a dense matrix (row-major). Intended for tests and small
    /// matrices only.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                d[(i, j)] = v;
            }
        }
        d
    }

    /// Returns a copy with every stored value multiplied by `alpha`.
    pub fn scaled(&self, alpha: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= alpha;
        }
        out
    }

    /// Multiplies every stored value by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Computes `self + alpha * other` (general sparse addition; the result
    /// pattern is the union of both patterns).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the shapes differ.
    pub fn add_scaled(&self, other: &CsrMatrix, alpha: f64) -> Result<CsrMatrix> {
        if (self.nrows, self.ncols) != (other.nrows, other.ncols) {
            return Err(SparseError::DimensionMismatch {
                op: "add_scaled",
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut data = Vec::with_capacity(self.nnz() + other.nnz());
        indptr.push(0);
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = other.row(i);
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                let next_a = ca.get(p).copied().unwrap_or(usize::MAX);
                let next_b = cb.get(q).copied().unwrap_or(usize::MAX);
                if next_a < next_b {
                    indices.push(next_a);
                    data.push(va[p]);
                    p += 1;
                } else if next_b < next_a {
                    indices.push(next_b);
                    data.push(alpha * vb[q]);
                    q += 1;
                } else {
                    indices.push(next_a);
                    data.push(va[p] + alpha * vb[q]);
                    p += 1;
                    q += 1;
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            data,
        })
    }

    /// Extracts the diagonal as a dense vector (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (i, item) in d.iter_mut().enumerate() {
            *item = self.get(i, i);
        }
        d
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute value of `A - Aᵀ` over all entries; zero for a
    /// (numerically) symmetric matrix.
    pub fn asymmetry(&self) -> f64 {
        if self.nrows != self.ncols {
            return f64::INFINITY;
        }
        let t = self.transpose();
        let mut max = 0.0f64;
        for i in 0..self.nrows {
            let (ca, va) = self.row(i);
            let (cb, vb) = t.row(i);
            let (mut p, mut q) = (0, 0);
            while p < ca.len() || q < cb.len() {
                let next_a = ca.get(p).copied().unwrap_or(usize::MAX);
                let next_b = cb.get(q).copied().unwrap_or(usize::MAX);
                if next_a < next_b {
                    max = max.max(va[p].abs());
                    p += 1;
                } else if next_b < next_a {
                    max = max.max(vb[q].abs());
                    q += 1;
                } else {
                    max = max.max((va[p] - vb[q]).abs());
                    p += 1;
                    q += 1;
                }
            }
        }
        max
    }

    /// Returns `true` if the matrix is square and symmetric to within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        self.nrows == self.ncols && self.asymmetry() <= tol
    }

    /// Computes the residual infinity norm `‖A·x − b‖∞`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions do not match.
    pub fn residual_inf_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.nrows, "rhs dimension mismatch");
        let ax = self.matvec(x);
        ax.iter()
            .zip(b)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        CsrMatrix::from_dense(3, 3, &[1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0, 5.0], 0.0)
    }

    #[test]
    fn get_returns_stored_and_zero_entries() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn matvec_matches_dense_computation() {
        let a = sample();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn matvec_acc_accumulates() {
        let a = CsrMatrix::identity(2);
        let mut y = vec![1.0, 1.0];
        a.matvec_acc(&[2.0, 3.0], 0.5, &mut y);
        assert_eq!(y, vec![2.0, 2.5]);
    }

    #[test]
    fn transpose_is_involutive() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
        assert_eq!(a.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn add_scaled_merges_patterns() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, 2.0], 0.0);
        let b = CsrMatrix::from_dense(2, 2, &[0.0, 3.0, 0.0, 4.0], 0.0);
        let c = a.add_scaled(&b, 2.0).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 6.0);
        assert_eq!(c.get(1, 1), 10.0);
        assert_eq!(c.nnz(), 3);
    }

    #[test]
    fn add_scaled_rejects_mismatched_shapes() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(3, 2);
        assert!(matches!(
            a.add_scaled(&b, 1.0),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, -1.0, 2.0], 0.0);
        assert!(sym.is_symmetric(0.0));
        let asym = CsrMatrix::from_dense(2, 2, &[2.0, -1.0, 1.0, 2.0], 0.0);
        assert!(!asym.is_symmetric(1e-12));
        assert!((asym.asymmetry() - 2.0).abs() < 1e-15);
    }

    #[test]
    fn diagonal_and_norm() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0).sqrt();
        assert!((a.frobenius_norm() - expected).abs() < 1e-14);
    }

    #[test]
    fn invalid_structure_is_rejected() {
        // indptr too short
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // unsorted columns
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // out of bounds column
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
    }

    #[test]
    fn iter_visits_all_entries() {
        let a = sample();
        let entries: Vec<_> = a.iter().collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 0, 4.0)));
    }

    #[test]
    fn residual_norm_is_zero_for_exact_solution() {
        let a = CsrMatrix::identity(3);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(a.residual_inf_norm(&x, &x), 0.0);
    }
}
