//! Fill-reducing and bandwidth-reducing node orderings.
//!
//! Power-grid conductance matrices are essentially 2-D mesh Laplacians.
//! Reverse Cuthill–McKee (RCM) keeps the factor band small and is linear in
//! the number of nonzeros, which makes it the default ordering for the
//! Cholesky factorisation used by OPERA. A greedy minimum-degree ordering is
//! also provided; it usually produces less fill on irregular patterns at a
//! higher ordering cost.

use crate::{CscMatrix, Permutation};

/// Adjacency structure (undirected graph) of the nonzero pattern of a square
/// sparse matrix, ignoring the diagonal.
fn adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "ordering requires a square matrix");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let (rows, _) = a.col(j);
        for &i in rows {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Computes a reverse Cuthill–McKee ordering of the symmetric pattern of `a`.
///
/// The returned permutation `p` is meant to be used as a symmetric
/// permutation `P·A·Pᵀ` via [`CscMatrix::permute_symmetric`]; `p.get(i)` is
/// the original node placed at position `i`.
///
/// # Example
///
/// ```
/// use opera_sparse::{TripletMatrix, ordering};
///
/// // 1-D chain 0-1-2-3: already banded, RCM returns some valid permutation.
/// let mut t = TripletMatrix::new(4, 4);
/// for i in 0..3 {
///     t.add_symmetric_pair(i, i + 1, 1.0);
/// }
/// let p = ordering::reverse_cuthill_mckee(&t.to_csc());
/// assert_eq!(p.len(), 4);
/// ```
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let adj = adjacency(a);
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    // Process every connected component, starting each BFS from a node of
    // minimal degree (a pseudo-peripheral heuristic good enough for meshes).
    let mut nodes_by_degree: Vec<usize> = (0..n).collect();
    nodes_by_degree.sort_unstable_by_key(|&i| degree[i]);

    for &start in &nodes_by_degree {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neighbours: Vec<usize> =
                adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            neighbours.sort_unstable_by_key(|&v| degree[v]);
            for v in neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("RCM produces a valid permutation")
}

/// Computes a greedy minimum-degree ordering of the symmetric pattern of `a`.
///
/// At each step the node with the currently smallest degree is eliminated and
/// its neighbours are pairwise connected (clique update). This is the textbook
/// minimum-degree algorithm without supernodes or multiple elimination; it is
/// intended for moderately sized matrices (up to a few tens of thousands of
/// nodes) where its fill reduction pays for the ordering time.
pub fn minimum_degree(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = adjacency(a)
        .into_iter()
        .map(|l| l.into_iter().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for _ in 0..n {
        // Pick the non-eliminated node with minimum current degree.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Connect the remaining neighbours of v into a clique and remove v.
        let neighbours: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &neighbours {
            adj[u].remove(&v);
        }
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                let (a_, b_) = (neighbours[i], neighbours[j]);
                adj[a_].insert(b_);
                adj[b_].insert(a_);
            }
        }
        adj[v].clear();
    }
    Permutation::from_vec(order).expect("minimum degree produces a valid permutation")
}

/// Bandwidth of the symmetric pattern of `a` (maximum `|i - j|` over stored
/// entries). Useful to check that RCM actually reduced the band.
pub fn bandwidth(a: &CscMatrix) -> usize {
    let mut bw = 0usize;
    for j in 0..a.ncols() {
        let (rows, _) = a.col(j);
        for &i in rows {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// Builds the Laplacian (plus identity, to be SPD) of an `nx` × `ny` grid.
    fn grid_matrix(nx: usize, ny: usize) -> CscMatrix {
        let n = nx * ny;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 1.0);
                if x + 1 < nx {
                    t.add_symmetric_pair(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    t.add_symmetric_pair(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        let a = grid_matrix(8, 8);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 64);
        let permuted = a.permute_symmetric(&p).unwrap();
        // On an 8x8 grid with natural ordering, the bandwidth is 8; RCM should
        // not make it dramatically worse (it typically keeps it at ~8).
        assert!(bandwidth(&permuted) <= bandwidth(&a) + 2);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint edges: 0-1 and 2-3, plus an isolated node 4.
        let mut t = TripletMatrix::new(5, 5);
        t.add_symmetric_pair(0, 1, 1.0);
        t.add_symmetric_pair(2, 3, 1.0);
        t.push(4, 4, 1.0);
        let p = reverse_cuthill_mckee(&t.to_csc());
        assert_eq!(p.len(), 5);
        // All nodes must appear exactly once (from_vec validates this).
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        let a = grid_matrix(5, 5);
        let p = minimum_degree(&a);
        assert_eq!(p.len(), 25);
    }

    #[test]
    fn minimum_degree_orders_leaves_of_a_star_first() {
        // Star graph: node 0 connected to 1..5. Minimum degree must eliminate
        // several leaves (degree 1) before it can touch the hub (degree 5);
        // the hub only becomes eligible once its degree has dropped to the
        // minimum, i.e. it cannot be among the first four eliminations.
        let mut t = TripletMatrix::new(6, 6);
        for i in 1..6 {
            t.add_symmetric_pair(0, i, 1.0);
        }
        let p = minimum_degree(&t.to_csc());
        assert!(
            p.position_of(0) >= 4,
            "hub eliminated too early (position {})",
            p.position_of(0)
        );
    }

    #[test]
    fn bandwidth_of_diagonal_matrix_is_zero() {
        let a = CscMatrix::identity(10);
        assert_eq!(bandwidth(&a), 0);
    }
}
