//! Fill-reducing and bandwidth-reducing node orderings.
//!
//! Power-grid conductance matrices are essentially 2-D mesh Laplacians.
//! Three ordering families are provided:
//!
//! * [`approximate_minimum_degree`] — AMD on a quotient graph with element
//!   absorption, supernode (indistinguishable-node) merging and approximate
//!   external degrees. Minimum-degree-quality fill in near-linear time; the
//!   workspace default ([`crate::OrderingChoice::default`]).
//! * [`reverse_cuthill_mckee`] — RCM keeps the factor band small and is
//!   linear in the number of nonzeros, but on large meshes its banded factor
//!   carries several times more fill than AMD's.
//! * [`minimum_degree`] — the textbook greedy algorithm with explicit clique
//!   updates. Exact external degrees, but the clique insertion makes the
//!   ordering pass super-linear; kept as the fill-quality reference that AMD
//!   is measured against.
//!
//! The AMD/RCM trade-off is measured by `perf_report`'s `orderings` section
//! and documented in `docs/SPARSE.md` and `docs/PERFORMANCE.md`.

use crate::{CscMatrix, Permutation};

/// Adjacency structure (undirected graph) of the nonzero pattern of a square
/// sparse matrix, ignoring the diagonal.
fn adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "ordering requires a square matrix");
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let (rows, _) = a.col(j);
        for &i in rows {
            if i != j {
                adj[i].push(j);
                adj[j].push(i);
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    adj
}

/// Computes a reverse Cuthill–McKee ordering of the symmetric pattern of `a`.
///
/// The returned permutation `p` is meant to be used as a symmetric
/// permutation `P·A·Pᵀ` via [`CscMatrix::permute_symmetric`]; `p.get(i)` is
/// the original node placed at position `i`.
///
/// # Example
///
/// ```
/// use opera_sparse::{TripletMatrix, ordering};
///
/// // 1-D chain 0-1-2-3: already banded, RCM returns some valid permutation.
/// let mut t = TripletMatrix::new(4, 4);
/// for i in 0..3 {
///     t.add_symmetric_pair(i, i + 1, 1.0);
/// }
/// let p = ordering::reverse_cuthill_mckee(&t.to_csc());
/// assert_eq!(p.len(), 4);
/// ```
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let adj = adjacency(a);
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();

    // Process every connected component, starting each BFS from a node of
    // minimal degree (a pseudo-peripheral heuristic good enough for meshes).
    let mut nodes_by_degree: Vec<usize> = (0..n).collect();
    nodes_by_degree.sort_unstable_by_key(|&i| degree[i]);

    for &start in &nodes_by_degree {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let mut neighbours: Vec<usize> =
                adj[u].iter().copied().filter(|&v| !visited[v]).collect();
            neighbours.sort_unstable_by_key(|&v| degree[v]);
            for v in neighbours {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    order.reverse();
    // lint: allow(L001, BFS visits every vertex of every component exactly once)
    Permutation::from_vec(order).expect("RCM produces a valid permutation")
}

/// Computes a greedy minimum-degree ordering of the symmetric pattern of `a`.
///
/// At each step the node with the currently smallest degree is eliminated and
/// its neighbours are pairwise connected (clique update). This is the textbook
/// minimum-degree algorithm without supernodes or multiple elimination; it is
/// intended for moderately sized matrices (up to a few tens of thousands of
/// nodes) where its fill reduction pays for the ordering time.
pub fn minimum_degree(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let mut adj: Vec<std::collections::BTreeSet<usize>> = adjacency(a)
        .into_iter()
        .map(|l| l.into_iter().collect())
        .collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);

    for _ in 0..n {
        // Pick the non-eliminated node with minimum current degree.
        let mut best = usize::MAX;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        let v = best;
        eliminated[v] = true;
        order.push(v);
        // Connect the remaining neighbours of v into a clique and remove v.
        let neighbours: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        for &u in &neighbours {
            adj[u].remove(&v);
        }
        for i in 0..neighbours.len() {
            for j in (i + 1)..neighbours.len() {
                let (a_, b_) = (neighbours[i], neighbours[j]);
                adj[a_].insert(b_);
                adj[b_].insert(a_);
            }
        }
        adj[v].clear();
    }
    // lint: allow(L001, the elimination loop pushes each vertex exactly once)
    Permutation::from_vec(order).expect("minimum degree produces a valid permutation")
}

/// Doubly linked degree buckets used by the AMD pivot selection: bucket `d`
/// holds the live supervariables whose current approximate external degree is
/// `d`, so the minimum-degree pivot is found by scanning buckets upward from
/// the last known minimum.
struct DegreeLists {
    head: Vec<usize>,
    next: Vec<usize>,
    prev: Vec<usize>,
    /// Bucket each node is currently filed under (`NONE` when unlisted).
    bucket: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl DegreeLists {
    fn new(n: usize) -> Self {
        DegreeLists {
            head: vec![NONE; n.max(1)],
            next: vec![NONE; n],
            prev: vec![NONE; n],
            bucket: vec![NONE; n],
        }
    }

    fn insert(&mut self, i: usize, d: usize) {
        debug_assert_eq!(self.bucket[i], NONE, "node {i} already listed");
        let h = self.head[d];
        self.prev[i] = NONE;
        self.next[i] = h;
        if h != NONE {
            self.prev[h] = i;
        }
        self.head[d] = i;
        self.bucket[i] = d;
    }

    fn remove(&mut self, i: usize) {
        let d = self.bucket[i];
        if d == NONE {
            return;
        }
        let (p, nx) = (self.prev[i], self.next[i]);
        if p != NONE {
            self.next[p] = nx;
        } else {
            self.head[d] = nx;
        }
        if nx != NONE {
            self.prev[nx] = p;
        }
        self.bucket[i] = NONE;
    }
}

/// Life-cycle of a node in the AMD quotient graph: every node starts as a
/// variable, is either eliminated (becoming an element — the clique of its
/// former neighbourhood) or merged into an indistinguishable supervariable,
/// and elements in turn die when absorbed into a newer element that covers
/// them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeState {
    Variable,
    Element,
    DeadVariable,
    DeadElement,
}

/// Computes an approximate minimum degree (AMD) ordering of the symmetric
/// pattern of `a`.
///
/// This is the Amestoy–Davis–Duff algorithm on a **quotient graph**: instead
/// of inserting explicit clique edges after each elimination (the quadratic
/// cost of [`minimum_degree`]), each eliminated pivot becomes an *element*
/// that represents its clique implicitly, elements wholly covered by a newer
/// element are **absorbed** (including aggressive absorption of elements
/// whose variables all lie in the new pivot's neighbourhood), variables with
/// identical quotient-graph adjacency are merged into **supervariables**
/// (detected by hashing, eliminated together), and external degrees are
/// tracked by the upper bound
/// `d̄ᵢ = min(n − nel, d̄ᵢ + |Lk∖i|, |Aᵢ∖Lk| + |Lk∖i| + Σₑ|Lₑ∖Lk|)`
/// whose `|Lₑ∖Lk|` terms are computed for all affected elements in one pass.
/// The result is minimum-degree-quality fill at near-linear ordering cost —
/// ordering the 115 k-unknown Galerkin-augmented companion takes well under a
/// second where [`minimum_degree`] needs minutes (`docs/PERFORMANCE.md` §4).
///
/// The returned permutation follows the [`reverse_cuthill_mckee`] convention:
/// `p.get(i)` is the original node placed at elimination position `i`, to be
/// applied as `P·A·Pᵀ` via [`CscMatrix::permute_symmetric`].
///
/// # Example
///
/// ```
/// use opera_sparse::{TripletMatrix, ordering};
///
/// // Star graph: AMD eliminates degree-1 leaves before the hub.
/// let mut t = TripletMatrix::new(5, 5);
/// for i in 1..5 {
///     t.add_symmetric_pair(0, i, 1.0);
/// }
/// let p = ordering::approximate_minimum_degree(&t.to_csc());
/// assert_eq!(p.len(), 5);
/// assert_ne!(p.get(0), 0, "a leaf, not the hub, is eliminated first");
/// ```
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn approximate_minimum_degree(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "ordering requires a square matrix");
    if n == 0 {
        return Permutation::identity(0);
    }

    // Quotient-graph state. `alist` holds the original variable-variable
    // edges (pruned as they become represented by elements), `elist` the
    // elements adjacent to each variable, and `elem` the variable list of
    // each live element.
    let mut alist: Vec<Vec<usize>> = adjacency(a);
    let mut elist: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elem: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut state = vec![NodeState::Variable; n];
    // Supervariable weights (0 once merged away) and approximate external
    // degrees, both in units of represented original variables.
    let mut nv: Vec<usize> = vec![1; n];
    let mut degree: Vec<usize> = alist.iter().map(Vec::len).collect();
    // Merge forest: parent of a variable absorbed into a supervariable.
    let mut merge_parent: Vec<usize> = vec![NONE; n];

    let mut lists = DegreeLists::new(n);
    for (i, &d) in degree.iter().enumerate() {
        lists.insert(i, d);
    }

    // Round stamps replace per-round clearing of the two work arrays:
    // `mark` flags membership in the current pivot neighbourhood `Lk`,
    // `wval`/`wstamp` hold the per-element |Le \ Lk| counters.
    let mut mark = vec![0u64; n];
    let mut wstamp = vec![0u64; n];
    let mut wval = vec![0usize; n];
    let mut stamp = 0u64;

    let mut pivots: Vec<usize> = Vec::with_capacity(n);
    let mut nel = 0usize;
    let mut min_deg = 0usize;
    // Scratch reused across rounds.
    let mut lk: Vec<usize> = Vec::new();
    let mut hash_head: Vec<usize> = vec![NONE; n];
    let mut hash_next: Vec<usize> = vec![NONE; n];
    let mut hashed: Vec<usize> = Vec::new();

    while nel < n {
        // --- Pivot selection: minimum approximate degree. -----------------
        while lists.head[min_deg] == NONE {
            min_deg += 1;
        }
        let k = lists.head[min_deg];
        lists.remove(k);
        let nvk = nv[k];
        nel += nvk;
        stamp += 1;

        // --- Element construction: Lk = (A_k ∪ ⋃ L_e) \ {k}. --------------
        lk.clear();
        mark[k] = stamp;
        for &j in &alist[k] {
            if state[j] == NodeState::Variable && nv[j] > 0 && mark[j] != stamp {
                mark[j] = stamp;
                lk.push(j);
            }
        }
        for &e in &elist[k] {
            if state[e] != NodeState::Element {
                continue;
            }
            for &j in &elem[e] {
                if state[j] == NodeState::Variable && nv[j] > 0 && mark[j] != stamp {
                    mark[j] = stamp;
                    lk.push(j);
                }
            }
            // The old element's clique is covered by the new one: absorb it.
            state[e] = NodeState::DeadElement;
            elem[e] = Vec::new();
        }
        alist[k] = Vec::new();
        elist[k] = Vec::new();
        state[k] = NodeState::Element;
        pivots.push(k);

        let lk_weight: usize = lk.iter().map(|&j| nv[j]).sum();
        for &i in &lk {
            lists.remove(i);
        }

        // --- One pass over affected elements: wval[e] = |L_e \ L_k|. ------
        for &i in &lk {
            for &e in &elist[i] {
                if state[e] != NodeState::Element {
                    continue;
                }
                if wstamp[e] != stamp {
                    wstamp[e] = stamp;
                    // Compact the element's variable list while sizing it, so
                    // stale (merged) variables never accumulate.
                    elem[e].retain(|&j| state[j] == NodeState::Variable && nv[j] > 0);
                    wval[e] = elem[e].iter().map(|&j| nv[j]).sum();
                }
                wval[e] -= nv[i];
            }
        }

        // --- Approximate degree update, pruning and absorption. -----------
        for &i in &lk {
            // Edges to Lk members (and to dead variables) are now carried by
            // element k; keep only the untouched external edges.
            alist[i].retain(|&j| state[j] == NodeState::Variable && nv[j] > 0 && mark[j] != stamp);
            let a_weight: usize = alist[i].iter().map(|&j| nv[j]).sum();

            let mut d = a_weight + (lk_weight - nv[i]);
            let mut kept = 0usize;
            for e_idx in 0..elist[i].len() {
                let e = elist[i][e_idx];
                if state[e] != NodeState::Element {
                    continue;
                }
                if wval[e] == 0 {
                    // Aggressive absorption: L_e ⊆ L_k, the element is
                    // redundant everywhere.
                    state[e] = NodeState::DeadElement;
                    elem[e] = Vec::new();
                    continue;
                }
                d += wval[e];
                elist[i][kept] = e;
                kept += 1;
            }
            elist[i].truncate(kept);
            elist[i].push(k);

            let external_cap = (n - nel).saturating_sub(nv[i]);
            degree[i] = d.min(degree[i] + (lk_weight - nv[i])).min(external_cap);
        }

        // --- Supernode detection: merge indistinguishable variables. ------
        // Variables of Lk with identical quotient-graph adjacency would stay
        // tied for degree forever and produce identical factor columns;
        // hashing buckets the candidates, an exact sorted comparison
        // confirms, and the loser is folded into the winner's weight.
        hashed.clear();
        for &i in &lk {
            if nv[i] == 0 {
                continue;
            }
            let h: usize = elist[i]
                .iter()
                .chain(alist[i].iter())
                .fold(0usize, |acc, &x| acc.wrapping_add(x))
                % n;
            if hash_head[h] == NONE {
                hashed.push(h);
            }
            hash_next[i] = hash_head[h];
            hash_head[h] = i;
            alist[i].sort_unstable();
            elist[i].sort_unstable();
        }
        for &h in &hashed {
            let mut i = hash_head[h];
            hash_head[h] = NONE;
            while i != NONE {
                let mut j = hash_next[i];
                if nv[i] > 0 {
                    while j != NONE {
                        let j_next = hash_next[j];
                        if nv[j] > 0 && alist[i] == alist[j] && elist[i] == elist[j] {
                            // j is indistinguishable from i: merge. The
                            // `|Lk \ i|` term of i's degree bound counted j,
                            // which is now internal to the supervariable.
                            degree[i] = degree[i].saturating_sub(nv[j]);
                            nv[i] += nv[j];
                            nv[j] = 0;
                            state[j] = NodeState::DeadVariable;
                            merge_parent[j] = i;
                            alist[j] = Vec::new();
                            elist[j] = Vec::new();
                        }
                        j = j_next;
                    }
                }
                i = hash_next[i];
            }
        }

        // --- Refile the survivors and finalise element k. -----------------
        for &i in &lk {
            if nv[i] == 0 {
                continue;
            }
            lists.insert(i, degree[i]);
            min_deg = min_deg.min(degree[i]);
        }
        lk.retain(|&j| state[j] == NodeState::Variable && nv[j] > 0);
        if lk.is_empty() {
            state[k] = NodeState::DeadElement;
        } else {
            std::mem::swap(&mut elem[k], &mut lk);
        }
        lk.clear();
    }

    // --- Output: pivots in elimination order, merged variables expanded. --
    // Every variable absorbed into a supervariable is emitted immediately
    // after its representative (the two have identical factor structure, so
    // any relative order is optimal).
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (j, &p) in merge_parent.iter().enumerate() {
        if p != NONE {
            children[p].push(j);
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut dfs: Vec<usize> = Vec::new();
    for &k in &pivots {
        dfs.push(k);
        while let Some(v) = dfs.pop() {
            order.push(v);
            dfs.extend_from_slice(&children[v]);
        }
    }
    // lint: allow(L001, supervariable expansion emits each variable exactly once)
    Permutation::from_vec(order).expect("AMD produces a valid permutation")
}

/// Bandwidth of the symmetric pattern of `a` (maximum `|i - j|` over stored
/// entries). Useful to check that RCM actually reduced the band.
pub fn bandwidth(a: &CscMatrix) -> usize {
    let mut bw = 0usize;
    for j in 0..a.ncols() {
        let (rows, _) = a.col(j);
        for &i in rows {
            bw = bw.max(i.abs_diff(j));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// Builds the Laplacian (plus identity, to be SPD) of an `nx` × `ny` grid.
    fn grid_matrix(nx: usize, ny: usize) -> CscMatrix {
        let n = nx * ny;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 1.0);
                if x + 1 < nx {
                    t.add_symmetric_pair(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    t.add_symmetric_pair(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        let a = grid_matrix(8, 8);
        let p = reverse_cuthill_mckee(&a);
        assert_eq!(p.len(), 64);
        let permuted = a.permute_symmetric(&p).unwrap();
        // On an 8x8 grid with natural ordering, the bandwidth is 8; RCM should
        // not make it dramatically worse (it typically keeps it at ~8).
        assert!(bandwidth(&permuted) <= bandwidth(&a) + 2);
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint edges: 0-1 and 2-3, plus an isolated node 4.
        let mut t = TripletMatrix::new(5, 5);
        t.add_symmetric_pair(0, 1, 1.0);
        t.add_symmetric_pair(2, 3, 1.0);
        t.push(4, 4, 1.0);
        let p = reverse_cuthill_mckee(&t.to_csc());
        assert_eq!(p.len(), 5);
        // All nodes must appear exactly once (from_vec validates this).
    }

    #[test]
    fn minimum_degree_is_a_permutation() {
        let a = grid_matrix(5, 5);
        let p = minimum_degree(&a);
        assert_eq!(p.len(), 25);
    }

    #[test]
    fn minimum_degree_orders_leaves_of_a_star_first() {
        // Star graph: node 0 connected to 1..5. Minimum degree must eliminate
        // several leaves (degree 1) before it can touch the hub (degree 5);
        // the hub only becomes eligible once its degree has dropped to the
        // minimum, i.e. it cannot be among the first four eliminations.
        let mut t = TripletMatrix::new(6, 6);
        for i in 1..6 {
            t.add_symmetric_pair(0, i, 1.0);
        }
        let p = minimum_degree(&t.to_csc());
        assert!(
            p.position_of(0) >= 4,
            "hub eliminated too early (position {})",
            p.position_of(0)
        );
    }

    #[test]
    fn bandwidth_of_diagonal_matrix_is_zero() {
        let a = CscMatrix::identity(10);
        assert_eq!(bandwidth(&a), 0);
    }

    /// Cholesky factor nonzeros of `P·A·Pᵀ`, from the elimination tree's
    /// column counts (exact, no numeric factorisation).
    fn cholesky_fill(a: &CscMatrix, p: &Permutation) -> usize {
        let ap = a.permute_symmetric(p).unwrap();
        let parent = crate::etree::elimination_tree(&ap);
        crate::etree::column_counts(&ap, &parent).iter().sum()
    }

    #[test]
    fn amd_is_a_permutation_on_grids() {
        for (nx, ny) in [(1, 1), (2, 3), (8, 8), (13, 7)] {
            let a = grid_matrix(nx, ny);
            let p = approximate_minimum_degree(&a);
            assert_eq!(p.len(), nx * ny);
        }
    }

    #[test]
    fn amd_handles_the_empty_matrix_and_disconnected_components() {
        assert_eq!(approximate_minimum_degree(&CscMatrix::identity(0)).len(), 0);
        let mut t = TripletMatrix::new(5, 5);
        t.add_symmetric_pair(0, 1, 1.0);
        t.add_symmetric_pair(2, 3, 1.0);
        t.push(4, 4, 1.0);
        assert_eq!(approximate_minimum_degree(&t.to_csc()).len(), 5);
    }

    #[test]
    fn amd_orders_star_leaves_before_the_hub() {
        // Star graph: the hub (degree 5) only reaches the minimum degree
        // after four of the five degree-1 leaves are gone, so it cannot be
        // eliminated before position 4.
        let mut t = TripletMatrix::new(6, 6);
        for i in 1..6 {
            t.add_symmetric_pair(0, i, 1.0);
        }
        let p = approximate_minimum_degree(&t.to_csc());
        assert!(
            p.position_of(0) >= 4,
            "hub eliminated too early (position {})",
            p.position_of(0)
        );
    }

    #[test]
    fn amd_fill_is_no_worse_than_rcm_on_grids() {
        for (nx, ny) in [(8, 8), (16, 16), (20, 11)] {
            let a = grid_matrix(nx, ny);
            let amd_fill = cholesky_fill(&a, &approximate_minimum_degree(&a));
            let rcm_fill = cholesky_fill(&a, &reverse_cuthill_mckee(&a));
            assert!(
                amd_fill <= rcm_fill,
                "{nx}x{ny} grid: AMD fill {amd_fill} > RCM fill {rcm_fill}"
            );
        }
    }

    #[test]
    fn amd_fill_is_close_to_exact_minimum_degree() {
        // The approximation must stay within a modest factor of the exact
        // greedy algorithm it replaces; on small meshes they are near-equal.
        let a = grid_matrix(12, 12);
        let amd_fill = cholesky_fill(&a, &approximate_minimum_degree(&a));
        let md_fill = cholesky_fill(&a, &minimum_degree(&a));
        assert!(
            (amd_fill as f64) <= 1.25 * (md_fill as f64),
            "AMD fill {amd_fill} vs exact minimum-degree fill {md_fill}"
        );
    }

    #[test]
    fn amd_handles_a_dense_block_bordered_by_a_path() {
        // A 4-clique (all indistinguishable after the first elimination)
        // attached to a path exercises element absorption and supervariable
        // merging together.
        let mut t = TripletMatrix::new(10, 10);
        for i in 0..4 {
            for j in (i + 1)..4 {
                t.add_symmetric_pair(i, j, 1.0);
            }
        }
        for i in 4..9 {
            t.add_symmetric_pair(i, i + 1, 1.0);
        }
        t.add_symmetric_pair(3, 4, 1.0);
        let p = approximate_minimum_degree(&t.to_csc());
        assert_eq!(p.len(), 10);
    }
}
