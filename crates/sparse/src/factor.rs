//! A unified direct factorisation handle.
//!
//! Power-grid conductance and companion matrices are symmetric positive
//! definite in the nominal case, but Galerkin-augmented matrices can lose
//! numerical positive definiteness for large variation magnitudes. Callers
//! therefore routinely want "Cholesky, falling back to LU when the matrix is
//! not SPD". [`MatrixFactor`] packages that policy (and the pure-Cholesky and
//! pure-LU variants) behind one `solve` interface so downstream crates do not
//! each carry their own two-variant enum.

use crate::cholesky::CholeskyFactor;
use crate::csr::CsrMatrix;
use crate::lu::LuFactor;
use crate::panel::{Panel, SolveWorkspace};
use crate::Result;

/// A factored sparse matrix: either a sparse Cholesky factor (SPD input) or a
/// left-looking LU factor with partial pivoting (general input).
#[derive(Debug)]
pub enum MatrixFactor {
    /// Sparse Cholesky factor of an SPD matrix.
    Cholesky(CholeskyFactor),
    /// Left-looking LU factor with partial pivoting.
    Lu(LuFactor),
}

impl MatrixFactor {
    /// Factors `a` with sparse Cholesky, falling back to left-looking LU if
    /// the matrix is not numerically positive definite.
    ///
    /// # Errors
    ///
    /// Returns the LU factorisation error if both attempts fail.
    pub fn cholesky_or_lu(a: &CsrMatrix) -> Result<Self> {
        match CholeskyFactor::factor(a) {
            Ok(f) => Ok(MatrixFactor::Cholesky(f)),
            Err(_) => Ok(MatrixFactor::Lu(LuFactor::factor(a)?)),
        }
    }

    /// Factors `a` with sparse Cholesky only (no LU fallback).
    ///
    /// # Errors
    ///
    /// Returns the Cholesky error if `a` is not numerically SPD.
    pub fn cholesky(a: &CsrMatrix) -> Result<Self> {
        Ok(MatrixFactor::Cholesky(CholeskyFactor::factor(a)?))
    }

    /// Factors `a` with left-looking LU with partial pivoting, regardless of
    /// symmetry or definiteness.
    ///
    /// # Errors
    ///
    /// Returns the LU error for singular matrices.
    pub fn lu(a: &CsrMatrix) -> Result<Self> {
        Ok(MatrixFactor::Lu(LuFactor::factor(a)?))
    }

    /// Returns `true` if the factor is a Cholesky factor.
    pub fn is_cholesky(&self) -> bool {
        matches!(self, MatrixFactor::Cholesky(_))
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        match self {
            MatrixFactor::Cholesky(f) => f.dim(),
            MatrixFactor::Lu(f) => f.dim(),
        }
    }

    /// Solves `A·x = b`, allocating the result. In hot loops prefer
    /// [`MatrixFactor::solve_in_place`] with a reused [`SolveWorkspace`].
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match self {
            MatrixFactor::Cholesky(f) => f.solve(b),
            MatrixFactor::Lu(f) => f.solve(b),
        }
    }

    /// Solves `A·x = b` in place with workspace-borrowed scratch; zero heap
    /// allocations once `ws` is warm. Bit-identical to
    /// [`MatrixFactor::solve`].
    pub fn solve_in_place(&self, b: &mut [f64], ws: &mut SolveWorkspace) {
        match self {
            MatrixFactor::Cholesky(f) => f.solve_in_place(b, ws),
            MatrixFactor::Lu(f) => f.solve_in_place(b, ws),
        }
    }

    /// Solves `A·X = B` in place for every column of the panel through the
    /// blocked multi-RHS triangular kernels. Each panel column is
    /// bit-identical to [`MatrixFactor::solve`] on that column.
    pub fn solve_panel(&self, b: &mut Panel, ws: &mut SolveWorkspace) {
        match self {
            MatrixFactor::Cholesky(f) => f.solve_panel(b, ws),
            MatrixFactor::Lu(f) => f.solve_panel(b, ws),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn spd2() -> CsrMatrix {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        t.to_csr()
    }

    fn indefinite2() -> CsrMatrix {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 0.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 0.0);
        t.to_csr()
    }

    #[test]
    fn spd_matrix_takes_the_cholesky_path() {
        let a = spd2();
        let f = MatrixFactor::cholesky_or_lu(&a).unwrap();
        assert!(f.is_cholesky());
        assert_eq!(f.dim(), 2);
        let x = f.solve(&[5.0, 4.0]);
        assert!((a.residual_inf_norm(&x, &[5.0, 4.0])) < 1e-12);
    }

    #[test]
    fn non_spd_matrix_falls_back_to_lu() {
        let a = indefinite2();
        let f = MatrixFactor::cholesky_or_lu(&a).unwrap();
        assert!(!f.is_cholesky());
        let x = f.solve(&[2.0, 3.0]);
        // A swaps the entries: x = [3, 2].
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn in_place_and_panel_solves_match_on_both_variants() {
        let rhs: Vec<Vec<f64>> = (0..3).map(|k| vec![1.0 + k as f64, -2.0]).collect();
        for factor in [
            MatrixFactor::cholesky(&spd2()).unwrap(),
            MatrixFactor::lu(&indefinite2()).unwrap(),
        ] {
            let mut ws = SolveWorkspace::new();
            let mut panel = Panel::from_columns(&rhs);
            factor.solve_panel(&mut panel, &mut ws);
            for (j, b) in rhs.iter().enumerate() {
                let expected = factor.solve(b);
                assert_eq!(panel.col(j), &expected[..]);
                let mut x = b.clone();
                factor.solve_in_place(&mut x, &mut ws);
                assert_eq!(x, expected);
            }
        }
    }

    #[test]
    fn pure_variants_respect_their_contract() {
        assert!(MatrixFactor::cholesky(&indefinite2()).is_err());
        let f = MatrixFactor::lu(&spd2()).unwrap();
        assert!(!f.is_cholesky());
        let x = f.solve(&[4.0, 1.0]);
        assert!(spd2().residual_inf_norm(&x, &[4.0, 1.0]) < 1e-12);
    }
}
