//! Sparse triangular solves with dense right-hand sides.

use crate::CscMatrix;

/// Solves `L·x = b` in place, where `L` is lower triangular in CSC format
/// with the diagonal entry stored as the *first* entry of each column
/// (the layout produced by [`crate::CholeskyFactor`] and [`crate::LuFactor`]).
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_lower_csc(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in 0..n {
        let (rows, vals) = l.col(j);
        assert!(
            !rows.is_empty() && rows[0] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let xj = b[j] / vals[0];
        b[j] = xj;
        for (&i, &v) in rows.iter().zip(vals).skip(1) {
            b[i] -= v * xj;
        }
    }
}

/// Solves `Lᵀ·x = b` in place for a lower triangular `L` stored in CSC with
/// the diagonal first in each column.
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_lower_transpose_csc(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in (0..n).rev() {
        let (rows, vals) = l.col(j);
        assert!(
            !rows.is_empty() && rows[0] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let mut acc = b[j];
        for (&i, &v) in rows.iter().zip(vals).skip(1) {
            acc -= v * b[i];
        }
        b[j] = acc / vals[0];
    }
}

/// Solves `U·x = b` in place, where `U` is upper triangular in CSC format
/// with the diagonal entry stored as the *last* entry of each column.
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_upper_csc(u: &CscMatrix, b: &mut [f64]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in (0..n).rev() {
        let (rows, vals) = u.col(j);
        let last = rows.len() - 1;
        assert!(
            !rows.is_empty() && rows[last] == j,
            "missing diagonal entry in upper triangular column {j}"
        );
        let xj = b[j] / vals[last];
        b[j] = xj;
        for (&i, &v) in rows.iter().zip(vals).take(last) {
            b[i] -= v * xj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn lower_example() -> CscMatrix {
        // L = [ 2 0 0 ]
        //     [ 1 3 0 ]
        //     [ 4 5 6 ]
        let mut t = TripletMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (2, 0, 4.0),
            (1, 1, 3.0),
            (2, 1, 5.0),
            (2, 2, 6.0),
        ] {
            t.push(i, j, v);
        }
        t.to_csc()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = lower_example();
        let x_true = [1.0, -1.0, 0.5];
        let mut b = l.matvec(&x_true);
        solve_lower_csc(&l, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn lower_transpose_solve_matches_dense() {
        let l = lower_example();
        let lt = l.to_csr(); // CSR of L is CSC-like of Lᵀ but we just need matvec
        let x_true = [2.0, 0.0, -3.0];
        // b = Lᵀ x  computed via  (xᵀ L)ᵀ
        let mut b = vec![0.0; 3];
        for (j, out) in b.iter_mut().enumerate() {
            let (rows, vals) = l.col(j);
            *out = rows.iter().zip(vals).map(|(&i, &v)| v * x_true[i]).sum();
        }
        let _ = lt;
        solve_lower_transpose_csc(&l, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn upper_solve_matches_dense() {
        // U = Lᵀ of the example above.
        let l = lower_example();
        // Build U explicitly.
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            let (rows, vals) = l.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                t.push(j, i, v); // transpose
            }
        }
        let u = t.to_csc();
        let x_true = [1.0, 2.0, 3.0];
        let mut b = u.matvec(&x_true);
        solve_upper_csc(&u, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    #[should_panic]
    fn missing_diagonal_is_detected() {
        // Strictly lower triangular column 0 has no diagonal.
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        let l = t.to_csc();
        let mut b = vec![1.0, 1.0];
        solve_lower_csc(&l, &mut b);
    }
}
