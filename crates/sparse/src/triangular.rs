//! Sparse triangular solves with dense right-hand sides.
//!
//! Two families of kernels live here:
//!
//! * scalar solves ([`solve_lower_csc`], [`solve_lower_transpose_csc`],
//!   [`solve_upper_csc`]) operating on one right-hand side, and
//! * blocked multi-RHS **panel** solves ([`solve_lower_csc_panel`],
//!   [`solve_lower_transpose_csc_panel`], [`solve_upper_csc_panel`])
//!   operating on a column-major [`Panel`] of `k` right-hand sides.
//!
//! The panel kernels sweep each factor column across *all* panel columns in
//! one pass, register-blocked over strips of eight right-hand sides: the
//! factor's index/value arrays — the dominant memory traffic of a sparse
//! triangular solve — are streamed once per strip instead of once per RHS.
//! Within each panel column the floating-point operations are performed in
//! exactly the scalar order, so panel results are bit-identical to solving
//! the columns one at a time (property-tested in
//! `tests/property_tests.rs`).
//!
//! When a vector backend is active (`OPERA_SIMD` or the engine knob — see
//! `opera_simd::active`), the panel kernels route each strip through the
//! interleaved AVX2/AVX-512 path in [`crate::simd`] instead of the scalar
//! strip macros below. The vector path is bit-identical to the scalar one
//! (no FMA contraction, lanes along the independent RHS axis), which the
//! tests here and `tests/property_simd.rs` pin for every available backend.

use crate::{CscMatrix, Panel};

// Every kernel below runs on the per-step transient path; the region-wide
// static no-allocation guarantee complements the runtime SolveWorkspace
// allocation counter.
// lint: hot(triangular-kernels)

/// Solves `L·x = b` in place, where `L` is lower triangular in CSC format
/// with the diagonal entry stored as the *first* entry of each column
/// (the layout produced by [`crate::CholeskyFactor`] and [`crate::LuFactor`]).
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_lower_csc(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in 0..n {
        let (rows, vals) = l.col(j);
        assert!(
            !rows.is_empty() && rows[0] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let xj = b[j] / vals[0];
        b[j] = xj;
        for (&i, &v) in rows.iter().zip(vals).skip(1) {
            b[i] -= v * xj;
        }
    }
}

/// Solves `Lᵀ·x = b` in place for a lower triangular `L` stored in CSC with
/// the diagonal first in each column.
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_lower_transpose_csc(l: &CscMatrix, b: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(l.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in (0..n).rev() {
        let (rows, vals) = l.col(j);
        assert!(
            !rows.is_empty() && rows[0] == j,
            "missing diagonal entry in lower triangular column {j}"
        );
        let mut acc = b[j];
        for (&i, &v) in rows.iter().zip(vals).skip(1) {
            acc -= v * b[i];
        }
        b[j] = acc / vals[0];
    }
}

/// Solves `U·x = b` in place, where `U` is upper triangular in CSC format
/// with the diagonal entry stored as the *last* entry of each column.
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing/zero.
pub fn solve_upper_csc(u: &CscMatrix, b: &mut [f64]) {
    let n = u.ncols();
    assert_eq!(u.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.len(), n, "rhs dimension mismatch");
    for j in (0..n).rev() {
        let (rows, vals) = u.col(j);
        let last = rows.len() - 1;
        assert!(
            !rows.is_empty() && rows[last] == j,
            "missing diagonal entry in upper triangular column {j}"
        );
        let xj = b[j] / vals[last];
        b[j] = xj;
        for (&i, &v) in rows.iter().zip(vals).take(last) {
            b[i] -= v * xj;
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked multi-RHS panel kernels.
//
// Each macro expands one strip kernel for 1..=STRIP simultaneous right-hand
// sides: the outer loop walks the factor columns, the inner loop streams the
// column's off-diagonal entries once and applies them to every RHS in the
// strip. The per-RHS operation order matches the scalar kernels exactly, so
// each panel column is bit-identical to a scalar solve of that column.
// ---------------------------------------------------------------------------

/// Width of the register-blocked RHS strips. Eight simultaneous right-hand
/// sides stream the factor once for the common order-2 Galerkin panel
/// (`P = 6`) and keep the per-column accumulators comfortably in registers.
const STRIP: usize = 8;

/// Splits a column-major panel buffer into strips of at most [`STRIP`]
/// columns and hands each strip to `kernel`.
fn for_each_strip(panel: &mut [f64], n: usize, mut kernel: impl FnMut(&mut [&mut [f64]])) {
    if n == 0 {
        return;
    }
    debug_assert_eq!(panel.len() % n, 0, "panel length must be a multiple of n");
    let mut rest = panel;
    while !rest.is_empty() {
        let w = (rest.len() / n).min(STRIP);
        let (strip, tail) = rest.split_at_mut(w * n);
        rest = tail;
        let mut cols: [&mut [f64]; STRIP] = Default::default();
        let mut strip = strip;
        for slot in cols.iter_mut().take(w) {
            let (head, tail) = strip.split_at_mut(n);
            *slot = head;
            strip = tail;
        }
        kernel(&mut cols[..w]);
    }
}

macro_rules! lower_strip_kernel {
    ($n:ident, $indptr:ident, $indices:ident, $data:ident, [$($x:ident / $b:ident),+]) => {{
        for j in 0..$n {
            let start = $indptr[j];
            let end = $indptr[j + 1];
            assert!(
                start < end && $indices[start] == j,
                "missing diagonal entry in lower triangular column {j}"
            );
            let d = $data[start];
            $(let $x = $b[j] / d;
            $b[j] = $x;)+
            let rows = &$indices[start + 1..end];
            let vals = &$data[start + 1..end];
            for (&i, &v) in rows.iter().zip(vals) {
                $($b[i] -= v * $x;)+
            }
        }
    }};
}

macro_rules! lower_transpose_strip_kernel {
    ($n:ident, $indptr:ident, $indices:ident, $data:ident, [$($acc:ident / $b:ident),+]) => {{
        for j in (0..$n).rev() {
            let start = $indptr[j];
            let end = $indptr[j + 1];
            assert!(
                start < end && $indices[start] == j,
                "missing diagonal entry in lower triangular column {j}"
            );
            $(let mut $acc = $b[j];)+
            let rows = &$indices[start + 1..end];
            let vals = &$data[start + 1..end];
            for (&i, &v) in rows.iter().zip(vals) {
                $($acc -= v * $b[i];)+
            }
            let d = $data[start];
            $($b[j] = $acc / d;)+
        }
    }};
}

macro_rules! upper_strip_kernel {
    ($n:ident, $indptr:ident, $indices:ident, $data:ident, [$($x:ident / $b:ident),+]) => {{
        for j in (0..$n).rev() {
            let start = $indptr[j];
            let end = $indptr[j + 1];
            assert!(
                start < end && $indices[end - 1] == j,
                "missing diagonal entry in upper triangular column {j}"
            );
            let d = $data[end - 1];
            $(let $x = $b[j] / d;
            $b[j] = $x;)+
            let rows = &$indices[start..end - 1];
            let vals = &$data[start..end - 1];
            for (&i, &v) in rows.iter().zip(vals) {
                $($b[i] -= v * $x;)+
            }
        }
    }};
}

/// Dispatches a strip of 1..=STRIP columns to the width-specialised
/// expansion of one of the kernel macros above.
macro_rules! dispatch_strip {
    ($cols:ident, $kernel:ident, $n:ident, $indptr:ident, $indices:ident, $data:ident) => {
        match $cols {
            [b0] => $kernel!($n, $indptr, $indices, $data, [x0 / b0]),
            [b0, b1] => $kernel!($n, $indptr, $indices, $data, [x0 / b0, x1 / b1]),
            [b0, b1, b2] => $kernel!($n, $indptr, $indices, $data, [x0 / b0, x1 / b1, x2 / b2]),
            [b0, b1, b2, b3] => $kernel!(
                $n,
                $indptr,
                $indices,
                $data,
                [x0 / b0, x1 / b1, x2 / b2, x3 / b3]
            ),
            [b0, b1, b2, b3, b4] => $kernel!(
                $n,
                $indptr,
                $indices,
                $data,
                [x0 / b0, x1 / b1, x2 / b2, x3 / b3, x4 / b4]
            ),
            [b0, b1, b2, b3, b4, b5] => $kernel!(
                $n,
                $indptr,
                $indices,
                $data,
                [x0 / b0, x1 / b1, x2 / b2, x3 / b3, x4 / b4, x5 / b5]
            ),
            [b0, b1, b2, b3, b4, b5, b6] => $kernel!(
                $n,
                $indptr,
                $indices,
                $data,
                [
                    x0 / b0,
                    x1 / b1,
                    x2 / b2,
                    x3 / b3,
                    x4 / b4,
                    x5 / b5,
                    x6 / b6
                ]
            ),
            [b0, b1, b2, b3, b4, b5, b6, b7] => $kernel!(
                $n,
                $indptr,
                $indices,
                $data,
                [
                    x0 / b0,
                    x1 / b1,
                    x2 / b2,
                    x3 / b3,
                    x4 / b4,
                    x5 / b5,
                    x6 / b6,
                    x7 / b7
                ]
            ),
            // lint: allow(L001, for_each_strip caps strips at STRIP columns, so wider widths cannot occur)
            _ => unreachable!("strips are at most {STRIP} columns wide"),
        }
    };
}

/// Blocked forward substitution on raw CSC arrays (diagonal stored first in
/// each column): solves `L·X = B` in place for every column of the
/// column-major `panel`. Shared by [`solve_lower_csc_panel`] and the raw
/// factor storage of [`crate::CholeskyFactor`].
pub(crate) fn lower_panel_raw(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    panel: &mut [f64],
) {
    let backend = crate::simd::panel_backend();
    if backend != opera_simd::Backend::Scalar {
        crate::simd::solve_panel_interleaved(
            opera_simd::lower_solve_interleaved,
            indptr,
            indices,
            data,
            n,
            panel,
            backend,
        );
        return;
    }
    for_each_strip(panel, n, |cols| {
        dispatch_strip!(cols, lower_strip_kernel, n, indptr, indices, data)
    });
}

/// Blocked backward substitution with the *transpose* of a lower factor on
/// raw CSC arrays (diagonal first): solves `Lᵀ·X = B` in place.
pub(crate) fn lower_transpose_panel_raw(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    panel: &mut [f64],
) {
    let backend = crate::simd::panel_backend();
    if backend != opera_simd::Backend::Scalar {
        crate::simd::solve_panel_interleaved(
            opera_simd::lower_transpose_solve_interleaved,
            indptr,
            indices,
            data,
            n,
            panel,
            backend,
        );
        return;
    }
    for_each_strip(panel, n, |cols| {
        dispatch_strip!(cols, lower_transpose_strip_kernel, n, indptr, indices, data)
    });
}

/// Blocked backward substitution on raw upper-triangular CSC arrays
/// (diagonal stored last in each column): solves `U·X = B` in place.
pub(crate) fn upper_panel_raw(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    panel: &mut [f64],
) {
    let backend = crate::simd::panel_backend();
    if backend != opera_simd::Backend::Scalar {
        crate::simd::solve_panel_interleaved(
            opera_simd::upper_solve_interleaved,
            indptr,
            indices,
            data,
            n,
            panel,
            backend,
        );
        return;
    }
    for_each_strip(panel, n, |cols| {
        dispatch_strip!(cols, upper_strip_kernel, n, indptr, indices, data)
    });
}

/// Asserts the square shape shared by all panel entry points.
fn check_panel_dims(m: &CscMatrix, b: &Panel) {
    let n = m.ncols();
    assert_eq!(m.nrows(), n, "triangular solve requires a square matrix");
    assert_eq!(b.nrows(), n, "panel row count mismatch");
}

/// Solves `L·X = B` in place for every column of `b`, where `L` is lower
/// triangular in CSC format with the diagonal stored first in each column.
/// Each panel column is bit-identical to [`solve_lower_csc`] on that column;
/// the blocked sweep only amortises the factor traffic across columns.
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing.
pub fn solve_lower_csc_panel(l: &CscMatrix, b: &mut Panel) {
    check_panel_dims(l, b);
    lower_panel_raw(l.indptr(), l.indices(), l.data(), l.ncols(), b.data_mut());
}

/// Solves `Lᵀ·X = B` in place for every column of `b` (lower triangular `L`
/// in CSC format, diagonal first). Bit-identical per column to
/// [`solve_lower_transpose_csc`].
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing.
pub fn solve_lower_transpose_csc_panel(l: &CscMatrix, b: &mut Panel) {
    check_panel_dims(l, b);
    lower_transpose_panel_raw(l.indptr(), l.indices(), l.data(), l.ncols(), b.data_mut());
}

/// Solves `U·X = B` in place for every column of `b`, where `U` is upper
/// triangular in CSC format with the diagonal stored last in each column.
/// Bit-identical per column to [`solve_upper_csc`].
///
/// # Panics
///
/// Panics if dimensions do not match or a diagonal entry is missing.
pub fn solve_upper_csc_panel(u: &CscMatrix, b: &mut Panel) {
    check_panel_dims(u, b);
    upper_panel_raw(u.indptr(), u.indices(), u.data(), u.ncols(), b.data_mut());
}

// lint: end-hot

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn lower_example() -> CscMatrix {
        // L = [ 2 0 0 ]
        //     [ 1 3 0 ]
        //     [ 4 5 6 ]
        let mut t = TripletMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 2.0),
            (1, 0, 1.0),
            (2, 0, 4.0),
            (1, 1, 3.0),
            (2, 1, 5.0),
            (2, 2, 6.0),
        ] {
            t.push(i, j, v);
        }
        t.to_csc()
    }

    #[test]
    fn lower_solve_matches_dense() {
        let l = lower_example();
        let x_true = [1.0, -1.0, 0.5];
        let mut b = l.matvec(&x_true);
        solve_lower_csc(&l, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn lower_transpose_solve_matches_dense() {
        let l = lower_example();
        let lt = l.to_csr(); // CSR of L is CSC-like of Lᵀ but we just need matvec
        let x_true = [2.0, 0.0, -3.0];
        // b = Lᵀ x  computed via  (xᵀ L)ᵀ
        let mut b = vec![0.0; 3];
        for (j, out) in b.iter_mut().enumerate() {
            let (rows, vals) = l.col(j);
            *out = rows.iter().zip(vals).map(|(&i, &v)| v * x_true[i]).sum();
        }
        let _ = lt;
        solve_lower_transpose_csc(&l, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    #[test]
    fn upper_solve_matches_dense() {
        // U = Lᵀ of the example above.
        let l = lower_example();
        // Build U explicitly.
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            let (rows, vals) = l.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                t.push(j, i, v); // transpose
            }
        }
        let u = t.to_csc();
        let x_true = [1.0, 2.0, 3.0];
        let mut b = u.matvec(&x_true);
        solve_upper_csc(&u, &mut b);
        for (a, e) in b.iter().zip(&x_true) {
            assert!((a - e).abs() < 1e-13);
        }
    }

    /// The panel kernels must agree bit-for-bit with per-column scalar
    /// solves, for every strip width (1..=8) and the strip+tail cases,
    /// including panels wider than two full strips.
    #[test]
    fn panel_solves_are_bit_identical_to_scalar_solves() {
        let l = lower_example();
        // Upper = Lᵀ built explicitly.
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            let (rows, vals) = l.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                t.push(j, i, v);
            }
        }
        let u = t.to_csc();
        for k in (1..=9).chain([17]) {
            let columns: Vec<Vec<f64>> = (0..k)
                .map(|c| (0..3).map(|i| ((i + 2 * c) as f64 * 0.7).sin()).collect())
                .collect();
            // Forward.
            let mut panel = Panel::from_columns(&columns);
            solve_lower_csc_panel(&l, &mut panel);
            for (c, col) in columns.iter().enumerate() {
                let mut b = col.clone();
                solve_lower_csc(&l, &mut b);
                assert_eq!(panel.col(c), &b[..], "forward col {c} of {k}");
            }
            // Transpose-backward.
            let mut panel = Panel::from_columns(&columns);
            solve_lower_transpose_csc_panel(&l, &mut panel);
            for (c, col) in columns.iter().enumerate() {
                let mut b = col.clone();
                solve_lower_transpose_csc(&l, &mut b);
                assert_eq!(panel.col(c), &b[..], "transpose col {c} of {k}");
            }
            // Upper-backward.
            let mut panel = Panel::from_columns(&columns);
            solve_upper_csc_panel(&u, &mut panel);
            for (c, col) in columns.iter().enumerate() {
                let mut b = col.clone();
                solve_upper_csc(&u, &mut b);
                assert_eq!(panel.col(c), &b[..], "upper col {c} of {k}");
            }
        }
    }

    /// Every available vector backend must reproduce the scalar strip
    /// kernels bit-for-bit through the interleaved bridge, including the
    /// padded (k % 8 != 0) and multi-strip widths.
    #[test]
    fn panel_solves_are_bit_identical_under_every_backend() {
        let l = lower_example();
        let mut t = TripletMatrix::new(3, 3);
        for j in 0..3 {
            let (rows, vals) = l.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                t.push(j, i, v);
            }
        }
        let u = t.to_csc();
        for backend in opera_simd::available_backends() {
            for k in [1usize, 3, 7, 8, 9, 17] {
                let columns: Vec<Vec<f64>> = (0..k)
                    .map(|c| (0..3).map(|i| ((i + 3 * c) as f64 * 0.9).cos()).collect())
                    .collect();
                let mut expected_fwd = Panel::from_columns(&columns);
                let mut expected_bwd = Panel::from_columns(&columns);
                let mut expected_up = Panel::from_columns(&columns);
                opera_simd::set_active(opera_simd::Backend::Scalar).unwrap();
                solve_lower_csc_panel(&l, &mut expected_fwd);
                solve_lower_transpose_csc_panel(&l, &mut expected_bwd);
                solve_upper_csc_panel(&u, &mut expected_up);

                let mut fwd = Panel::from_columns(&columns);
                let mut bwd = Panel::from_columns(&columns);
                let mut up = Panel::from_columns(&columns);
                opera_simd::set_active(backend).unwrap();
                solve_lower_csc_panel(&l, &mut fwd);
                solve_lower_transpose_csc_panel(&l, &mut bwd);
                solve_upper_csc_panel(&u, &mut up);
                opera_simd::set_active(opera_simd::Backend::Scalar).unwrap();

                assert_eq!(fwd, expected_fwd, "lower backend {backend} k={k}");
                assert_eq!(bwd, expected_bwd, "transpose backend {backend} k={k}");
                assert_eq!(up, expected_up, "upper backend {backend} k={k}");
            }
        }
    }

    #[test]
    fn empty_panel_is_a_noop() {
        let l = lower_example();
        let mut empty = Panel::zeros(3, 0);
        solve_lower_csc_panel(&l, &mut empty);
        solve_lower_transpose_csc_panel(&l, &mut empty);
        assert_eq!(empty.ncols(), 0);
    }

    #[test]
    #[should_panic]
    fn panel_missing_diagonal_is_detected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        let l = t.to_csc();
        let mut b = Panel::zeros(2, 2);
        solve_lower_csc_panel(&l, &mut b);
    }

    #[test]
    #[should_panic]
    fn missing_diagonal_is_detected() {
        // Strictly lower triangular column 0 has no diagonal.
        let mut t = TripletMatrix::new(2, 2);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        let l = t.to_csc();
        let mut b = vec![1.0, 1.0];
        solve_lower_csc(&l, &mut b);
    }
}
