//! Preconditioned conjugate gradient solver.
//!
//! For the largest power grids (hundreds of thousands of nodes) a direct
//! factorisation can be memory hungry; the paper notes that iterative block
//! solvers with appropriate preconditioners can be used instead. This module
//! provides a standard preconditioned CG for symmetric positive definite
//! systems together with Jacobi and zero-fill incomplete Cholesky
//! preconditioners.

use crate::{CscMatrix, CsrMatrix, Result, SparseError, TripletMatrix};

/// A symmetric positive definite preconditioner `M ≈ A` applied as `z = M⁻¹ r`.
pub trait Preconditioner {
    /// Applies the preconditioner to a residual vector.
    fn apply(&self, r: &[f64]) -> Vec<f64>;
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.to_vec()
    }
}

/// Diagonal (Jacobi) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the diagonal of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] if any diagonal entry is
    /// not strictly positive.
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        let diag = a.diagonal();
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, d) in diag.iter().enumerate() {
            if *d <= 0.0 {
                return Err(SparseError::NotPositiveDefinite {
                    column: i,
                    pivot: *d,
                });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        r.iter().zip(&self.inv_diag).map(|(x, d)| x * d).collect()
    }
}

/// Zero-fill incomplete Cholesky preconditioner IC(0).
///
/// The factor keeps exactly the lower-triangular sparsity pattern of `A`.
/// Applying the preconditioner performs one forward and one backward sparse
/// triangular solve.
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    l: CscMatrix,
}

impl IncompleteCholesky {
    /// Builds the IC(0) factor of a symmetric positive definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when a pivot becomes
    /// non-positive during the incomplete factorisation (this can happen for
    /// SPD matrices that are not M-matrices; grid matrices are fine).
    pub fn new(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                shape: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let lower = a.to_csc().lower_triangle();
        // Column-oriented IC(0): process columns left to right, keeping only
        // positions present in the original lower triangle.
        let indptr = lower.indptr().to_vec();
        let indices = lower.indices().to_vec();
        let mut data = lower.data().to_vec();

        for j in 0..n {
            let start = indptr[j];
            let end = indptr[j + 1];
            if start == end || indices[start] != j {
                return Err(SparseError::InvalidStructure {
                    reason: format!("missing diagonal entry in column {j}"),
                });
            }
            let diag = data[start];
            if diag <= 0.0 {
                return Err(SparseError::NotPositiveDefinite {
                    column: j,
                    pivot: diag,
                });
            }
            let diag_sqrt = diag.sqrt();
            data[start] = diag_sqrt;
            for v in &mut data[start + 1..end] {
                *v /= diag_sqrt;
            }
            // Update the remaining columns k > j restricted to their pattern.
            for p in (start + 1)..end {
                let k = indices[p];
                let ljk = data[p];
                if ljk == 0.0 {
                    continue;
                }
                let kstart = indptr[k];
                let kend = indptr[k + 1];
                // For every entry (i, k) in column k with i >= k, subtract
                // L(i, j) * L(k, j) if (i, j) is in the pattern of column j.
                let mut pj = start + 1;
                for pk in kstart..kend {
                    let i = indices[pk];
                    // advance pj until indices[pj] >= i
                    while pj < end && indices[pj] < i {
                        pj += 1;
                    }
                    if pj < end && indices[pj] == i {
                        data[pk] -= data[pj] * ljk;
                    }
                }
            }
        }
        let l = CscMatrix::from_raw_parts(n, n, indptr, indices, data)?;
        Ok(IncompleteCholesky { l })
    }

    /// The incomplete factor `L` (lower triangular, diagonal first per column).
    pub fn lower(&self) -> &CscMatrix {
        &self.l
    }
}

impl Preconditioner for IncompleteCholesky {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = r.to_vec();
        crate::triangular::solve_lower_csc(&self.l, &mut z);
        crate::triangular::solve_lower_transpose_csc(&self.l, &mut z);
        z
    }
}

/// Options controlling the conjugate gradient iteration.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Relative residual tolerance `‖r‖₂ / ‖b‖₂`.
    pub tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: 10_000,
            tolerance: 1e-10,
        }
    }
}

/// Outcome of a conjugate gradient solve.
#[derive(Debug, Clone)]
pub struct CgSolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Solves the SPD system `A·x = b` with preconditioned conjugate gradient.
///
/// # Errors
///
/// Returns [`SparseError::DidNotConverge`] if the relative residual does not
/// fall below `options.tolerance` within `options.max_iterations` iterations,
/// and [`SparseError::NotSquare`] / [`SparseError::DimensionMismatch`] for
/// shape problems.
///
/// # Example
///
/// ```
/// use opera_sparse::{CsrMatrix, cg};
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let a = CsrMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 3.0], 0.0);
/// let sol = cg::solve(
///     &a,
///     &[1.0, 2.0],
///     &cg::JacobiPreconditioner::new(&a)?,
///     cg::CgOptions::default(),
/// )?;
/// assert!(a.residual_inf_norm(&sol.x, &[1.0, 2.0]) < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn solve(
    a: &CsrMatrix,
    b: &[f64],
    preconditioner: &impl Preconditioner,
    options: CgOptions,
) -> Result<CgSolution> {
    let _span = opera_trace::span("cg.solve");
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            shape: (a.nrows(), a.ncols()),
        });
    }
    if b.len() != a.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "cg::solve",
            left: (a.nrows(), a.ncols()),
            right: (b.len(), 1),
        });
    }
    let n = b.len();
    let norm_b = dot(b, b).sqrt();
    if norm_b == 0.0 {
        return Ok(CgSolution {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
        });
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = preconditioner.apply(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..options.max_iterations {
        opera_trace::count("cg.iterations", 1);
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(SparseError::NotPositiveDefinite {
                column: iter,
                pivot: pap,
            });
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let res = dot(&r, &r).sqrt() / norm_b;
        if res < options.tolerance {
            return Ok(CgSolution {
                x,
                iterations: iter + 1,
                relative_residual: res,
            });
        }
        z = preconditioner.apply(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    let res = dot(&r, &r).sqrt() / norm_b;
    Err(SparseError::DidNotConverge {
        iterations: options.max_iterations,
        residual: res,
    })
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Builds a small SPD test matrix: 2-D grid Laplacian plus a diagonal shift.
/// Exposed for benches and doc-tests of downstream crates.
pub fn laplacian_2d(nx: usize, ny: usize, shift: f64) -> CsrMatrix {
    let n = nx * ny;
    let idx = |x: usize, y: usize| y * nx + x;
    let mut t = TripletMatrix::new(n, n);
    for y in 0..ny {
        for x in 0..nx {
            t.push(idx(x, y), idx(x, y), shift);
            if x + 1 < nx {
                t.add_symmetric_pair(idx(x, y), idx(x + 1, y), 1.0);
            }
            if y + 1 < ny {
                t.add_symmetric_pair(idx(x, y), idx(x, y + 1), 1.0);
            }
        }
    }
    t.to_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_cg_solves_small_system() {
        let a = laplacian_2d(5, 5, 0.3);
        let x_true: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.2).cos()).collect();
        let b = a.matvec(&x_true);
        let sol = solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        assert!(a.residual_inf_norm(&sol.x, &b) < 1e-8);
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        // Badly scaled diagonal makes plain CG slow; Jacobi fixes the scaling.
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0 + 1000.0 * (i as f64 / n as f64));
            if i + 1 < n {
                t.add_symmetric_pair(i, i + 1, 0.3);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let plain = solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let jacobi = solve(
            &a,
            &b,
            &JacobiPreconditioner::new(&a).unwrap(),
            CgOptions::default(),
        )
        .unwrap();
        assert!(jacobi.iterations <= plain.iterations);
        assert!(a.residual_inf_norm(&jacobi.x, &b) < 1e-6);
    }

    #[test]
    fn incomplete_cholesky_preconditioner_converges_fast_on_grid() {
        let a = laplacian_2d(12, 12, 0.05);
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 13 % 7) as f64) - 3.0)
            .collect();
        let ic = IncompleteCholesky::new(&a).unwrap();
        let plain = solve(&a, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let pre = solve(&a, &b, &ic, CgOptions::default()).unwrap();
        assert!(pre.iterations < plain.iterations);
        assert!(a.residual_inf_norm(&pre.x, &b) < 1e-7);
    }

    #[test]
    fn ic0_is_exact_for_tridiagonal_matrices() {
        // A tridiagonal SPD matrix has no fill, so IC(0) equals the exact
        // Cholesky factor and PCG converges in very few iterations.
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5);
            if i + 1 < n {
                t.add_symmetric_pair(i, i + 1, 1.0);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let ic = IncompleteCholesky::new(&a).unwrap();
        let sol = solve(&a, &b, &ic, CgOptions::default()).unwrap();
        assert!(sol.iterations <= 3, "took {} iterations", sol.iterations);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let a = laplacian_2d(4, 4, 1.0);
        let sol = solve(
            &a,
            &vec![0.0; a.nrows()],
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn non_convergence_is_reported() {
        let a = laplacian_2d(10, 10, 0.01);
        // A non-smooth right-hand side so CG genuinely needs many iterations
        // (a constant vector is an eigenvector of the shifted Laplacian and
        // would converge in a single step).
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 37 % 11) as f64) - 5.0)
            .collect();
        let result = solve(
            &a,
            &b,
            &IdentityPreconditioner,
            CgOptions {
                max_iterations: 2,
                tolerance: 1e-14,
            },
        );
        assert!(matches!(result, Err(SparseError::DidNotConverge { .. })));
    }

    #[test]
    fn jacobi_rejects_non_positive_diagonal() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 0.0, 0.0, -1.0], 0.0);
        assert!(JacobiPreconditioner::new(&a).is_err());
    }
}
