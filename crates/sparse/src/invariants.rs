//! Structural-invariant validators for the sparse kernels.
//!
//! The factorization and solve kernels index straight into their arrays on
//! the strength of three structural invariants:
//!
//! 1. **CSC structure** — monotone `indptr`, strictly ascending in-bounds
//!    row indices per column, finite values ([`validate_csc_slices`]);
//! 2. **postorder** — the elimination-tree relabelling is a permutation
//!    that lists every vertex after all of its children
//!    ([`validate_postorder`]);
//! 3. **supernode containment** — inside a supernode spanning columns
//!    `k0..k1` with leading pattern `pat`, column `k0 + t` has exactly the
//!    pattern `pat[t..]` ([`validate_supernode_containment`]) — the suffix
//!    property that lets the numeric phase address descendant columns as
//!    contiguous `l_data` slices (`l_indptr[d0 + t] - t`).
//!
//! A violation of any of these turns into silent out-of-bounds panics or —
//! worse — quietly wrong numerics deep in the numeric phase, far from the
//! code that introduced it. The validators below are *always compiled*
//! (tests and external tools can call them on arbitrary slices); the
//! `strict-invariants` cargo feature additionally wires them into the
//! checked constructors ([`CscMatrix::from_raw_parts`],
//! [`CscMatrix::permute_symmetric`], the symbolic analysis) so every
//! construction in a test run is revalidated at the boundary.
//!
//! [`CscMatrix::from_raw_parts`]: crate::CscMatrix::from_raw_parts
//! [`CscMatrix::permute_symmetric`]: crate::CscMatrix::permute_symmetric

use crate::{Result, SparseError};

fn invalid(reason: String) -> SparseError {
    SparseError::InvalidStructure { reason }
}

/// Validates CSC (or, transposed, CSR) storage: `indptr` must be a
/// monotone ramp from 0 to `indices.len()` with one entry per column plus
/// one, every column's row indices must be strictly ascending and within
/// `0..nrows`, and every stored value must be finite.
///
/// # Errors
///
/// Returns [`SparseError::InvalidStructure`] naming the first offending
/// column/entry.
pub fn validate_csc_slices(
    nrows: usize,
    ncols: usize,
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
) -> Result<()> {
    if indptr.len() != ncols + 1 {
        return Err(invalid(format!(
            "indptr has {} entries, expected ncols + 1 = {}",
            indptr.len(),
            ncols + 1
        )));
    }
    if indptr[0] != 0 {
        return Err(invalid(format!("indptr[0] is {}, expected 0", indptr[0])));
    }
    if indptr[ncols] != indices.len() {
        return Err(invalid(format!(
            "indptr[ncols] is {} but there are {} stored indices",
            indptr[ncols],
            indices.len()
        )));
    }
    if data.len() != indices.len() {
        return Err(invalid(format!(
            "{} values for {} stored indices",
            data.len(),
            indices.len()
        )));
    }
    for j in 0..ncols {
        let (lo, hi) = (indptr[j], indptr[j + 1]);
        if lo > hi {
            return Err(invalid(format!(
                "indptr is not monotone at column {j}: {lo} > {hi}"
            )));
        }
        let rows = &indices[lo..hi];
        for (k, &i) in rows.iter().enumerate() {
            if i >= nrows {
                return Err(invalid(format!(
                    "row index {i} out of bounds (nrows = {nrows}) in column {j}"
                )));
            }
            if k > 0 && rows[k - 1] >= i {
                return Err(invalid(format!(
                    "row indices of column {j} are not strictly ascending: \
                     {} then {i}",
                    rows[k - 1]
                )));
            }
        }
    }
    if let Some(k) = data.iter().position(|v| !v.is_finite()) {
        return Err(invalid(format!(
            "non-finite value {} at storage position {k}",
            data[k]
        )));
    }
    Ok(())
}

/// Validates a postorder `post` of the elimination forest `parent`:
/// `post[k]` is the vertex visited `k`-th, every vertex is visited exactly
/// once, and every vertex is visited *after* all of its children (i.e.
/// before its parent).
///
/// # Errors
///
/// Returns [`SparseError::InvalidStructure`] naming the first vertex
/// visited out of order, or the duplicated/missing vertex.
pub fn validate_postorder(post: &[usize], parent: &[Option<usize>]) -> Result<()> {
    let n = parent.len();
    if post.len() != n {
        return Err(invalid(format!(
            "postorder visits {} vertices, forest has {n}",
            post.len()
        )));
    }
    // `position[v]` = when vertex v is visited.
    let mut position = vec![usize::MAX; n];
    for (k, &v) in post.iter().enumerate() {
        if v >= n {
            return Err(invalid(format!(
                "postorder visits vertex {v}, forest has {n}"
            )));
        }
        if position[v] != usize::MAX {
            return Err(invalid(format!("postorder visits vertex {v} twice")));
        }
        position[v] = k;
    }
    for (v, &p) in parent.iter().enumerate() {
        if let Some(p) = p {
            if p >= n {
                return Err(invalid(format!(
                    "vertex {v} has out-of-bounds parent {p} (forest has {n})"
                )));
            }
            if position[v] >= position[p] {
                return Err(invalid(format!(
                    "postorder visits vertex {v} at {} but its parent {p} \
                     earlier, at {}",
                    position[v], position[p]
                )));
            }
        }
    }
    Ok(())
}

/// Validates the supernode-containment invariant of a factor pattern: for
/// every supernode spanning columns `k0..k1` (given by the `boundaries`
/// list, `boundaries[s]..boundaries[s + 1]`), the leading column's pattern
/// `pat` must start at the diagonal (`pat[t] == k0 + t` for the panel
/// rows) and every interior column `k0 + t` must have exactly the suffix
/// pattern `pat[t..]` — the property the supernodal numeric phase relies
/// on to address descendant columns as contiguous slices.
///
/// # Errors
///
/// Returns [`SparseError::InvalidStructure`] naming the first supernode
/// and column where containment is broken.
pub fn validate_supernode_containment(
    boundaries: &[usize],
    l_indptr: &[usize],
    l_indices: &[usize],
) -> Result<()> {
    let Some(&n) = boundaries.last() else {
        return Err(invalid("empty supernode boundary list".to_string()));
    };
    if boundaries[0] != 0 {
        return Err(invalid(format!(
            "supernode boundaries start at {}, expected 0",
            boundaries[0]
        )));
    }
    if l_indptr.len() != n + 1 {
        return Err(invalid(format!(
            "factor indptr has {} entries for {n} columns",
            l_indptr.len()
        )));
    }
    for s in 0..boundaries.len() - 1 {
        let (k0, k1) = (boundaries[s], boundaries[s + 1]);
        if k0 >= k1 || k1 > n {
            return Err(invalid(format!(
                "supernode {s} spans invalid column range {k0}..{k1}"
            )));
        }
        let pat = &l_indices[l_indptr[k0]..l_indptr[k0 + 1]];
        let m = pat.len();
        let w = k1 - k0;
        if m < w {
            return Err(invalid(format!(
                "supernode {s} is {w} columns wide but its leading pattern \
                 has only {m} rows"
            )));
        }
        for t in 0..w {
            if pat[t] != k0 + t {
                return Err(invalid(format!(
                    "supernode {s}: leading pattern row {t} is {} instead of \
                     the panel diagonal {}",
                    pat[t],
                    k0 + t
                )));
            }
            let col = &l_indices[l_indptr[k0 + t]..l_indptr[k0 + t + 1]];
            if col != &pat[t..] {
                return Err(invalid(format!(
                    "supernode {s}: column {} does not have the suffix \
                     pattern of its supernode ({} rows vs {} expected)",
                    k0 + t,
                    col.len(),
                    m - t
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_csc_passes() {
        // 2x2: col 0 = rows {0,1}, col 1 = row {1}.
        assert!(validate_csc_slices(2, 2, &[0, 2, 3], &[0, 1, 1], &[1.0, 2.0, 3.0]).is_ok());
    }

    #[test]
    fn postorder_of_a_chain() {
        // 0 -> 1 -> 2 (parent pointers), postorder must visit 0,1,2.
        let parent = [Some(1), Some(2), None];
        assert!(validate_postorder(&[0, 1, 2], &parent).is_ok());
        assert!(validate_postorder(&[2, 1, 0], &parent).is_err());
    }

    #[test]
    fn containment_of_a_two_column_supernode() {
        // Columns 0,1 share the pattern {0,1,2}/{1,2}; column 2 is {2}.
        let l_indptr = [0, 3, 5, 6];
        let l_indices = [0, 1, 2, 1, 2, 2];
        assert!(validate_supernode_containment(&[0, 2, 3], &l_indptr, &l_indices).is_ok());
    }
}
