//! Small dense matrix kernels.
//!
//! These are used for quadrature Gram matrices, for verifying sparse results
//! in tests, and for the dense fallback paths of very small systems. They are
//! deliberately simple (O(n³) LU with partial pivoting) — large systems go
//! through the sparse kernels.

use std::ops::{Index, IndexMut};

use crate::{Result, SparseError};

/// A dense row-major matrix of `f64`.
///
/// # Example
///
/// ```
/// use opera_sparse::DenseMatrix;
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let a = DenseMatrix::from_rows(2, 2, &[4.0, 1.0, 1.0, 3.0]);
/// let x = a.solve(&[1.0, 2.0])?;
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense data has wrong length");
        DenseMatrix {
            nrows,
            ncols,
            data: data.to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (i, out) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            *out = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Matrix-matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.ncols, other.nrows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Maximum absolute difference with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Solves `A·x = b` using LU with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square matrices and
    /// [`SparseError::Singular`] when a pivot is numerically zero.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                shape: (self.nrows, self.ncols),
            });
        }
        assert_eq!(b.len(), self.nrows, "rhs dimension mismatch");
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        let mut piv: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting.
            let mut p = k;
            let mut best = a[piv[k] * n + k].abs();
            for (idx, &row) in piv.iter().enumerate().skip(k + 1) {
                let v = a[row * n + k].abs();
                if v > best {
                    best = v;
                    p = idx;
                }
            }
            if best < 1e-300 {
                return Err(SparseError::Singular { column: k });
            }
            piv.swap(k, p);
            let pk = piv[k];
            let pivot = a[pk * n + k];
            for &pi in piv.iter().skip(k + 1) {
                let factor = a[pi * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[pi * n + k] = 0.0;
                for j in (k + 1)..n {
                    a[pi * n + j] -= factor * a[pk * n + j];
                }
                x[pi] -= factor * x[pk];
            }
        }
        // Back substitution.
        let mut out = vec![0.0; n];
        for k in (0..n).rev() {
            let pk = piv[k];
            let mut acc = x[pk];
            for j in (k + 1)..n {
                acc -= a[pk * n + j] * out[j];
            }
            out[k] = acc / a[pk * n + k];
        }
        Ok(out)
    }

    /// Computes the determinant via LU (for small matrices / tests).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square matrices.
    pub fn determinant(&self) -> Result<f64> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                shape: (self.nrows, self.ncols),
            });
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut det = 1.0;
        for k in 0..n {
            // Partial pivoting with row swap.
            let mut p = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                if a[i * n + k].abs() > best {
                    best = a[i * n + k].abs();
                    p = i;
                }
            }
            if best == 0.0 {
                return Ok(0.0);
            }
            if p != k {
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                det = -det;
            }
            let pivot = a[k * n + k];
            det *= pivot;
            for i in (k + 1)..n {
                let factor = a[i * n + k] / pivot;
                for j in k..n {
                    a[i * n + j] -= factor * a[k * n + j];
                }
            }
        }
        Ok(det)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn solve_small_system() {
        let a = DenseMatrix::from_rows(3, 3, &[2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0]);
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the first diagonal entry forces a row swap.
        let a = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            a.solve(&[1.0, 1.0]),
            Err(SparseError::Singular { .. })
        ));
        assert_eq!(a.determinant().unwrap(), 0.0);
    }

    #[test]
    fn determinant_of_identity_and_permutation() {
        assert_eq!(DenseMatrix::identity(4).determinant().unwrap(), 1.0);
        let perm = DenseMatrix::from_rows(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        assert_eq!(perm.determinant().unwrap(), -1.0);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.transpose();
        let c = a.matmul(&b);
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c[(0, 0)], 14.0);
        assert_eq!(c[(0, 1)], 32.0);
        assert_eq!(c[(1, 1)], 77.0);
    }

    #[test]
    fn non_square_solve_is_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve(&[0.0, 0.0]),
            Err(SparseError::NotSquare { .. })
        ));
    }
}
