//! Bridge between the strip-blocked panel kernels and the `opera_simd`
//! vector backends.
//!
//! The panel solves in [`crate::triangular`] are column-major: one factor
//! entry touches the same row of up to eight RHS columns, each a full
//! column-length apart in memory — eight scattered cache lines per entry on
//! large systems. The vector path packs each ≤8-column strip into a
//! row-major `n × LANES` **interleaved** scratch (row `j` holds unknown `j`
//! of every RHS column, one 64-byte line), runs the `opera_simd` interleaved
//! kernel on it, and unpacks. Packing is two sequential sweeps of `8·n`
//! values against `nnz(L)·8` solve operations, so it amortises for any
//! realistically filled factor.
//!
//! Strips narrower than [`LANES`] are zero-padded: pad lanes divide zeros by
//! the (nonzero, asserted) diagonal and accumulate zero updates, never
//! producing values that are read back — each real lane performs exactly the
//! scalar kernel's operations, keeping the vector path bit-identical.
//!
//! The scratch is a per-thread [`AlignedVec`] that grows to the largest
//! system seen and is reused forever after, preserving the zero
//! steady-state-allocation contract of [`crate::SolveWorkspace`].

use core::cell::RefCell;

use opera_simd::{AlignedVec, Backend, LANES};

thread_local! {
    /// Per-thread interleaved strip scratch (`n × LANES` values).
    static INTERLEAVE: RefCell<AlignedVec> = RefCell::new(AlignedVec::new());
}

/// The backend panel solves should dispatch to: the process-wide active
/// choice (scalar unless `OPERA_SIMD` or the engine knob opted in).
pub(crate) fn panel_backend() -> Backend {
    opera_simd::active()
}

/// Signature shared by the three interleaved `opera_simd` triangular solves.
pub(crate) type InterleavedKernel = fn(&[usize], &[usize], &[f64], usize, &mut [f64], Backend);

// lint: hot(simd-panel-bridge)

/// Runs `kernel` over every ≤[`LANES`]-column strip of a column-major
/// `panel`, packing each strip through the per-thread interleaved scratch.
pub(crate) fn solve_panel_interleaved(
    kernel: InterleavedKernel,
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    panel: &mut [f64],
    backend: Backend,
) {
    if n == 0 || panel.is_empty() {
        return;
    }
    debug_assert_eq!(panel.len() % n, 0, "panel length must be a multiple of n");
    INTERLEAVE.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < n * LANES {
            buf.resize(n * LANES);
        }
        let scratch = &mut buf.as_mut_slice()[..n * LANES];
        let mut rest = panel;
        while !rest.is_empty() {
            let w = (rest.len() / n).min(LANES);
            let (strip, tail) = rest.split_at_mut(w * n);
            rest = tail;
            pack(strip, n, w, scratch);
            kernel(indptr, indices, data, n, scratch, backend);
            unpack(scratch, n, w, strip);
        }
    });
}

/// Runs a full permuted Cholesky panel solve (`P·A·Pᵀ = L·Lᵀ`) over every
/// ≤[`LANES`]-column strip of a column-major `panel` with **one** interleave
/// round trip per strip: the permutation gather is fused into the pack, the
/// forward and transpose solves run back-to-back on the interleaved scratch,
/// and the scatter back through the permutation is fused into the unpack.
///
/// The separate permute / pack / unpack / pack / unpack / unpermute passes
/// of the generic path are all data movement — fusing them moves each panel
/// value twice instead of six times and changes no floating-point operation,
/// so the result stays bit-identical to the scalar panel solve.
pub(crate) fn cholesky_panel_interleaved(
    indptr: &[usize],
    indices: &[usize],
    data: &[f64],
    n: usize,
    perm: &[usize],
    panel: &mut [f64],
    backend: Backend,
) {
    if n == 0 || panel.is_empty() {
        return;
    }
    debug_assert_eq!(panel.len() % n, 0, "panel length must be a multiple of n");
    debug_assert_eq!(perm.len(), n, "permutation length mismatch");
    INTERLEAVE.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < n * LANES {
            buf.resize(n * LANES);
        }
        let scratch = &mut buf.as_mut_slice()[..n * LANES];
        let mut rest = panel;
        while !rest.is_empty() {
            let w = (rest.len() / n).min(LANES);
            let (strip, tail) = rest.split_at_mut(w * n);
            rest = tail;
            pack_permuted(strip, n, w, perm, scratch);
            opera_simd::lower_solve_interleaved(indptr, indices, data, n, scratch, backend);
            opera_simd::lower_transpose_solve_interleaved(
                indptr, indices, data, n, scratch, backend,
            );
            unpack_permuted(scratch, n, w, perm, strip);
        }
    });
}

/// Transposes a column-major `n × w` strip into the row-major interleaved
/// scratch, zero-filling the `w..LANES` pad lanes.
fn pack(strip: &[f64], n: usize, w: usize, scratch: &mut [f64]) {
    for j in 0..n {
        let row = &mut scratch[j * LANES..(j + 1) * LANES];
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = if c < w { strip[c * n + j] } else { 0.0 };
        }
    }
}

/// Transposes the interleaved scratch back into the column-major strip,
/// discarding the pad lanes.
fn unpack(scratch: &[f64], n: usize, w: usize, strip: &mut [f64]) {
    for j in 0..n {
        let row = &scratch[j * LANES..(j + 1) * LANES];
        for c in 0..w {
            strip[c * n + j] = row[c];
        }
    }
}

/// [`pack`] with the fill-reducing permutation gather fused in: interleaved
/// row `j` holds `strip[c·n + perm[j]]` per lane `c`, mirroring the
/// `y[i] = b[perm[i]]` gather of the scalar solve path.
fn pack_permuted(strip: &[f64], n: usize, w: usize, perm: &[usize], scratch: &mut [f64]) {
    for (j, &p) in perm.iter().enumerate() {
        let row = &mut scratch[j * LANES..(j + 1) * LANES];
        for (c, slot) in row.iter_mut().enumerate() {
            *slot = if c < w { strip[c * n + p] } else { 0.0 };
        }
    }
}

/// [`unpack`] with the inverse permutation scatter fused in: lane `c` of
/// interleaved row `j` lands at `strip[c·n + perm[j]]`, mirroring the
/// `b[perm[i]] = y[i]` scatter of the scalar solve path.
fn unpack_permuted(scratch: &[f64], n: usize, w: usize, perm: &[usize], strip: &mut [f64]) {
    for (j, &p) in perm.iter().enumerate() {
        let row = &scratch[j * LANES..(j + 1) * LANES];
        for c in 0..w {
            strip[c * n + p] = row[c];
        }
    }
}

// lint: end-hot
