//! Dense right-hand-side panels and reusable solver workspaces.
//!
//! A [`Panel`] is the multi-RHS currency of the whole OPERA hot path:
//! contiguous column-major `n × k` storage, so `k` right-hand sides of a
//! factored system travel together through the blocked triangular kernels in
//! [`crate::solve_lower_csc_panel`] and friends instead of one cache-hostile
//! `Vec<f64>` at a time. A [`SolveWorkspace`] is the companion scratch arena:
//! every in-place solve borrows its buffers from one, so a warmed-up
//! transient loop performs **zero** heap allocations per step — and the
//! workspace counts its buffer growths so callers can assert exactly that.
//!
//! Both panels and workspace scratch live in 64-byte-aligned storage
//! (`opera_simd::AlignedVec`): panel columns and scratch buffers start on a
//! cache-line/AVX-512-register boundary so the runtime-dispatched vector
//! kernels can stream them with aligned-friendly loads.

/// Contiguous column-major `n × k` storage for multi-RHS solves.
///
/// Columns are the unit of access: [`Panel::col`]/[`Panel::col_mut`] return
/// borrowed views of single right-hand sides, and the blocked triangular
/// kernels sweep all columns of a panel in one pass over the factor.
///
/// # Example
///
/// ```
/// use opera_sparse::Panel;
///
/// let mut p = Panel::zeros(3, 2);
/// p.col_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(p.col(0), &[0.0, 0.0, 0.0]);
/// assert_eq!(p.col(1), &[1.0, 2.0, 3.0]);
/// assert_eq!(p.nrows(), 3);
/// assert_eq!(p.ncols(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    nrows: usize,
    ncols: usize,
    /// Column-major values, `data[j * nrows + i]` = entry `(i, j)`, in
    /// 64-byte-aligned storage.
    data: opera_simd::AlignedVec,
}

impl Panel {
    /// An `n × k` panel of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Panel {
            nrows,
            ncols,
            data: opera_simd::AlignedVec::zeroed(nrows * ncols),
        }
    }

    /// Builds a panel from equal-length columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns have differing lengths.
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        let nrows = columns.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * columns.len());
        for col in columns {
            assert_eq!(col.len(), nrows, "panel columns must have equal length");
            data.extend_from_slice(col);
        }
        Panel {
            nrows,
            ncols: columns.len(),
            data: opera_simd::AlignedVec::from_vec(data),
        }
    }

    // The accessors below are called from inside the per-step solve kernels;
    // allocating constructors (`zeros`, `from_columns`) and the consuming
    // conversions stay outside the region by design.
    // lint: hot(panel-access)

    /// Number of rows (the system dimension).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (right-hand sides).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data.as_slice()[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data.as_mut_slice()[j * self.nrows..(j + 1) * self.nrows]
    }

    /// All values in column-major order.
    pub fn data(&self) -> &[f64] {
        self.data.as_slice()
    }

    /// All values in column-major order, mutably.
    pub fn data_mut(&mut self) -> &mut [f64] {
        self.data.as_mut_slice()
    }

    /// Takes ownership of an existing column-major buffer (e.g. a stacked
    /// block vector, whose blocks are exactly the panel columns), shifting
    /// it in place (one `memmove`, no reallocation in the common case) onto
    /// a 64-byte boundary.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "panel buffer length mismatch");
        Panel {
            nrows,
            ncols,
            data: opera_simd::AlignedVec::from_vec(data),
        }
    }

    /// Consumes the panel into its column-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data.into_vec()
    }

    /// Iterates over the columns.
    pub fn columns(&self) -> impl Iterator<Item = &[f64]> {
        self.data.as_slice().chunks_exact(self.nrows)
    }

    // lint: end-hot

    /// Consumes the panel into per-column vectors.
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        let n = self.nrows;
        let data = self.data.as_slice();
        (0..self.ncols)
            .map(|j| data[j * n..(j + 1) * n].to_vec())
            .collect()
    }
}

/// A reusable scratch arena for in-place and panel solves.
///
/// The direct factors ([`crate::CholeskyFactor`], [`crate::LuFactor`],
/// [`crate::MatrixFactor`]) need a permuted copy of the right-hand side(s);
/// a `SolveWorkspace` owns that buffer across calls so a steady-state solve
/// loop never touches the allocator. The workspace counts how many times its
/// buffer had to grow — [`SolveWorkspace::allocation_count`] is the test
/// hook behind the engine's zero-allocations-per-step contract.
///
/// # Example
///
/// ```
/// use opera_sparse::{CholeskyFactor, CsrMatrix, SolveWorkspace};
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let a = CsrMatrix::from_dense(2, 2, &[4.0, 1.0, 1.0, 3.0], 0.0);
/// let chol = CholeskyFactor::factor(&a)?;
/// let mut ws = SolveWorkspace::new();
/// let mut b = vec![5.0, 4.0];
/// chol.solve_in_place(&mut b, &mut ws); // warms the workspace
/// let warm = ws.allocation_count();
/// b.copy_from_slice(&[1.0, 2.0]);
/// chol.solve_in_place(&mut b, &mut ws); // steady state: no allocations
/// assert_eq!(ws.allocation_count(), warm);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SolveWorkspace {
    buf: opera_simd::AlignedVec,
    allocations: usize,
}

impl SolveWorkspace {
    /// An empty workspace; buffers are grown on first use.
    pub fn new() -> Self {
        SolveWorkspace::default()
    }

    /// A workspace pre-sized for panels of `len` values (`n * k`), so even
    /// the first solve allocates nothing.
    pub fn with_capacity(len: usize) -> Self {
        SolveWorkspace {
            buf: opera_simd::AlignedVec::zeroed(len),
            allocations: 0,
        }
    }

    /// Borrows a 64-byte-aligned scratch buffer of exactly `len` values,
    /// growing (and counting the growth) only when the current buffer is
    /// too small.
    pub fn scratch(&mut self, len: usize) -> &mut [f64] {
        if self.buf.len() < len {
            self.buf.resize(len);
            self.allocations += 1;
            opera_trace::count("workspace.allocations", 1);
        }
        &mut self.buf.as_mut_slice()[..len]
    }

    /// How many times the workspace had to grow its buffer. Constant across
    /// calls once the workspace is warm — the zero-steady-state-allocations
    /// test hook.
    pub fn allocation_count(&self) -> usize {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_columns_round_trip() {
        let mut p = Panel::zeros(4, 3);
        assert_eq!(p.nrows(), 4);
        assert_eq!(p.ncols(), 3);
        for j in 0..3 {
            for (i, v) in p.col_mut(j).iter_mut().enumerate() {
                *v = (10 * j + i) as f64;
            }
        }
        assert_eq!(p.col(2), &[20.0, 21.0, 22.0, 23.0]);
        assert_eq!(p.columns().count(), 3);
        let cols = p.clone().into_columns();
        assert_eq!(cols[1], vec![10.0, 11.0, 12.0, 13.0]);
        let rebuilt = Panel::from_columns(&cols);
        assert_eq!(rebuilt, p);
    }

    #[test]
    fn data_is_column_major() {
        let p = Panel::from_columns(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(p.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    /// Every construction path must leave the panel storage on a 64-byte
    /// boundary so the vector kernels can use aligned loads.
    #[test]
    fn panel_storage_is_64_byte_aligned() {
        for ncols in [1usize, 2, 7, 8, 9] {
            let p = Panel::zeros(5, ncols);
            assert_eq!(p.data().as_ptr() as usize % 64, 0, "zeros {ncols}");
            let cols: Vec<Vec<f64>> = (0..ncols).map(|j| vec![j as f64; 5]).collect();
            let p = Panel::from_columns(&cols);
            assert_eq!(p.data().as_ptr() as usize % 64, 0, "from_columns {ncols}");
            let p = Panel::from_vec(5, ncols, vec![1.5; 5 * ncols]);
            assert_eq!(p.data().as_ptr() as usize % 64, 0, "from_vec {ncols}");
            // The round trip back out preserves the logical buffer.
            assert_eq!(p.clone().into_vec(), vec![1.5; 5 * ncols]);
            assert_eq!(p.clone(), p);
        }
    }

    /// Workspace scratch shares the aligned-storage contract.
    #[test]
    fn workspace_scratch_is_64_byte_aligned() {
        let mut ws = SolveWorkspace::new();
        for len in [1usize, 9, 33, 100] {
            assert_eq!(ws.scratch(len).as_ptr() as usize % 64, 0, "len {len}");
        }
        let mut sized = SolveWorkspace::with_capacity(24);
        assert_eq!(sized.scratch(24).as_ptr() as usize % 64, 0);
        assert_eq!(sized.allocation_count(), 0);
    }

    #[test]
    #[should_panic]
    fn ragged_columns_are_rejected() {
        Panel::from_columns(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn workspace_counts_growths_only() {
        let mut ws = SolveWorkspace::new();
        assert_eq!(ws.allocation_count(), 0);
        ws.scratch(8);
        assert_eq!(ws.allocation_count(), 1);
        ws.scratch(8);
        ws.scratch(4);
        assert_eq!(ws.allocation_count(), 1);
        ws.scratch(9);
        assert_eq!(ws.allocation_count(), 2);
        let mut sized = SolveWorkspace::with_capacity(16);
        sized.scratch(16);
        assert_eq!(sized.allocation_count(), 0);
    }
}
