//! Sparse Cholesky (`L·Lᵀ`) factorisation for symmetric positive definite
//! matrices.
//!
//! The symbolic phase computes the elimination tree, the full pattern of `L`
//! and its fundamental-supernode partition; the numeric phase is supernodal —
//! columns sharing one sub-diagonal pattern are factored together as dense
//! panels (see [`crate::Supernodes`]). A fill-reducing ordering (approximate
//! minimum degree by default) is applied first; the permutation is handled
//! transparently by [`CholeskyFactor::solve`].

use crate::etree::{ereach, postorder};
use crate::supernodal::{amalgamate, factor_supernodal, Supernodes};
use crate::triangular::{lower_panel_raw, lower_transpose_panel_raw};
use crate::{
    column_counts, elimination_tree, ordering, CscMatrix, CsrMatrix, Panel, Permutation, Result,
    SolveWorkspace, SparseError,
};

/// Fill-reducing ordering strategy used before factorisation.
///
/// The default is [`OrderingChoice::ApproximateMinimumDegree`], the
/// *measured* winner on the paper grids and netlist fixtures (`perf_report`'s
/// `orderings` section; methodology and numbers in `docs/PERFORMANCE.md` §4
/// and `docs/SPARSE.md`). AMD delivers the ~3.5× sparser factor and ~3×
/// faster triangular solves of minimum-degree fill at an ordering cost that
/// stays near-linear — sub-second even on the `(N+1)·n` Galerkin-augmented
/// companion matrix where [`OrderingChoice::MinimumDegree`]'s explicit
/// clique updates run for minutes and [`OrderingChoice::ReverseCuthillMckee`]
/// pays its banded fill on every later solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderingChoice {
    /// Keep the natural (input) order.
    Natural,
    /// Reverse Cuthill–McKee — fast banded ordering for mesh-like power
    /// grids. Cheapest analysis, but several times more factor fill than
    /// AMD on large meshes.
    ReverseCuthillMckee,
    /// Greedy minimum degree with explicit clique updates — the exact
    /// fill-quality reference that AMD approximates. Its ordering pass is
    /// super-linear; prefer the default unless auditing fill quality.
    MinimumDegree,
    /// Approximate minimum degree (the measured default, see above):
    /// quotient-graph elimination with element absorption and supervariable
    /// merging, [`ordering::approximate_minimum_degree`].
    #[default]
    ApproximateMinimumDegree,
}

/// The reusable symbolic phase of a sparse Cholesky factorisation: the
/// fill-reducing ordering, elimination tree and column counts of `L` for one
/// fixed sparsity pattern.
///
/// A `SymbolicCholesky` is immutable (and therefore `Sync`), so one analysis
/// can be shared by many concurrent numeric factorisations of matrices whose
/// pattern is contained in the analysed one — e.g. the per-node conductance
/// realisations of a stochastic-collocation sweep, where every node has the
/// same structure but different values.
///
/// # Example
///
/// ```
/// use opera_sparse::{SymbolicCholesky, TripletMatrix};
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 3.0);
/// }
/// t.add_symmetric_pair(0, 1, 1.0);
/// t.add_symmetric_pair(1, 2, 1.0);
/// let a = t.to_csr();
/// let symbolic = SymbolicCholesky::analyze(&a)?;
/// // Numeric-only factorisations against the one shared analysis.
/// let chol_a = symbolic.factor_numeric(&a)?;
/// let chol_2a = symbolic.factor_numeric(&a.scaled(2.0))?;
/// let b = vec![1.0, 0.0, -1.0];
/// let (xa, x2a) = (chol_a.solve(&b), chol_2a.solve(&b));
/// assert!((xa[0] - 2.0 * x2a[0]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicCholesky {
    n: usize,
    ordering: OrderingChoice,
    perm: Permutation,
    /// Column pointers of `L` derived from the column counts.
    l_indptr: Vec<usize>,
    /// Full precomputed row pattern of `L` (per column: diagonal first, then
    /// ascending rows), so numeric factorisations are value-only.
    l_indices: Vec<usize>,
    /// Fundamental-supernode partition of the factor columns.
    snodes: Supernodes,
    /// Pattern (CSC `indptr`/`indices`) of the analysed *permuted* matrix,
    /// kept so later numeric factorisations can verify containment.
    pattern_indptr: Vec<usize>,
    pattern_indices: Vec<usize>,
}

impl SymbolicCholesky {
    /// Analyses the pattern of a symmetric matrix with the default
    /// approximate-minimum-degree ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input and
    /// [`SparseError::InvalidStructure`] if the matrix is not symmetric.
    pub fn analyze(a: &CsrMatrix) -> Result<Self> {
        Self::analyze_with(a, OrderingChoice::default())
    }

    /// Analyses with an explicit ordering choice.
    ///
    /// # Example
    ///
    /// AMD (the default) never produces more fill than RCM on the mesh-like
    /// matrices this workspace factors; an explicit choice makes the
    /// trade-off observable:
    ///
    /// ```
    /// use opera_sparse::{OrderingChoice, SymbolicCholesky, TripletMatrix};
    ///
    /// # fn main() -> Result<(), opera_sparse::SparseError> {
    /// // 4x4 grid Laplacian + diagonal shift (SPD).
    /// let (nx, ny) = (4, 4);
    /// let mut t = TripletMatrix::new(nx * ny, nx * ny);
    /// for y in 0..ny {
    ///     for x in 0..nx {
    ///         t.push(y * nx + x, y * nx + x, 4.0);
    ///         if x + 1 < nx {
    ///             t.add_symmetric_pair(y * nx + x, y * nx + x + 1, -1.0);
    ///         }
    ///         if y + 1 < ny {
    ///             t.add_symmetric_pair(y * nx + x, (y + 1) * nx + x, -1.0);
    ///         }
    ///     }
    /// }
    /// let a = t.to_csr();
    /// let amd = SymbolicCholesky::analyze_with(&a, OrderingChoice::ApproximateMinimumDegree)?;
    /// let rcm = SymbolicCholesky::analyze_with(&a, OrderingChoice::ReverseCuthillMckee)?;
    /// assert_eq!(amd.ordering(), OrderingChoice::default());
    /// assert!(amd.nnz_l() <= rcm.nnz_l());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Same as [`SymbolicCholesky::analyze`].
    pub fn analyze_with(a: &CsrMatrix, ordering_choice: OrderingChoice) -> Result<Self> {
        let _span = opera_trace::span("cholesky.analyze");
        let (a_perm, perm) = permute_for_cholesky(a, ordering_choice)?;
        Ok(Self::from_permuted(a_perm, perm, ordering_choice)?.0)
    }

    /// Builds the analysis from an already permuted matrix. Returns the
    /// matrix back (re-permuted if the postorder relabelling below applied),
    /// so numeric front ends factor exactly the matrix that was analysed.
    fn from_permuted(
        a_perm: CscMatrix,
        perm: Permutation,
        ordering: OrderingChoice,
    ) -> Result<(Self, CscMatrix)> {
        let _span = opera_trace::span("cholesky.symbolic");
        let n = a_perm.ncols();
        let mut parent = elimination_tree(&a_perm);
        // Relabel by a postorder of the elimination tree: fill-preserving
        // (the filled graphs are isomorphic), and it makes every supernode
        // column-contiguous with its tree parent, which is what lets the
        // relaxed amalgamation below widen the panels. `Natural` keeps its
        // identity-permutation contract and is left untouched.
        let mut perm = perm;
        let mut a_perm = a_perm;
        if !matches!(ordering, OrderingChoice::Natural) {
            let post = postorder(&parent);
            #[cfg(feature = "strict-invariants")]
            crate::invariants::validate_postorder(&post, &parent)?;
            if !post.iter().enumerate().all(|(i, &p)| i == p) {
                // lint: allow(L001, postorder of an n-vertex forest visits each vertex exactly once)
                let pp = Permutation::from_vec(post).expect("postorder is a permutation");
                let a2 = a_perm
                    .permute_symmetric(&pp)
                    // lint: allow(L001, a_perm was already validated square and pp has matching length)
                    .expect("permuted matrix stays square and symmetric");
                parent = elimination_tree(&a2);
                perm = pp.compose(&perm);
                a_perm = a2;
            }
        }
        let counts = column_counts(&a_perm, &parent);
        let mut l_indptr = vec![0usize; n + 1];
        for j in 0..n {
            l_indptr[j + 1] = l_indptr[j] + counts[j];
        }
        // Materialise the full pattern of L by replaying the elimination
        // reach row by row: row k lands in every column of its reach, and
        // each column's diagonal entry is written at its own iteration —
        // per column that yields the diagonal first, then ascending rows,
        // the layout the supernodal numeric phase and the triangular
        // kernels rely on.
        let mut l_indices = vec![0usize; l_indptr[n]];
        let mut next = l_indptr[..n].to_vec();
        let mut work = vec![false; n];
        for k in 0..n {
            for i in ereach(&a_perm, k, &parent, &mut work) {
                l_indices[next[i]] = k;
                next[i] += 1;
            }
            l_indices[next[k]] = k;
            next[k] += 1;
        }
        let fundamental = Supernodes::from_etree(&parent, &l_indptr);
        // Merge adjacent near-identical supernodes, padding the merged
        // panels to their union pattern with explicit zeros — the numeric
        // phase is dominated by panel width, and a few percent of padded
        // storage buys panels wide enough for the blocked kernels.
        let fundamental_nnz = l_indptr[n];
        let (snodes, l_indptr, l_indices) =
            amalgamate(&fundamental, &parent, &l_indptr, &l_indices);
        let padded_nnz = l_indptr[n];
        opera_trace::count("cholesky.symbolic_analyses", 1);
        opera_trace::count("cholesky.supernodes", snodes.count() as u64);
        opera_trace::gauge_set("cholesky.nnz_l", padded_nnz as f64);
        opera_trace::gauge_set(
            "cholesky.padded_nnz_fraction",
            if padded_nnz > 0 {
                (padded_nnz - fundamental_nnz) as f64 / padded_nnz as f64
            } else {
                0.0
            },
        );
        let symbolic = SymbolicCholesky {
            n,
            ordering,
            perm,
            l_indptr,
            l_indices,
            snodes,
            pattern_indptr: a_perm.indptr().to_vec(),
            pattern_indices: a_perm.indices().to_vec(),
        };
        #[cfg(feature = "strict-invariants")]
        {
            a_perm.validate()?;
            crate::invariants::validate_supernode_containment(
                symbolic.snodes.boundaries(),
                &symbolic.l_indptr,
                &symbolic.l_indices,
            )?;
        }
        Ok((symbolic, a_perm))
    }

    /// Dimension of the analysed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The fill-reducing ordering strategy this analysis was computed with
    /// ([`OrderingChoice::default`] for [`SymbolicCholesky::analyze`]).
    pub fn ordering(&self) -> OrderingChoice {
        self.ordering
    }

    /// Number of nonzeros the factor `L` will have.
    pub fn nnz_l(&self) -> usize {
        self.l_indptr[self.n]
    }

    /// The fill-reducing permutation chosen by the analysis.
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// The fundamental-supernode partition the numeric phase factors the
    /// matrix by (see [`Supernodes`]).
    pub fn supernodes(&self) -> &Supernodes {
        &self.snodes
    }

    /// Performs a numeric-only factorisation of `a` against this shared
    /// analysis: no ordering, no elimination tree, no column counts are
    /// recomputed. The pattern of `a` must be contained in the analysed
    /// pattern (equal in practice; a strict subset — e.g. the conductance
    /// matrix `G` factored with the analysis of the companion `G + C/h` — is
    /// also fine because its fill is contained too).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] for a shape mismatch,
    /// [`SparseError::InvalidStructure`] if `a` has an entry outside the
    /// analysed pattern, and [`SparseError::NotPositiveDefinite`] if `a` is
    /// not positive definite.
    pub fn factor_numeric(&self, a: &CsrMatrix) -> Result<CholeskyFactor> {
        if a.nrows() != self.n || a.ncols() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "factor_numeric",
                left: (self.n, self.n),
                right: (a.nrows(), a.ncols()),
            });
        }
        let a_perm = a.to_csc().permute_symmetric(&self.perm)?;
        check_pattern_contained(&a_perm, &self.pattern_indptr, &self.pattern_indices)?;
        let nnz_l = self.nnz_l();
        let mut factor = CholeskyFactor {
            n: self.n,
            perm: self.perm.clone(),
            snodes: self.snodes.clone(),
            l_indptr: self.l_indptr.clone(),
            l_indices: self.l_indices.clone(),
            l_data: vec![0.0; nnz_l],
            a_perm,
        };
        factor.numeric()?;
        Ok(factor)
    }
}

/// Shared front end of `factor_with`/`analyze_with`: symmetry and shape
/// checks, ordering selection and the symmetric permutation.
fn permute_for_cholesky(
    a: &CsrMatrix,
    ordering_choice: OrderingChoice,
) -> Result<(CscMatrix, Permutation)> {
    let _span = opera_trace::span("cholesky.ordering");
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            shape: (a.nrows(), a.ncols()),
        });
    }
    let scale = a.frobenius_norm().max(1.0);
    if !a.is_symmetric(1e-10 * scale) {
        return Err(SparseError::InvalidStructure {
            reason: "Cholesky factorisation requires a symmetric matrix".to_string(),
        });
    }
    let a_csc = a.to_csc();
    let perm = match ordering_choice {
        OrderingChoice::Natural => Permutation::identity(a.nrows()),
        OrderingChoice::ReverseCuthillMckee => ordering::reverse_cuthill_mckee(&a_csc),
        OrderingChoice::MinimumDegree => ordering::minimum_degree(&a_csc),
        OrderingChoice::ApproximateMinimumDegree => ordering::approximate_minimum_degree(&a_csc),
    };
    let a_perm = a_csc.permute_symmetric(&perm)?;
    Ok((a_perm, perm))
}

/// Verifies, column by column, that every entry of `sub` lies at a position
/// stored in the reference pattern (`indptr`/`indices` of a CSC matrix of the
/// same shape). Both index lists are sorted, so a two-pointer sweep suffices.
fn check_pattern_contained(sub: &CscMatrix, indptr: &[usize], indices: &[usize]) -> Result<()> {
    for j in 0..sub.ncols() {
        let (rows, _) = sub.col(j);
        let reference = &indices[indptr[j]..indptr[j + 1]];
        let mut r = 0usize;
        for &i in rows {
            while r < reference.len() && reference[r] < i {
                r += 1;
            }
            if r == reference.len() || reference[r] != i {
                return Err(SparseError::InvalidStructure {
                    reason: format!(
                        "entry ({i}, {j}) lies outside the analysed sparsity pattern; \
                         numeric refactorisation requires the same (or a sub-) pattern"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// A sparse Cholesky factorisation `P·A·Pᵀ = L·Lᵀ` of a symmetric positive
/// definite matrix.
///
/// # Example
///
/// ```
/// use opera_sparse::{TripletMatrix, CholeskyFactor};
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// // Small SPD grid Laplacian + I.
/// let mut t = TripletMatrix::new(3, 3);
/// for i in 0..3 {
///     t.push(i, i, 3.0);
/// }
/// t.add_symmetric_pair(0, 1, 1.0);
/// t.add_symmetric_pair(1, 2, 1.0);
/// let a = t.to_csr();
/// let chol = CholeskyFactor::factor(&a)?;
/// let b = vec![1.0, 0.0, -1.0];
/// let x = chol.solve(&b);
/// assert!(a.residual_inf_norm(&x, &b) < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    perm: Permutation,
    /// Fundamental-supernode partition (fixed by the symbolic analysis).
    snodes: Supernodes,
    /// Column pointers of `L` (fixed by the symbolic analysis).
    l_indptr: Vec<usize>,
    /// Row indices of `L` (fixed by the symbolic analysis).
    l_indices: Vec<usize>,
    /// Values of `L`.
    l_data: Vec<f64>,
    /// Permuted copy of the input matrix pattern (kept for refactorisation).
    a_perm: CscMatrix,
}

impl CholeskyFactor {
    /// Factors a symmetric positive definite matrix given in CSR format,
    /// using the default approximate-minimum-degree ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input,
    /// [`SparseError::InvalidStructure`] if the matrix is not symmetric, and
    /// [`SparseError::NotPositiveDefinite`] if a non-positive pivot appears.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        Self::factor_with(a, OrderingChoice::default())
    }

    /// Factors with an explicit ordering choice.
    ///
    /// # Errors
    ///
    /// Same as [`CholeskyFactor::factor`].
    pub fn factor_with(a: &CsrMatrix, ordering_choice: OrderingChoice) -> Result<Self> {
        let (symbolic, a_perm) = {
            let _span = opera_trace::span("cholesky.analyze");
            let (a_perm, perm) = permute_for_cholesky(a, ordering_choice)?;
            SymbolicCholesky::from_permuted(a_perm, perm, ordering_choice)?
        };
        let nnz_l = symbolic.nnz_l();
        let SymbolicCholesky {
            n,
            perm,
            snodes,
            l_indptr,
            l_indices,
            ..
        } = symbolic;
        let mut factor = CholeskyFactor {
            n,
            perm,
            snodes,
            l_indptr,
            l_indices,
            l_data: vec![0.0; nnz_l],
            a_perm,
        };
        factor.numeric()?;
        Ok(factor)
    }

    /// Re-runs the numeric factorisation for a matrix with the *same sparsity
    /// pattern* but different values (e.g. a new Monte Carlo sample of the
    /// grid conductances). The ordering and symbolic analysis are reused.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if the shape differs from
    /// the original matrix and [`SparseError::NotPositiveDefinite`] if the new
    /// matrix is not positive definite. The pattern of `a` may be a subset of
    /// the original pattern but must not contain new entries outside it;
    /// entries outside are reported as [`SparseError::InvalidStructure`].
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<()> {
        if a.nrows() != self.n || a.ncols() != self.n {
            return Err(SparseError::DimensionMismatch {
                op: "refactor",
                left: (self.n, self.n),
                right: (a.nrows(), a.ncols()),
            });
        }
        let a_csc = a.to_csc();
        let a_perm = a_csc.permute_symmetric(&self.perm)?;
        // Verify, entry by entry, that the new pattern is contained in the
        // pattern the symbolic analysis was computed for (same pattern in
        // practice). A count-based check is not enough: a matrix that drops
        // one entry and gains another has the same nnz but would silently
        // corrupt the factorisation.
        check_pattern_contained(&a_perm, self.a_perm.indptr(), self.a_perm.indices())?;
        self.a_perm = a_perm;
        self.numeric()
    }

    /// Supernodal numeric factorisation over the precomputed pattern: the
    /// symbolic analysis fixed `l_indptr`/`l_indices` and the supernode
    /// partition, so this phase is value-only dense-panel work (see
    /// [`crate::Supernodes`]).
    fn numeric(&mut self) -> Result<()> {
        let _span = opera_trace::span("cholesky.numeric");
        opera_trace::count("cholesky.numeric_factorizations", 1);
        factor_supernodal(
            &self.a_perm,
            &self.snodes,
            &self.l_indptr,
            &self.l_indices,
            &mut self.l_data,
        )
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in the factor `L`.
    pub fn nnz_l(&self) -> usize {
        self.l_data.len()
    }

    /// The fill-reducing permutation used (`P·A·Pᵀ = L·Lᵀ`).
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Returns the factor `L` as a CSC matrix (in the permuted ordering).
    pub fn lower(&self) -> CscMatrix {
        CscMatrix::from_raw_parts(
            self.n,
            self.n,
            self.l_indptr.clone(),
            self.l_indices.clone(),
            self.l_data.clone(),
        )
        // lint: allow(L001, the factorization emits sorted in-bounds columns by construction)
        .expect("factor storage is structurally valid")
    }

    /// Log-determinant of the original matrix: `log det A = 2 Σ log L_ii`.
    pub fn log_determinant(&self) -> f64 {
        let mut acc = 0.0;
        for j in 0..self.n {
            acc += self.l_data[self.l_indptr[j]].ln();
        }
        2.0 * acc
    }

    /// Solves `A·x = b`, allocating the result (and a fresh scratch buffer).
    /// In hot loops prefer [`CholeskyFactor::solve_in_place`] with a reused
    /// [`SolveWorkspace`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x, &mut SolveWorkspace::new());
        x
    }

    /// Solves `A·x = b` in place, borrowing the permutation scratch from
    /// `ws`: once the workspace is warm, the solve performs zero heap
    /// allocations. Bit-identical to [`CholeskyFactor::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_in_place(&self, b: &mut [f64], ws: &mut SolveWorkspace) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        let y = ws.scratch(self.n);
        for (yi, &p) in y.iter_mut().zip(self.perm.as_slice()) {
            *yi = b[p];
        }
        self.solve_permuted_in_place(y);
        for (yi, &p) in y.iter().zip(self.perm.as_slice()) {
            b[p] = *yi;
        }
    }

    /// Solves `A·X = B` in place for every column of the panel through the
    /// blocked triangular kernels: the factor is streamed once per 4-wide
    /// column strip instead of once per right-hand side. Each panel column is
    /// bit-identical to [`CholeskyFactor::solve`] on that column.
    ///
    /// # Panics
    ///
    /// Panics if the panel row count does not match the matrix dimension.
    pub fn solve_panel(&self, b: &mut Panel, ws: &mut SolveWorkspace) {
        assert_eq!(b.nrows(), self.n, "panel row count mismatch");
        let n = self.n;
        let k = b.ncols();
        opera_trace::count("panel.solves", 1);
        opera_trace::count("panel.columns", k as u64);
        let backend = crate::simd::panel_backend();
        if backend != opera_simd::Backend::Scalar {
            // One fused interleave round trip per strip (permutation gather
            // and scatter folded into pack/unpack, L and Lᵀ solved
            // back-to-back on the interleaved scratch); bit-identical to the
            // scalar path below, which moves each panel value six times.
            crate::simd::cholesky_panel_interleaved(
                &self.l_indptr,
                &self.l_indices,
                &self.l_data,
                n,
                self.perm.as_slice(),
                b.data_mut(),
                backend,
            );
            return;
        }
        let y = ws.scratch(n * k);
        let perm = self.perm.as_slice();
        for (y_col, b_col) in y.chunks_exact_mut(n).zip(b.columns()) {
            for (yi, &p) in y_col.iter_mut().zip(perm) {
                *yi = b_col[p];
            }
        }
        lower_panel_raw(&self.l_indptr, &self.l_indices, &self.l_data, n, y);
        lower_transpose_panel_raw(&self.l_indptr, &self.l_indices, &self.l_data, n, y);
        for (j, y_col) in y.chunks_exact(n).enumerate() {
            let b_col = b.col_mut(j);
            for (yi, &p) in y_col.iter().zip(perm) {
                b_col[p] = *yi;
            }
        }
    }

    /// In-place solve in the permuted ordering (`L·Lᵀ·y = b_perm`).
    fn solve_permuted_in_place(&self, b: &mut [f64]) {
        // Forward and backward substitution directly on the raw arrays to
        // avoid building a CscMatrix per solve.
        let n = self.n;
        // L y = b
        for j in 0..n {
            let start = self.l_indptr[j];
            let end = self.l_indptr[j + 1];
            let xj = b[j] / self.l_data[start];
            b[j] = xj;
            for p in (start + 1)..end {
                b[self.l_indices[p]] -= self.l_data[p] * xj;
            }
        }
        // Lᵀ x = y
        for j in (0..n).rev() {
            let start = self.l_indptr[j];
            let end = self.l_indptr[j + 1];
            let mut acc = b[j];
            for p in (start + 1)..end {
                acc -= self.l_data[p] * b[self.l_indices[p]];
            }
            b[j] = acc / self.l_data[start];
        }
    }
}

/// Convenience: factor-and-solve for a single right-hand side.
///
/// # Errors
///
/// Propagates any factorisation error from [`CholeskyFactor::factor`].
pub fn cholesky_solve(a: &CsrMatrix, b: &[f64]) -> Result<Vec<f64>> {
    Ok(CholeskyFactor::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// SPD matrix of a 2-D grid Laplacian plus a diagonal shift.
    fn grid_spd(nx: usize, ny: usize) -> CsrMatrix {
        let n = nx * ny;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                t.push(idx(x, y), idx(x, y), 0.5);
                if x + 1 < nx {
                    t.add_symmetric_pair(idx(x, y), idx(x + 1, y), 1.0);
                }
                if y + 1 < ny {
                    t.add_symmetric_pair(idx(x, y), idx(x, y + 1), 1.0);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn factorises_and_solves_small_spd_system() {
        let a = CsrMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0], 0.0);
        let chol = CholeskyFactor::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solves_grid_laplacian_with_all_orderings() {
        let a = grid_spd(7, 9);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.37).sin()).collect();
        for ord in [
            OrderingChoice::Natural,
            OrderingChoice::ReverseCuthillMckee,
            OrderingChoice::MinimumDegree,
            OrderingChoice::ApproximateMinimumDegree,
        ] {
            let chol = CholeskyFactor::factor_with(&a, ord).unwrap();
            let x = chol.solve(&b);
            assert!(
                a.residual_inf_norm(&x, &b) < 1e-10,
                "ordering {ord:?} gave a large residual"
            );
        }
    }

    #[test]
    fn rejects_non_symmetric_and_non_square() {
        let ns = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 0.0, 1.0], 0.0);
        assert!(matches!(
            CholeskyFactor::factor(&ns),
            Err(SparseError::InvalidStructure { .. })
        ));
        let rect = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factor(&rect),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 2.0, 1.0], 0.0);
        assert!(matches!(
            CholeskyFactor::factor(&a),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn refactor_reuses_symbolic_analysis() {
        let a = grid_spd(6, 6);
        let mut chol = CholeskyFactor::factor(&a).unwrap();
        let b: Vec<f64> = vec![1.0; a.nrows()];
        let x1 = chol.solve(&b);
        assert!(a.residual_inf_norm(&x1, &b) < 1e-10);

        // Scale the matrix: same pattern, new values.
        let a2 = a.scaled(2.0);
        chol.refactor(&a2).unwrap();
        let x2 = chol.solve(&b);
        assert!(a2.residual_inf_norm(&x2, &b) < 1e-10);
        // Solutions should differ by exactly a factor of 2.
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - 2.0 * v).abs() < 1e-10);
        }
    }

    #[test]
    fn log_determinant_matches_dense_determinant() {
        let a = CsrMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0], 0.0);
        let chol = CholeskyFactor::factor(&a).unwrap();
        let det = a.to_dense().determinant().unwrap();
        assert!((chol.log_determinant() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn lower_factor_reconstructs_matrix() {
        let a = grid_spd(4, 4);
        let chol = CholeskyFactor::factor_with(&a, OrderingChoice::Natural).unwrap();
        let l = chol.lower().to_csr().to_dense();
        let lt = l.transpose();
        let llt = l.matmul(&lt);
        let dense = a.to_dense();
        assert!(llt.max_abs_diff(&dense) < 1e-10);
    }

    #[test]
    fn shared_symbolic_analysis_factors_many_value_sets() {
        let a = grid_spd(6, 5);
        let symbolic = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(symbolic.dim(), a.nrows());
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.21).cos()).collect();
        for scale in [0.5, 1.0, 2.5] {
            let scaled = a.scaled(scale);
            let from_symbolic = symbolic.factor_numeric(&scaled).unwrap();
            let from_scratch = CholeskyFactor::factor(&scaled).unwrap();
            let x = from_symbolic.solve(&b);
            let y = from_scratch.solve(&b);
            assert!(scaled.residual_inf_norm(&x, &b) < 1e-10);
            for (u, v) in x.iter().zip(&y) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn symbolic_analysis_accepts_sub_patterns_and_rejects_new_entries() {
        // Analyse the "companion" pattern A + D (denser), then numerically
        // factor the plain A (sub-pattern) against it.
        let a = grid_spd(5, 4);
        let mut extra = TripletMatrix::new(a.nrows(), a.ncols());
        extra.add_symmetric_pair(0, a.nrows() - 1, 0.3);
        let denser = a.add_scaled(&extra.to_csr(), 1.0).unwrap();
        let symbolic = SymbolicCholesky::analyze(&denser).unwrap();
        let chol = symbolic.factor_numeric(&a).unwrap();
        let b = vec![1.0; a.nrows()];
        let x = chol.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-10);
        // The reverse direction — an entry outside the analysed pattern —
        // must be rejected, not silently mis-factored.
        let narrow = SymbolicCholesky::analyze(&a).unwrap();
        assert!(matches!(
            narrow.factor_numeric(&denser),
            Err(SparseError::InvalidStructure { .. })
        ));
        // Shape mismatches are dimension errors.
        let small = grid_spd(2, 2);
        assert!(matches!(
            symbolic.factor_numeric(&small),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn refactor_rejects_same_nnz_different_pattern() {
        // Swap one symmetric off-diagonal pair for another: identical nnz,
        // different pattern. The element-wise containment check must fire.
        let n = 6;
        let build = |pair: (usize, usize)| {
            let mut t = TripletMatrix::new(n, n);
            for i in 0..n {
                t.push(i, i, 4.0);
            }
            t.add_symmetric_pair(pair.0, pair.1, 1.0);
            t.to_csr()
        };
        let a = build((0, 1));
        let swapped = build((2, 3));
        assert_eq!(a.nnz(), swapped.nnz());
        let mut chol = CholeskyFactor::factor_with(&a, OrderingChoice::Natural).unwrap();
        assert!(matches!(
            chol.refactor(&swapped),
            Err(SparseError::InvalidStructure { .. })
        ));
        // The factor is still usable with a pattern-preserving update.
        chol.refactor(&a.scaled(3.0)).unwrap();
        let b = vec![1.0; n];
        let x = chol.solve(&b);
        assert!(a.scaled(3.0).residual_inf_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn cholesky_solve_convenience_function() {
        let a = CsrMatrix::from_dense(2, 2, &[2.0, 0.0, 0.0, 5.0], 0.0);
        let x = cholesky_solve(&a, &[2.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn solve_panel_handles_multiple_rhs_bit_identically() {
        let a = grid_spd(5, 4);
        let chol = CholeskyFactor::factor(&a).unwrap();
        let rhs: Vec<Vec<f64>> = (0..7)
            .map(|k| (0..a.nrows()).map(|i| ((i + k) as f64).cos()).collect())
            .collect();
        let mut panel = Panel::from_columns(&rhs);
        let mut ws = SolveWorkspace::new();
        chol.solve_panel(&mut panel, &mut ws);
        for (j, b) in rhs.iter().enumerate() {
            assert!(a.residual_inf_norm(panel.col(j), b) < 1e-10);
            // Panel columns must be bit-identical to scalar solves.
            assert_eq!(panel.col(j), &chol.solve(b)[..]);
        }
        // A warm workspace makes subsequent panel solves allocation-free.
        let warm = ws.allocation_count();
        let mut panel2 = Panel::from_columns(&rhs);
        chol.solve_panel(&mut panel2, &mut ws);
        assert_eq!(ws.allocation_count(), warm);
    }

    #[test]
    fn solve_in_place_matches_solve_and_reuses_workspace() {
        let a = grid_spd(4, 5);
        let chol = CholeskyFactor::factor(&a).unwrap();
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.31).sin()).collect();
        let expected = chol.solve(&b);
        let mut ws = SolveWorkspace::new();
        let mut x = b.clone();
        chol.solve_in_place(&mut x, &mut ws);
        assert_eq!(x, expected);
        let warm = ws.allocation_count();
        x.copy_from_slice(&b);
        chol.solve_in_place(&mut x, &mut ws);
        assert_eq!(x, expected);
        assert_eq!(ws.allocation_count(), warm);
    }

    #[test]
    fn analyze_honours_the_default_ordering_choice() {
        // The satellite contract: `SymbolicCholesky::analyze` must route the
        // workspace-wide default `OrderingChoice` through to the permutation
        // it computes (and report which choice it used).
        let a = grid_spd(6, 7);
        let default = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(default.ordering(), OrderingChoice::default());
        // The measured winner (docs/PERFORMANCE.md §4) is pinned here so a
        // silent default change cannot slip past review.
        assert_eq!(
            OrderingChoice::default(),
            OrderingChoice::ApproximateMinimumDegree
        );
        let explicit = SymbolicCholesky::analyze_with(&a, OrderingChoice::default()).unwrap();
        assert_eq!(default.permutation(), explicit.permutation());
        assert_eq!(default.nnz_l(), explicit.nnz_l());
        // And an explicit non-default choice is honoured, not overridden.
        let natural = SymbolicCholesky::analyze_with(&a, OrderingChoice::Natural).unwrap();
        assert_eq!(natural.ordering(), OrderingChoice::Natural);
        assert_eq!(
            natural.permutation(),
            &crate::Permutation::identity(a.nrows())
        );
    }
}
