//! Permutations of `{0, …, n−1}` used by fill-reducing orderings.

use crate::{Result, SparseError};

/// A permutation of `{0, …, n−1}`.
///
/// The permutation is stored as an *image* vector `perm`: position `i` of the
/// permuted object holds original index `perm[i]`. The inverse map is kept
/// alongside so both directions are O(1).
///
/// # Example
///
/// ```
/// use opera_sparse::Permutation;
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let p = Permutation::from_vec(vec![2, 0, 1])?;
/// let x = [10.0, 20.0, 30.0];
/// assert_eq!(p.apply(&x), vec![30.0, 10.0, 20.0]);
/// assert_eq!(p.apply_inverse(&p.apply(&x)), x.to_vec());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
    inv: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        let perm: Vec<usize> = (0..n).collect();
        Permutation {
            inv: perm.clone(),
            perm,
        }
    }

    /// Builds a permutation from its image vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] if `perm` is not a
    /// permutation of `0..n`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut inv = vec![usize::MAX; n];
        for (i, &p) in perm.iter().enumerate() {
            if p >= n {
                return Err(SparseError::InvalidStructure {
                    reason: format!("permutation entry {p} out of range for length {n}"),
                });
            }
            if inv[p] != usize::MAX {
                return Err(SparseError::InvalidStructure {
                    reason: format!("permutation entry {p} appears more than once"),
                });
            }
            inv[p] = i;
        }
        Ok(Permutation { perm, inv })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Original index placed at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> usize {
        self.perm[i]
    }

    /// Position where original index `j` ends up.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn position_of(&self, j: usize) -> usize {
        self.inv[j]
    }

    /// The image vector (`perm[i]` = original index at position `i`).
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// The inverse image vector (`inv[j]` = position of original index `j`).
    pub fn inverse_slice(&self) -> &[usize] {
        &self.inv
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation {
            perm: self.inv.clone(),
            inv: self.perm.clone(),
        }
    }

    /// Applies the permutation to a dense vector: `out[i] = x[perm[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        self.perm.iter().map(|&p| x[p]).collect()
    }

    /// Applies the inverse permutation: `out[perm[i]] = x[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn apply_inverse(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.len(), "permutation length mismatch");
        let mut out = vec![0.0; x.len()];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }

    /// Composes two permutations: `(self ∘ other)(i) = other[self[i]]`, i.e.
    /// applying the result is the same as applying `other` first and then
    /// `self`... more precisely `result.apply(x) == self.apply(&other.apply(x))`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation length mismatch");
        let perm: Vec<usize> = self.perm.iter().map(|&p| other.perm[p]).collect();
        // lint: allow(L001, composing two bijections of equal length yields a bijection)
        Permutation::from_vec(perm).expect("composition of valid permutations is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let p = Permutation::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(p.apply(&x), x.to_vec());
        assert_eq!(p.apply_inverse(&x), x.to_vec());
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn invalid_permutations_are_rejected() {
        assert!(Permutation::from_vec(vec![0, 0]).is_err());
        assert!(Permutation::from_vec(vec![0, 5]).is_err());
        assert!(Permutation::from_vec(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn apply_then_inverse_round_trips() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let x = [9.0, 8.0, 7.0, 6.0];
        assert_eq!(p.apply_inverse(&p.apply(&x)), x.to_vec());
        assert_eq!(p.apply(&p.apply_inverse(&x)), x.to_vec());
    }

    #[test]
    fn inverse_and_positions_agree() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        for i in 0..3 {
            assert_eq!(p.position_of(p.get(i)), i);
        }
        let inv = p.inverse();
        for i in 0..3 {
            assert_eq!(inv.get(p.get(i)), i);
        }
    }

    #[test]
    fn composition_matches_sequential_application() {
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_vec(vec![2, 1, 0]).unwrap();
        let pq = p.compose(&q);
        let x = [5.0, 6.0, 7.0];
        assert_eq!(pq.apply(&x), p.apply(&q.apply(&x)));
    }
}
