//! Error type for sparse linear algebra operations.

use std::error::Error;
use std::fmt;

/// Errors produced by the sparse linear algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Two operands have incompatible dimensions.
    DimensionMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        left: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix shape (rows, cols).
        shape: (usize, usize),
    },
    /// A Cholesky factorisation encountered a non-positive pivot.
    NotPositiveDefinite {
        /// Column at which the factorisation broke down.
        column: usize,
        /// The offending pivot value.
        pivot: f64,
    },
    /// An LU factorisation encountered a zero (or numerically negligible) pivot.
    Singular {
        /// Column at which the factorisation broke down.
        column: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual shape (rows, cols).
        shape: (usize, usize),
    },
    /// An iterative solver failed to converge.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Relative residual at the last iteration.
        residual: f64,
    },
    /// The provided data does not describe a valid matrix or permutation.
    InvalidStructure {
        /// Description of the structural violation.
        reason: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, left, right } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            SparseError::NotPositiveDefinite { column, pivot } => write!(
                f,
                "matrix is not positive definite: pivot {pivot:e} at column {column}"
            ),
            SparseError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SparseError::NotSquare { shape } => {
                write!(f, "operation requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            SparseError::DidNotConverge { iterations, residual } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (relative residual {residual:e})"
            ),
            SparseError::InvalidStructure { reason } => {
                write!(f, "invalid matrix structure: {reason}")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::DimensionMismatch {
            op: "matvec",
            left: (3, 4),
            right: (5, 1),
        };
        assert!(e.to_string().contains("matvec"));
        assert!(e.to_string().contains("3x4"));

        let e = SparseError::NotPositiveDefinite {
            column: 7,
            pivot: -1.0,
        };
        assert!(e.to_string().contains("column 7"));

        let e = SparseError::DidNotConverge {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
