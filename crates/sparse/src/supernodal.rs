//! Supernodal numeric Cholesky: the fundamental-supernode partition of the
//! elimination tree and the dense-panel numeric phase built on it.
//!
//! A *fundamental supernode* is a maximal run of consecutive columns
//! `j, j+1, …` where each column's sub-diagonal pattern equals the next
//! column's pattern plus that column's own row — equivalently, where
//! `parent(j) = j+1` in the elimination tree and the factor column counts
//! drop by exactly one. Those columns share one sparsity pattern, so the
//! numeric phase can treat them as a single dense `m × w` panel: scatter the
//! matching entries of `A`, apply every descendant supernode's update as a
//! small dense rank-`w` product, and finish with one dense left-looking
//! Cholesky of the panel. All inner loops stream contiguous factor columns —
//! the same register-friendly discipline as the blocked triangular kernels
//! in [`crate::Panel`]-based solves — instead of the scalar
//! scatter/gather-per-column of the classic up-looking algorithm.
//!
//! The partition is computed once per [`crate::SymbolicCholesky`] analysis
//! and reused by every numeric (re-)factorisation sharing it. On the
//! AMD-ordered paper-grid companion the mean panel is 3–4 columns wide with
//! dense trailing supernodes of 100+ columns, which is where the numeric
//! speedup over the up-looking code comes from (`docs/SPARSE.md` walks
//! through the partition on a worked example; `docs/PERFORMANCE.md` §4 has
//! the measurements).

use crate::{CscMatrix, Result, SparseError};

/// Sentinel for "no entry" in the intra-factorisation link lists.
const NONE: usize = usize::MAX;

/// The fundamental-supernode partition of a Cholesky factor's columns.
///
/// Column indices refer to the *permuted* matrix the analysis was computed
/// for. The partition is a monotone split of `0..n`: supernode `s` owns the
/// contiguous column range [`Supernodes::columns`]`(s)`, and every column
/// belongs to exactly one supernode.
#[derive(Debug, Clone)]
pub struct Supernodes {
    /// Supernode `s` spans columns `ptr[s]..ptr[s + 1]`; `ptr.len()` is the
    /// supernode count plus one.
    ptr: Vec<usize>,
    /// Maps a column to the supernode containing it.
    of: Vec<usize>,
}

impl Supernodes {
    /// Detects the fundamental supernodes of a factor from its elimination
    /// tree and column pointers: column `j` extends the supernode of column
    /// `j − 1` exactly when `parent(j − 1) = j` and column `j − 1` has one
    /// more nonzero than column `j` (which forces the two sub-diagonal
    /// patterns to coincide).
    pub(crate) fn from_etree(parent: &[Option<usize>], l_indptr: &[usize]) -> Self {
        let n = parent.len();
        let mut ptr = Vec::new();
        ptr.push(0);
        for j in 1..n {
            let count_prev = l_indptr[j] - l_indptr[j - 1];
            let count = l_indptr[j + 1] - l_indptr[j];
            let extends = parent[j - 1] == Some(j) && count_prev == count + 1;
            if !extends {
                ptr.push(j);
            }
        }
        if n > 0 {
            ptr.push(n);
        }
        let mut of = vec![0usize; n];
        for s in 0..ptr.len() - 1 {
            of[ptr[s]..ptr[s + 1]].fill(s);
        }
        Supernodes { ptr, of }
    }

    /// Builds the partition directly from its boundary list (`ptr[s]..
    /// ptr[s+1]` are supernode `s`'s columns; the last entry is `n`).
    pub(crate) fn from_partition(ptr: Vec<usize>) -> Self {
        // lint: allow(L001, every caller seeds ptr with the leading 0 boundary, so it is non-empty)
        let n = *ptr.last().expect("partition has at least the [0] boundary");
        let mut of = vec![0usize; n];
        for s in 0..ptr.len() - 1 {
            of[ptr[s]..ptr[s + 1]].fill(s);
        }
        Supernodes { ptr, of }
    }

    /// The partition boundary list: supernode `s` spans columns
    /// `boundaries()[s]..boundaries()[s + 1]`, and the final entry is the
    /// matrix dimension. This is the slice the supernode-containment
    /// validator ([`crate::invariants::validate_supernode_containment`])
    /// consumes.
    pub fn boundaries(&self) -> &[usize] {
        &self.ptr
    }

    /// Number of supernodes in the partition.
    pub fn count(&self) -> usize {
        self.ptr.len() - 1
    }

    /// The contiguous column range of supernode `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= self.count()`.
    pub fn columns(&self, s: usize) -> std::ops::Range<usize> {
        self.ptr[s]..self.ptr[s + 1]
    }

    /// The supernode containing `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn containing(&self, column: usize) -> usize {
        self.of[column]
    }

    /// Width of the widest supernode (0 for an empty partition).
    pub fn max_width(&self) -> usize {
        (0..self.count())
            .map(|s| self.ptr[s + 1] - self.ptr[s])
            .max()
            .unwrap_or(0)
    }
}

/// Whether merging two runs of columns into one `w`-wide panel with
/// `zeros` explicit padding zeros out of `entries` total panel entries is
/// worth it. The tiers mirror the classic relaxed-amalgamation schedule:
/// narrow panels gain so much from blocked kernels that generous padding
/// pays off, wide panels must stay nearly dense.
fn merge_is_worthwhile(w: usize, zeros: usize, entries: usize) -> bool {
    if zeros == 0 {
        return true;
    }
    let frac = zeros as f64 / entries as f64;
    (w <= 4 && frac < 0.9) || (w <= 16 && frac < 0.5) || (w <= 48 && frac < 0.2) || frac < 0.05
}

/// Relaxed supernode amalgamation.
///
/// Takes the fundamental partition and the *exact* factor pattern
/// (`l_indptr`/`l_indices`, each column diagonal-first then ascending) and
/// greedily merges adjacent supernodes whenever the resulting panel stays
/// dense enough ([`merge_is_worthwhile`]). Merged columns are padded to the
/// union pattern with explicit zeros, which buys much wider panels — the
/// quantity that decides how fast the dense-panel numeric phase runs — for
/// a small, bounded amount of extra storage. Returns the merged partition
/// and the padded pattern.
///
/// Only child→parent merges are considered (`parent[last column of the
/// group] == first column of the next supernode`): that chain is what keeps
/// every *exact* row of a merged column inside the pattern of every later
/// merged column, which in turn guarantees the descendant-scatter containment
/// the numeric phase relies on (a descendant's padded rows must land inside
/// its ancestor's panel pattern). Columns relabelled by an elimination-tree
/// postorder — which `SymbolicCholesky::from_permuted` applies first — make
/// such chains plentiful, because a postorder places every parent right
/// after its last child's subtree.
pub(crate) fn amalgamate(
    fundamental: &Supernodes,
    parent: &[Option<usize>],
    l_indptr: &[usize],
    l_indices: &[usize],
) -> (Supernodes, Vec<usize>, Vec<usize>) {
    let nsuper = fundamental.count();
    let n = l_indptr.len() - 1;

    // Decide the merged group boundaries.
    let mut boundaries = vec![0usize];
    let mut cur_pattern: Vec<usize> = Vec::new();
    let mut merged: Vec<usize> = Vec::new();
    let mut cur_start = 0usize;
    let mut cur_exact = 0usize;
    for s in 0..nsuper {
        let cols = fundamental.columns(s);
        let s_pattern = &l_indices[l_indptr[cols.start]..l_indptr[cols.start + 1]];
        let s_exact: usize = l_indptr[cols.end] - l_indptr[cols.start];
        if cur_pattern.is_empty() && cols.start == cur_start {
            cur_pattern.extend_from_slice(s_pattern);
            cur_exact = s_exact;
            continue;
        }
        // Candidate: extend the current group with supernode s. The union
        // pattern starts with the merged columns themselves, so the padded
        // panel holds w*M - w*(w-1)/2 entries.
        merged.clear();
        merged.reserve(cur_pattern.len() + s_pattern.len());
        let (mut i, mut j) = (0, 0);
        while i < cur_pattern.len() && j < s_pattern.len() {
            let (a, b) = (cur_pattern[i], s_pattern[j]);
            merged.push(a.min(b));
            i += (a <= b) as usize;
            j += (b <= a) as usize;
        }
        merged.extend_from_slice(&cur_pattern[i..]);
        merged.extend_from_slice(&s_pattern[j..]);

        let w = cols.end - cur_start;
        let entries = w * merged.len() - w * (w - 1) / 2;
        let zeros = entries - (cur_exact + s_exact);
        let chains = parent[cols.start - 1] == Some(cols.start);
        if chains && merge_is_worthwhile(w, zeros, entries) {
            std::mem::swap(&mut cur_pattern, &mut merged);
            cur_exact += s_exact;
        } else {
            boundaries.push(cols.start);
            cur_pattern.clear();
            cur_pattern.extend_from_slice(s_pattern);
            cur_start = cols.start;
            cur_exact = s_exact;
        }
    }
    if n > 0 {
        boundaries.push(n);
    }
    let snodes = Supernodes::from_partition(boundaries);

    // Rebuild the pattern: every column of a merged supernode stores the
    // union pattern from its own row down (explicit zeros where the exact
    // pattern had none).
    let mut union_pat: Vec<usize> = Vec::new();
    let mut new_indptr = Vec::with_capacity(n + 1);
    new_indptr.push(0usize);
    let mut new_indices: Vec<usize> = Vec::new();
    for s in 0..snodes.count() {
        let cols = snodes.columns(s);
        union_pat.clear();
        for j in cols.clone() {
            let col = &l_indices[l_indptr[j]..l_indptr[j + 1]];
            if union_pat.is_empty() {
                union_pat.extend_from_slice(col);
            } else {
                merged.clear();
                let (mut i, mut k) = (0, 0);
                while i < union_pat.len() && k < col.len() {
                    let (a, b) = (union_pat[i], col[k]);
                    merged.push(a.min(b));
                    i += (a <= b) as usize;
                    k += (b <= a) as usize;
                }
                merged.extend_from_slice(&union_pat[i..]);
                merged.extend_from_slice(&col[k..]);
                std::mem::swap(&mut union_pat, &mut merged);
            }
        }
        for (b, _) in cols.clone().enumerate() {
            new_indices.extend_from_slice(&union_pat[b..]);
            new_indptr.push(new_indices.len());
        }
    }
    (snodes, new_indptr, new_indices)
}

/// Left-looking supernodal numeric factorisation.
///
/// `l_indptr`/`l_indices` hold the full precomputed pattern of `L` (each
/// column sorted ascending, diagonal first); `l_data` receives the values.
/// `a_perm` is the permuted input matrix, whose pattern must be contained in
/// the analysed pattern — exactly what
/// [`crate::SymbolicCholesky::factor_numeric`] verifies before calling in.
pub(crate) fn factor_supernodal(
    a_perm: &CscMatrix,
    snodes: &Supernodes,
    l_indptr: &[usize],
    l_indices: &[usize],
    l_data: &mut [f64],
) -> Result<()> {
    let n = a_perm.ncols();
    let nsuper = snodes.count();

    // Scratch: the widest panel determines the dense buffer; `pos` maps a
    // global row to its local index inside the current panel.
    let mut max_panel = 0usize;
    for s in 0..nsuper {
        let cols = snodes.columns(s);
        let m = l_indptr[cols.start + 1] - l_indptr[cols.start];
        max_panel = max_panel.max(m * cols.len());
    }
    let mut panel = vec![0.0f64; max_panel];
    let mut pos = vec![0usize; n];
    // Per-supernode descendant lists: `link_head[s]` chains (via `link_next`)
    // the factored supernodes whose below-panel rows reach s's columns next;
    // `frontier[d]` is the index into d's pattern where those rows start.
    let mut link_head = vec![NONE; nsuper];
    let mut link_next = vec![NONE; nsuper];
    let mut frontier = vec![0usize; nsuper];
    // Per-descendant scratch (relative indices and one accumulation column).
    let mut rel: Vec<usize> = Vec::new();
    let mut acc: Vec<f64> = Vec::new();
    // Dense inner loops dispatch to the active vector backend (scalar by
    // default; bit-identical by the no-FMA/independent-lane rules).
    let backend = crate::simd::panel_backend();

    // The numeric phase proper: only the pre-sized scratch above may be
    // resized (amortised O(1), cleared per descendant), never fresh buffers.
    // lint: hot(supernodal-numeric)
    for s in 0..nsuper {
        let cols = snodes.columns(s);
        let (k0, k1) = (cols.start, cols.end);
        let w = k1 - k0;
        let pat = &l_indices[l_indptr[k0]..l_indptr[k0 + 1]];
        let m = pat.len();
        let d_panel = &mut panel[..m * w];
        d_panel.fill(0.0);
        for (local, &row) in pat.iter().enumerate() {
            pos[row] = local;
        }

        // Scatter the lower triangle of A's columns k0..k1 into the panel.
        for (jj, j) in (k0..k1).enumerate() {
            let (rows, vals) = a_perm.col(j);
            let col = &mut d_panel[jj * m..(jj + 1) * m];
            for (&i, &v) in rows.iter().zip(vals) {
                if i >= j {
                    col[pos[i]] = v;
                }
            }
        }

        // Apply every pending descendant update, re-queueing each descendant
        // to the supernode its next below-panel row belongs to.
        let mut d = link_head[s];
        link_head[s] = NONE;
        while d != NONE {
            let next_d = link_next[d];
            let dcols = snodes.columns(d);
            let (d0, wd) = (dcols.start, dcols.len());
            let dpat = &l_indices[l_indptr[d0]..l_indptr[d0 + 1]];
            let dm = dpat.len();
            let f = frontier[d];

            // Relative indices of the descendant's active rows in the panel,
            // shared by all target columns of this (d, s) pair.
            rel.clear();
            rel.extend(dpat[f..].iter().map(|&r| pos[r]));

            // Target columns of this panel: descendant pattern rows < k1.
            let f_end = f + dpat[f..].partition_point(|&r| r < k1);

            // Update the targets in groups of four. For a group starting at
            // pattern row i1 the contribution is the dense product of the
            // descendant's rows i1..dm with its rows i1..i1+nb — each
            // descendant column t is a contiguous slice of `l_data` (the
            // entry for pattern row i sits at l_indptr[d0+t] + i - t), so
            // one streaming pass over lt[i1..dm] feeds all four accumulator
            // columns (4x less factor traffic than a per-target pass). The
            // upper-triangle corner of the group (row < target) is computed
            // but never scattered.
            let mut i1 = f;
            while i1 < f_end {
                let nb = (f_end - i1).min(4);
                let len = dm - i1;
                acc.clear();
                acc.resize(nb * len, 0.0);
                for t in 0..wd {
                    let lt = &l_data[l_indptr[d0 + t] - t..][..dm];
                    let c = &lt[i1..i1 + nb];
                    let src = &lt[i1..dm];
                    match nb {
                        4 => {
                            let (a0, rest) = acc.split_at_mut(len);
                            let (a1, rest) = rest.split_at_mut(len);
                            let (a2, a3) = rest.split_at_mut(len);
                            opera_simd::axpy4(
                                [a0, a1, a2, a3],
                                src,
                                [c[0], c[1], c[2], c[3]],
                                backend,
                            );
                        }
                        _ => {
                            for (b, &cb) in c.iter().enumerate() {
                                let ab = &mut acc[b * len..(b + 1) * len];
                                opera_simd::axpy(ab, src, cb, backend);
                            }
                        }
                    }
                }
                for b in 0..nb {
                    let col_base = (dpat[i1 + b] - k0) * m;
                    let ab = &acc[b * len..(b + 1) * len];
                    for off in b..len {
                        d_panel[col_base + rel[i1 - f + off]] -= ab[off];
                    }
                }
                i1 += nb;
            }

            // Rows f_end.. lie beyond this panel: hand the descendant on.
            if f_end < dm {
                frontier[d] = f_end;
                let t = snodes.containing(dpat[f_end]);
                link_next[d] = link_head[t];
                link_head[t] = d;
            }
            d = next_d;
        }

        // Dense left-looking Cholesky of the panel: column j first absorbs
        // the rank-1 updates of the panel columns before it (four at a
        // time, so each pass loads four update columns against one
        // register-resident target element), then the `i` loop from the
        // diagonal down both forms the pivot column and applies the
        // triangular solve to the below-diagonal rows.
        for j in 0..w {
            let (left, right) = d_panel.split_at_mut(j * m);
            let jcol = &mut right[..m];
            let mut t = 0;
            while t + 4 <= j {
                let cs = [
                    left[t * m + j],
                    left[(t + 1) * m + j],
                    left[(t + 2) * m + j],
                    left[(t + 3) * m + j],
                ];
                let t0 = &left[t * m + j..(t + 1) * m];
                let t1 = &left[(t + 1) * m + j..(t + 2) * m];
                let t2 = &left[(t + 2) * m + j..(t + 3) * m];
                let t3 = &left[(t + 3) * m + j..(t + 4) * m];
                opera_simd::rank4_sub(&mut jcol[j..m], [t0, t1, t2, t3], cs, backend);
                t += 4;
            }
            while t < j {
                let coef = left[t * m + j];
                let tcol = &left[t * m + j..(t + 1) * m];
                opera_simd::sub_axpy(&mut jcol[j..m], tcol, coef, backend);
                t += 1;
            }
            let pivot = jcol[j];
            if pivot <= 0.0 || !pivot.is_finite() {
                return Err(SparseError::NotPositiveDefinite {
                    column: k0 + j,
                    pivot,
                });
            }
            let sq = pivot.sqrt();
            jcol[j] = sq;
            opera_simd::div_assign(&mut jcol[j + 1..m], sq, backend);
        }

        // Copy the finished panel into the factor columns.
        for j in 0..w {
            let dst = &mut l_data[l_indptr[k0 + j]..l_indptr[k0 + j + 1]];
            dst.copy_from_slice(&d_panel[j * m + j..(j + 1) * m]);
        }

        // Queue this supernode as a descendant of the supernode owning its
        // first below-panel row.
        if w < m {
            frontier[s] = w;
            let t = snodes.containing(pat[w]);
            link_next[s] = link_head[t];
            link_head[t] = s;
        }
    }
    // lint: end-hot
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_columns_exactly_once() {
        // Tridiagonal chain: parent(j) = j+1 everywhere, counts 2,2,...,2,1 —
        // the count condition only lets the final two columns merge.
        let parent = vec![Some(1), Some(2), Some(3), None];
        let l_indptr = vec![0, 2, 4, 6, 7];
        let sn = Supernodes::from_etree(&parent, &l_indptr);
        let mut seen = [false; 4];
        for s in 0..sn.count() {
            for j in sn.columns(s) {
                assert!(!seen[j], "column {j} in two supernodes");
                seen[j] = true;
                assert_eq!(sn.containing(j), s);
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(sn.columns(sn.count() - 1), 2..4);
    }

    #[test]
    fn dense_trailing_block_forms_one_supernode() {
        // A fully dense factor: counts n, n-1, ..., 1 and a chain etree —
        // one supernode spanning everything.
        let n = 5;
        let parent: Vec<Option<usize>> = (0..n)
            .map(|j| if j + 1 < n { Some(j + 1) } else { None })
            .collect();
        let mut l_indptr = vec![0usize];
        for j in 0..n {
            l_indptr.push(l_indptr[j] + (n - j));
        }
        let sn = Supernodes::from_etree(&parent, &l_indptr);
        assert_eq!(sn.count(), 1);
        assert_eq!(sn.columns(0), 0..n);
        assert_eq!(sn.max_width(), n);
    }

    #[test]
    fn empty_partition_is_valid() {
        let sn = Supernodes::from_etree(&[], &[0]);
        assert_eq!(sn.count(), 0);
        assert_eq!(sn.max_width(), 0);
    }
}
