//! Elimination tree analysis for sparse Cholesky factorisation.

use crate::CscMatrix;

/// Sentinel used internally for "no parent".
const NONE: usize = usize::MAX;

/// Computes the elimination tree of a symmetric matrix given by its (full or
/// upper-triangular) CSC pattern.
///
/// The elimination tree has one node per column; `parent[j]` is the parent of
/// column `j`, or `None` for roots. Column `i` is an ancestor of column `j`
/// (with `i > j`) exactly when eliminating `j` creates fill that reaches `i`.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn elimination_tree(a: &CscMatrix) -> Vec<Option<usize>> {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "elimination tree requires a square matrix");
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        let (rows, _) = a.col(k);
        for &row in rows {
            let mut i = row;
            // Only the upper-triangular part (i < k) drives the tree.
            while i != NONE && i < k {
                let next = ancestor[i];
                ancestor[i] = k;
                if next == NONE {
                    parent[i] = k;
                }
                i = next;
            }
        }
    }
    parent
        .into_iter()
        .map(|p| if p == NONE { None } else { Some(p) })
        .collect()
}

/// Computes a postordering of a forest given by `parent` pointers.
///
/// The returned vector maps postorder position to node index. Children are
/// visited before their parents, which is the order required by supernodal
/// and column-count algorithms (and a valid elimination order equivalent to
/// the original one).
pub fn postorder(parent: &[Option<usize>]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists.
    let mut first_child = vec![NONE; n];
    let mut next_sibling = vec![NONE; n];
    // Insert children in reverse so that traversal visits lower indices first.
    for j in (0..n).rev() {
        if let Some(p) = parent[j] {
            next_sibling[j] = first_child[p];
            first_child[p] = j;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for (root, par) in parent.iter().enumerate().take(n) {
        if par.is_some() {
            continue;
        }
        // Iterative DFS with explicit visit state.
        stack.push((root, false));
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                post.push(node);
            } else {
                stack.push((node, true));
                let mut c = first_child[node];
                // Push children so that the first child is processed first.
                let mut children = Vec::new();
                while c != NONE {
                    children.push(c);
                    c = next_sibling[c];
                }
                for &child in children.iter().rev() {
                    stack.push((child, false));
                }
            }
        }
    }
    post
}

/// Computes the nonzero pattern of row `k` of the Cholesky factor `L`
/// (the "elimination reach" of column `k` through the tree).
///
/// Returns the pattern as a list of column indices `< k`, in topological
/// (ascending-ancestor) order suitable for the up-looking factorisation.
///
/// `work` must be a caller-provided scratch vector of length ≥ n, initialised
/// to `false`, and is restored to all-`false` before returning.
pub(crate) fn ereach(
    a: &CscMatrix,
    k: usize,
    parent: &[Option<usize>],
    work: &mut [bool],
) -> Vec<usize> {
    let (rows, _) = a.col(k);
    let mut pattern: Vec<usize> = Vec::new();
    work[k] = true;
    for &i0 in rows {
        if i0 > k {
            continue;
        }
        let mut path = Vec::new();
        let mut i = i0;
        while !work[i] {
            path.push(i);
            work[i] = true;
            i = match parent[i] {
                Some(p) => p,
                None => break,
            };
        }
        // `path` runs from the starting node upward (deepest node first).
        // Prepending whole segments keeps every node ahead of its ancestors,
        // which is the topological order the up-looking factorisation needs.
        pattern.splice(0..0, path);
    }
    // Reset the work flags.
    for &j in &pattern {
        work[j] = false;
    }
    work[k] = false;
    pattern
}

/// Number of nonzeros in each column of the Cholesky factor `L`
/// (including the diagonal), computed by replaying the elimination reach.
///
/// This is an O(|L|) symbolic analysis — adequate for the matrix sizes used
/// by the OPERA experiments.
///
/// # Panics
///
/// Panics if `parent.len()` does not match the matrix dimension.
pub fn column_counts(a: &CscMatrix, parent: &[Option<usize>]) -> Vec<usize> {
    let n = a.ncols();
    assert_eq!(parent.len(), n, "parent vector has wrong length");
    let mut counts = vec![1usize; n]; // diagonal entries
    let mut work = vec![false; n];
    for k in 0..n {
        for i in ereach(a, k, parent, &mut work) {
            // L(k, i) is a nonzero in column i.
            counts[i] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    /// Arrow matrix: dense last row/column, diagonal otherwise.
    fn arrow(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
        }
        for i in 0..n - 1 {
            t.push(i, n - 1, 1.0);
            t.push(n - 1, i, 1.0);
        }
        t.to_csc()
    }

    #[test]
    fn etree_of_arrow_matrix_points_to_last_column() {
        let a = arrow(5);
        let parent = elimination_tree(&a);
        for p in parent.iter().take(4) {
            assert_eq!(*p, Some(4));
        }
        assert_eq!(parent[4], None);
    }

    #[test]
    fn etree_of_tridiagonal_is_a_chain() {
        let n = 6;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
        }
        for i in 0..n - 1 {
            t.add_symmetric_pair(i, i + 1, 1.0);
        }
        let parent = elimination_tree(&t.to_csc());
        for (i, p) in parent.iter().enumerate().take(n - 1) {
            assert_eq!(*p, Some(i + 1));
        }
        assert_eq!(parent[n - 1], None);
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let a = arrow(5);
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        assert_eq!(post.len(), 5);
        let position: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (i, &node) in post.iter().enumerate() {
                pos[node] = i;
            }
            pos
        };
        for (j, p) in parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(position[j] < position[*p], "child {j} after parent {p}");
            }
        }
    }

    #[test]
    fn postorder_handles_forest_of_singletons() {
        let parent = vec![None, None, None];
        let post = postorder(&parent);
        assert_eq!(post.len(), 3);
    }

    #[test]
    fn column_counts_of_diagonal_matrix_are_all_one() {
        let a = CscMatrix::identity(4);
        let parent = elimination_tree(&a);
        assert_eq!(column_counts(&a, &parent), vec![1, 1, 1, 1]);
    }

    #[test]
    fn column_counts_of_arrow_matrix() {
        // Ordered with the dense row last, the factor has no fill: each of
        // the first n-1 columns has 2 entries (diag + last row), the last has 1.
        let a = arrow(5);
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        assert_eq!(counts, vec![2, 2, 2, 2, 1]);
    }
}
