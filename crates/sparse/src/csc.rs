//! Compressed sparse column (CSC) matrix.

use crate::{CsrMatrix, Permutation, Result, SparseError};

/// A sparse matrix in compressed sparse column format.
///
/// Column `j` occupies `indices[indptr[j]..indptr[j+1]]` (row indices, sorted
/// ascending and unique) and the matching slice of `data`. CSC is the natural
/// layout for sparse factorisations (Cholesky, LU) which proceed column by
/// column.
///
/// # Example
///
/// ```
/// use opera_sparse::{TripletMatrix, CscMatrix};
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(1, 0, 2.0);
/// t.push(1, 1, 3.0);
/// let a: CscMatrix = t.to_csc();
/// assert_eq!(a.col(0).0, &[0, 1]);
/// assert_eq!(a.get(1, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from raw parts, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when the arrays are
    /// inconsistent (wrong lengths, unsorted row indices, out-of-bounds rows).
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<Self> {
        // Validate by reusing the CSR validator on the transposed
        // interpretation, then move the arrays into a CscMatrix.
        let as_csr = CsrMatrix::from_raw_parts(ncols, nrows, indptr, indices, data)?;
        let csc = CscMatrix::from_transposed_csr(as_csr);
        #[cfg(feature = "strict-invariants")]
        csc.validate()?;
        Ok(csc)
    }

    /// Revalidates every structural invariant of this matrix: monotone
    /// `indptr`, strictly ascending in-bounds row indices per column, and
    /// finite values (see [`crate::invariants::validate_csc_slices`]).
    ///
    /// Always available; with the `strict-invariants` feature the checked
    /// constructors call it automatically.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] naming the first violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        crate::invariants::validate_csc_slices(
            self.nrows,
            self.ncols,
            &self.indptr,
            &self.indices,
            &self.data,
        )
    }

    /// Interprets a CSR matrix as the CSC storage of its transpose
    /// (zero-copy re-labelling used internally by conversions).
    pub(crate) fn from_transposed_csr(t: CsrMatrix) -> Self {
        let nrows = t.ncols();
        let ncols = t.nrows();
        // Deconstruct the CSR matrix: its rows become our columns.
        let indptr = t.indptr().to_vec();
        let indices = t.indices().to_vec();
        let data = t.data().to_vec();
        CscMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Row index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the stored values (pattern is fixed).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Returns the row indices and values of column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let lo = self.indptr[j];
        let hi = self.indptr[j + 1];
        (&self.indices[lo..hi], &self.data[lo..hi])
    }

    /// Returns the value at `(i, j)`, or `0.0` if the entry is not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (rows, vals) = self.col(j);
        match rows.binary_search(&i) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                y[i] += v * xj;
            }
        }
        y
    }

    /// Converts to CSR format.
    pub fn to_csr(&self) -> CsrMatrix {
        // A CSC matrix with arrays (indptr, indices, data) is exactly the CSR
        // storage of its transpose; transposing that CSR matrix gives the CSR
        // storage of the original matrix.
        let as_csr_of_transpose = CsrMatrix::from_raw_parts(
            self.ncols,
            self.nrows,
            self.indptr.clone(),
            self.indices.clone(),
            self.data.clone(),
        )
        // lint: allow(L001, arrays come from a validated CscMatrix, so re-validation cannot fail)
        .expect("internal CSC arrays are always structurally valid");
        as_csr_of_transpose.transpose()
    }

    /// Symmetric permutation `P·A·Pᵀ` of a square matrix, returning CSC.
    ///
    /// Entry `(i, j)` of the result equals `A(p[i], p[j])` where `p` is the
    /// permutation's image (`perm.get(i)` = original index placed at `i`).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square inputs or
    /// [`SparseError::DimensionMismatch`] if the permutation length differs.
    pub fn permute_symmetric(&self, perm: &Permutation) -> Result<CscMatrix> {
        if self.nrows != self.ncols {
            return Err(SparseError::NotSquare {
                shape: (self.nrows, self.ncols),
            });
        }
        if perm.len() != self.nrows {
            return Err(SparseError::DimensionMismatch {
                op: "permute_symmetric",
                left: (self.nrows, self.ncols),
                right: (perm.len(), perm.len()),
            });
        }
        let n = self.nrows;
        let inv = perm.inverse_slice();
        // new column j corresponds to old column perm[j]; new row index of an
        // old row i is inv[i].
        let mut counts = vec![0usize; n + 1];
        for new_j in 0..n {
            let old_j = perm.get(new_j);
            counts[new_j + 1] = self.indptr[old_j + 1] - self.indptr[old_j];
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let nnz = self.nnz();
        let mut indices = vec![0usize; nnz];
        let mut data = vec![0.0; nnz];
        for (new_j, &base) in counts.iter().take(n).enumerate() {
            let old_j = perm.get(new_j);
            let (rows, vals) = self.col(old_j);
            // Gather and sort the permuted row indices of this column.
            let mut entries: Vec<(usize, f64)> =
                rows.iter().zip(vals).map(|(&i, &v)| (inv[i], v)).collect();
            entries.sort_unstable_by_key(|e| e.0);
            for (k, (i, v)) in entries.into_iter().enumerate() {
                indices[base + k] = i;
                data[base + k] = v;
            }
        }
        let permuted = CscMatrix {
            nrows: n,
            ncols: n,
            indptr: counts,
            indices,
            data,
        };
        #[cfg(feature = "strict-invariants")]
        permuted.validate()?;
        Ok(permuted)
    }

    /// Extracts the lower triangle (including the diagonal) as CSC.
    pub fn lower_triangle(&self) -> CscMatrix {
        let mut indptr = Vec::with_capacity(self.ncols + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                if i >= j {
                    indices.push(i);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            data,
        }
    }

    /// Extracts the diagonal as a dense vector (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        let mut d = vec![0.0; n];
        for (j, item) in d.iter_mut().enumerate() {
            *item = self.get(j, j);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        let mut t = TripletMatrix::new(3, 3);
        for &(i, j, v) in &[
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 3.0),
            (2, 0, 4.0),
            (2, 2, 5.0),
        ] {
            t.push(i, j, v);
        }
        t.to_csc()
    }

    #[test]
    fn csc_and_csr_round_trip() {
        let a = sample();
        let csr = a.to_csr();
        assert_eq!(csr.get(2, 0), 4.0);
        let back = csr.to_csc();
        assert_eq!(a, back);
    }

    #[test]
    fn column_access_is_sorted() {
        let a = sample();
        let (rows, vals) = a.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
    }

    #[test]
    fn matvec_matches_csr() {
        let a = sample();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(a.matvec(&x), a.to_csr().matvec(&x));
    }

    #[test]
    fn symmetric_permutation_preserves_entries() {
        // Symmetric matrix
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 2, 4.0);
        t.push(0, 1, -1.0);
        t.push(1, 0, -1.0);
        let a = t.to_csc();
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let b = a.permute_symmetric(&p).unwrap();
        // b[i][j] = a[p[i]][p[j]]
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(p.get(i), p.get(j)));
            }
        }
    }

    #[test]
    fn lower_triangle_drops_strict_upper() {
        let a = sample();
        let l = a.lower_triangle();
        assert_eq!(l.get(0, 2), 0.0);
        assert_eq!(l.get(2, 0), 4.0);
        assert_eq!(l.get(1, 1), 3.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn invalid_raw_parts_are_rejected() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    }
}
