//! Sparse LU factorisation with partial pivoting (left-looking,
//! Gilbert–Peierls style).
//!
//! This is the general-purpose fallback solver used when a matrix is not
//! symmetric positive definite (for instance when ideal voltage sources are
//! stamped with MNA branch currents instead of pad resistances, or if the
//! Galerkin-augmented matrix loses definiteness for extreme variation
//! magnitudes).

use crate::triangular::{
    solve_lower_csc, solve_lower_csc_panel, solve_upper_csc, solve_upper_csc_panel,
};
use crate::{CscMatrix, CsrMatrix, Panel, Permutation, Result, SolveWorkspace, SparseError};

/// A sparse LU factorisation `P·A = L·U` with partial (row) pivoting.
///
/// `L` is unit-diagonal lower triangular and `U` is upper triangular, both in
/// CSC format. The row permutation `P` is chosen during factorisation.
///
/// # Example
///
/// ```
/// use opera_sparse::{CsrMatrix, LuFactor};
///
/// # fn main() -> Result<(), opera_sparse::SparseError> {
/// let a = CsrMatrix::from_dense(2, 2, &[0.0, 2.0, 3.0, 1.0], 0.0);
/// let lu = LuFactor::factor(&a)?;
/// let x = lu.solve(&[4.0, 5.0]);
/// assert!((2.0 * x[1] - 4.0).abs() < 1e-12);
/// assert!((3.0 * x[0] + x[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    n: usize,
    /// Row permutation: `row_perm.get(i)` is the original row placed at
    /// pivotal position `i`.
    row_perm: Permutation,
    l: CscMatrix,
    u: CscMatrix,
}

impl LuFactor {
    /// Factors a square matrix given in CSR format.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for non-square input and
    /// [`SparseError::Singular`] when no acceptable pivot exists in a column.
    pub fn factor(a: &CsrMatrix) -> Result<Self> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                shape: (a.nrows(), a.ncols()),
            });
        }
        let n = a.nrows();
        let a_csc = a.to_csc();

        // pinv[original_row] = pivotal position, usize::MAX while unassigned.
        let mut pinv = vec![usize::MAX; n];
        let mut perm = vec![usize::MAX; n];

        // L and U are built column by column.
        let mut l_indptr = vec![0usize];
        let mut l_indices: Vec<usize> = Vec::new();
        let mut l_data: Vec<f64> = Vec::new();
        let mut u_indptr = vec![0usize];
        let mut u_indices: Vec<usize> = Vec::new();
        let mut u_data: Vec<f64> = Vec::new();

        // Dense workspace for the current column and visit marks for the DFS.
        let mut x = vec![0.0f64; n];
        let mut mark = vec![false; n];

        // The column index k drives several parallel arrays at once, so the
        // indexed loop is the clearest form here.
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            // --- Symbolic: reachability of column k of A through the columns
            // of L that already have an assigned pivot row.
            let (a_rows, a_vals) = a_csc.col(k);
            let mut pattern: Vec<usize> = Vec::new(); // topological order (reverse DFS finish)
            let mut stack: Vec<(usize, usize)> = Vec::new();
            for &i in a_rows {
                if mark[i] {
                    continue;
                }
                // Depth-first search following L columns of pivotal rows.
                stack.push((i, 0));
                mark[i] = true;
                while let Some((node, child_idx)) = stack.pop() {
                    // Row `node` corresponds to L column pinv[node] if pivotal.
                    let col = pinv[node];
                    let (l_rows_node, _) = if col != usize::MAX {
                        let lo = l_indptr[col];
                        let hi = l_indptr[col + 1];
                        (&l_indices[lo..hi], &l_data[lo..hi])
                    } else {
                        (&l_indices[0..0], &l_data[0..0])
                    };
                    let mut advanced = false;
                    let mut ci = child_idx;
                    while ci < l_rows_node.len() {
                        let child = l_rows_node[ci];
                        ci += 1;
                        if !mark[child] {
                            mark[child] = true;
                            stack.push((node, ci));
                            stack.push((child, 0));
                            advanced = true;
                            break;
                        }
                    }
                    if !advanced {
                        pattern.push(node);
                    }
                }
            }

            // --- Numeric: sparse triangular solve x = L \ A(:, k) on the
            // reach, processing nodes in topological order (pattern is in
            // DFS-finish order: dependencies first ⇒ iterate in reverse).
            for (&i, &v) in a_rows.iter().zip(a_vals) {
                x[i] = v;
            }
            for idx in (0..pattern.len()).rev() {
                let row = pattern[idx];
                let col = pinv[row];
                if col == usize::MAX {
                    continue;
                }
                let xj = x[row];
                if xj == 0.0 {
                    continue;
                }
                let lo = l_indptr[col];
                let hi = l_indptr[col + 1];
                // The first entry of each L column is the unit diagonal
                // (the pivot row itself); skip it.
                for p in (lo + 1)..hi {
                    x[l_indices[p]] -= l_data[p] * xj;
                }
            }

            // --- Pivot: largest magnitude among non-pivotal rows in pattern
            // plus the original column entries (all are in `pattern` already).
            let mut pivot_row = usize::MAX;
            let mut pivot_val = 0.0f64;
            for &row in &pattern {
                if pinv[row] == usize::MAX && x[row].abs() > pivot_val.abs() {
                    pivot_val = x[row];
                    pivot_row = row;
                }
            }
            if pivot_row == usize::MAX || pivot_val.abs() < 1e-300 {
                return Err(SparseError::Singular { column: k });
            }
            pinv[pivot_row] = k;
            perm[k] = pivot_row;

            // --- Store U(:, k): entries with pivotal rows (position < k) plus
            // the diagonal; store L(:, k): non-pivotal rows scaled by pivot.
            let mut u_col: Vec<(usize, f64)> = Vec::new();
            let mut l_col: Vec<(usize, f64)> = Vec::new();
            for &row in &pattern {
                let v = x[row];
                x[row] = 0.0;
                mark[row] = false;
                let pos = pinv[row];
                if row == pivot_row {
                    continue; // handled below
                }
                if pos != usize::MAX && pos < k {
                    if v != 0.0 {
                        u_col.push((pos, v));
                    }
                } else if v != 0.0 {
                    l_col.push((row, v / pivot_val));
                }
            }
            u_col.push((k, pivot_val));
            u_col.sort_unstable_by_key(|e| e.0);
            // L column: unit diagonal first (stored in original row indices;
            // solves remap through the permutation).
            for (r, v) in u_col {
                u_indices.push(r);
                u_data.push(v);
            }
            u_indptr.push(u_indices.len());

            l_indices.push(pivot_row);
            l_data.push(1.0);
            for (r, v) in l_col {
                l_indices.push(r);
                l_data.push(v);
            }
            l_indptr.push(l_indices.len());
        }

        let row_perm =
            // lint: allow(L001, partial pivoting selects each row exactly once, so perm is a bijection)
            Permutation::from_vec(perm).expect("partial pivoting assigns each row exactly once");

        // Remap L's row indices from original rows to pivotal positions so
        // that L becomes a proper lower triangular matrix, then sort columns.
        let mut l_trip = crate::TripletMatrix::new(n, n);
        for j in 0..n {
            for p in l_indptr[j]..l_indptr[j + 1] {
                let orig_row = l_indices[p];
                l_trip.push(pinv[orig_row], j, l_data[p]);
            }
        }
        let l = l_trip.to_csc();
        let u = CscMatrix::from_raw_parts(n, n, u_indptr, u_indices, u_data)?;

        Ok(LuFactor { n, row_perm, l, u })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of nonzeros in `L` plus `U`.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// The unit-lower-triangular factor `L` (in pivotal row order).
    pub fn lower(&self) -> &CscMatrix {
        &self.l
    }

    /// The upper triangular factor `U`.
    pub fn upper(&self) -> &CscMatrix {
        &self.u
    }

    /// The row permutation (`P·A = L·U`).
    pub fn row_permutation(&self) -> &Permutation {
        &self.row_perm
    }

    /// Solves `A·x = b`, allocating the result. In hot loops prefer
    /// [`LuFactor::solve_in_place`] with a reused [`SolveWorkspace`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x, &mut SolveWorkspace::new());
        x
    }

    /// Solves `A·x = b` in place, borrowing the pivoting scratch from `ws`:
    /// once the workspace is warm, the solve performs zero heap allocations.
    /// Bit-identical to [`LuFactor::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve_in_place(&self, b: &mut [f64], ws: &mut SolveWorkspace) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        // P A = L U  ⇒  A x = b  ⇔  L U x = P b.
        let y = ws.scratch(self.n);
        for (yi, &p) in y.iter_mut().zip(self.row_perm.as_slice()) {
            *yi = b[p];
        }
        solve_lower_csc(&self.l, y);
        solve_upper_csc(&self.u, y);
        b.copy_from_slice(y);
    }

    /// Solves `A·X = B` in place for every column of the panel through the
    /// blocked triangular kernels. Each panel column is bit-identical to
    /// [`LuFactor::solve`] on that column.
    ///
    /// # Panics
    ///
    /// Panics if the panel row count does not match the matrix dimension.
    pub fn solve_panel(&self, b: &mut Panel, ws: &mut SolveWorkspace) {
        assert_eq!(b.nrows(), self.n, "panel row count mismatch");
        let n = self.n;
        let k = b.ncols();
        let y = ws.scratch(n * k);
        let perm = self.row_perm.as_slice();
        for (y_col, b_col) in y.chunks_exact_mut(n).zip(b.columns()) {
            for (yi, &p) in y_col.iter_mut().zip(perm) {
                *yi = b_col[p];
            }
        }
        b.data_mut().copy_from_slice(y);
        solve_lower_csc_panel(&self.l, b);
        solve_upper_csc_panel(&self.u, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    #[test]
    fn factorises_a_dense_permutation_like_matrix() {
        let a = CsrMatrix::from_dense(3, 3, &[0.0, 1.0, 0.0, 0.0, 0.0, 2.0, 3.0, 0.0, 0.0], 0.0);
        let lu = LuFactor::factor(&a).unwrap();
        let x = lu.solve(&[1.0, 2.0, 3.0]);
        assert!(a.residual_inf_norm(&x, &[1.0, 2.0, 3.0]) < 1e-12);
    }

    #[test]
    fn solves_random_sparse_system() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let n = 40;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 5.0 + rng.gen::<f64>());
            for _ in 0..3 {
                let j = rng.gen_range(0..n);
                if j != i {
                    t.push(i, j, rng.gen::<f64>() - 0.5);
                }
            }
        }
        let a = t.to_csr();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = LuFactor::factor(&a).unwrap();
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn lu_reconstructs_pa() {
        let a = CsrMatrix::from_dense(3, 3, &[2.0, 1.0, 0.0, 4.0, 3.0, 1.0, 0.0, 1.0, 5.0], 0.0);
        let lu = LuFactor::factor(&a).unwrap();
        let l = lu.lower().to_csr().to_dense();
        let u = lu.upper().to_csr().to_dense();
        let prod = l.matmul(&u);
        // P A: row i of PA is row perm[i] of A.
        let ad = a.to_dense();
        let mut pa = crate::DenseMatrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                pa[(i, j)] = ad[(lu.row_permutation().get(i), j)];
            }
        }
        assert!(prod.max_abs_diff(&pa) < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let a = CsrMatrix::from_dense(2, 2, &[1.0, 2.0, 2.0, 4.0], 0.0);
        assert!(matches!(
            LuFactor::factor(&a),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::factor(&a),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_in_place_and_panel_match_solve_bit_identically() {
        let a = CsrMatrix::from_dense(3, 3, &[2.0, 1.0, 0.0, 4.0, 3.0, 1.0, 0.0, 1.0, 5.0], 0.0);
        let lu = LuFactor::factor(&a).unwrap();
        let rhs: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..3).map(|i| ((2 * i + k) as f64 * 0.4).cos()).collect())
            .collect();
        let mut ws = SolveWorkspace::new();
        let mut panel = Panel::from_columns(&rhs);
        lu.solve_panel(&mut panel, &mut ws);
        for (j, b) in rhs.iter().enumerate() {
            let expected = lu.solve(b);
            assert_eq!(panel.col(j), &expected[..], "panel col {j}");
            let mut x = b.clone();
            lu.solve_in_place(&mut x, &mut ws);
            assert_eq!(x, expected, "in-place col {j}");
        }
        let warm = ws.allocation_count();
        let mut panel2 = Panel::from_columns(&rhs);
        lu.solve_panel(&mut panel2, &mut ws);
        assert_eq!(ws.allocation_count(), warm);
    }

    #[test]
    fn agrees_with_cholesky_on_spd_matrix() {
        let a = CsrMatrix::from_dense(3, 3, &[4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0], 0.0);
        let b = [1.0, 2.0, 3.0];
        let x_lu = LuFactor::factor(&a).unwrap().solve(&b);
        let x_ch = crate::CholeskyFactor::factor(&a).unwrap().solve(&b);
        for (u, v) in x_lu.iter().zip(&x_ch) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
