//! Zero-overhead hierarchical spans, counters and gauges for the OPERA
//! engine pipeline.
//!
//! The engine's observability used to be ad hoc: `perf_report` stopwatched a
//! few phases from the outside and the core crate grew one-off test hooks for
//! every counter a test wanted. This crate replaces both with one
//! instrumentation source:
//!
//! * **Spans** — RAII guards ([`span`], [`SpanGuard`]) measuring wall time on
//!   the monotonic [`Instant`] clock, with automatic nesting via a
//!   thread-local current-span token. Workers on other threads attach to the
//!   spawning span explicitly with [`current_span`] + [`span_under`], so
//!   rayon fan-out keeps correct parentage.
//! * **Counters** — named monotonic totals ([`count`]) plus the owned
//!   [`Counter`] cell for per-object tallies that also feed the global sink.
//! * **Gauges** — last-write-wins values ([`gauge_set`]), e.g. the number of
//!   worker threads a pool actually started with.
//! * **Events** — timestamped one-off annotations ([`event`]), e.g. "thread
//!   sweep degraded: 2 cores for an 8-thread point".
//!
//! # Overhead policy
//!
//! The sink is **disabled by default**. Every recording entry point first
//! branches on one relaxed [`AtomicBool`] load; when disabled, no clock is
//! read, no allocation happens, and no lock is touched, so hot loops stay
//! allocation-free and results stay bit-identical whether or not the calls
//! are present. When enabled, records go to per-thread buffers (keyed by
//! [`BTreeMap`] for deterministic iteration) that flush to a global sink when
//! the thread exits or [`drain`] runs, so the only contended lock is taken
//! once per thread lifetime, not per record.
//!
//! # Example
//!
//! ```
//! opera_trace::enable();
//! {
//!     let _outer = opera_trace::span("assemble");
//!     let _inner = opera_trace::span("stamp");
//!     opera_trace::count("stamps", 3);
//! }
//! let snap = opera_trace::drain();
//! assert_eq!(snap.counter("stamps"), 3);
//! assert_eq!(snap.span_count("assemble"), 1);
//! opera_trace::disable();
//! ```

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Master switch. All recording entry points branch on this first.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic span id allocator; 0 is reserved for "no span".
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Small per-process thread ids for trace records (not OS tids).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch (monotonic clock).
fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// One closed span: a named interval with a parent link and thread id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (> 0) of this span.
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Static span name, e.g. `"cholesky.numeric"`.
    pub name: &'static str,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Small per-process id of the recording thread.
    pub tid: u64,
}

/// One timestamped annotation emitted with [`event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Static event name, e.g. `"threads.degraded"`.
    pub name: &'static str,
    /// Free-form message describing the event.
    pub message: String,
    /// Timestamp in nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Small per-process id of the recording thread.
    pub tid: u64,
}

#[derive(Default)]
struct SinkState {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    events: Vec<EventRecord>,
}

fn sink() -> &'static Mutex<SinkState> {
    static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(SinkState::default()))
}

fn lock_sink() -> MutexGuard<'static, SinkState> {
    sink().lock().unwrap_or_else(PoisonError::into_inner)
}

struct ThreadBuffer {
    tid: u64,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    events: Vec<EventRecord>,
}

impl ThreadBuffer {
    fn flush_into(&mut self, sink: &mut SinkState) {
        sink.spans.append(&mut self.spans);
        for (name, value) in std::mem::take(&mut self.counters) {
            *sink.counters.entry(name).or_insert(0) += value;
        }
        sink.events.append(&mut self.events);
    }

    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.events.is_empty()
    }
}

impl Drop for ThreadBuffer {
    // Worker threads (the vendored rayon shim spawns scoped threads per
    // parallel call) flush their buffers here, before the parallel call
    // returns, so a subsequent `drain` on the spawning thread sees them.
    fn drop(&mut self) {
        if !self.is_empty() {
            self.flush_into(&mut lock_sink());
        }
    }
}

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer {
        tid: NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed),
        spans: Vec::new(),
        counters: BTreeMap::new(),
        events: Vec::new(),
    });
}

/// Whether the global sink is currently recording.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on. Also pins the trace epoch so the first span does not
/// pay the one-time clock initialisation.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-buffered records survive until [`drain`] or
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discards every buffered record on the calling thread and in the global
/// sink, including gauges. Intended for test isolation.
pub fn reset() {
    let _ = BUFFER.try_with(|b| {
        let mut b = b.borrow_mut();
        b.spans.clear();
        b.counters.clear();
        b.events.clear();
    });
    CURRENT.with(|c| c.set(0));
    let mut s = lock_sink();
    s.spans.clear();
    s.counters.clear();
    s.gauges.clear();
    s.events.clear();
}

/// An opaque handle to a span, captured with [`current_span`] and handed to
/// workers on other threads so their spans nest under the spawning span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u64);

/// The innermost open span on the calling thread (the zero token when none
/// is open or tracing is disabled).
#[must_use]
pub fn current_span() -> SpanToken {
    SpanToken(CURRENT.with(Cell::get))
}

/// RAII guard for one span: the interval runs from construction to drop.
///
/// When tracing is disabled the guard is inert — no id, no clock read, no
/// work on drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u64,
    parent: u64,
    name: &'static str,
    start_ns: u64,
}

impl SpanGuard {
    const fn inert(name: &'static str) -> Self {
        SpanGuard {
            id: 0,
            parent: 0,
            name,
            start_ns: 0,
        }
    }

    /// The token workers should nest under; equals [`current_span`] while
    /// this guard is the innermost open span.
    #[must_use]
    pub fn token(&self) -> SpanToken {
        SpanToken(self.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        let end_ns = now_ns();
        let _ = CURRENT.try_with(|c| c.set(self.parent));
        let _ = BUFFER.try_with(|b| {
            let mut b = b.borrow_mut();
            let tid = b.tid;
            b.spans.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: end_ns.saturating_sub(self.start_ns),
                tid,
            });
        });
    }
}

fn start_span(name: &'static str, parent: u64) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT.with(|c| c.set(id));
    SpanGuard {
        id,
        parent,
        name,
        start_ns: now_ns(),
    }
}

/// Opens a span nested under the calling thread's innermost open span.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert(name);
    }
    let parent = CURRENT.with(Cell::get);
    start_span(name, parent)
}

/// Opens a span under an explicit parent token — the cross-thread variant of
/// [`span`] for rayon workers: capture [`current_span`] before the fan-out,
/// call this inside the worker closure.
#[must_use]
pub fn span_under(parent: SpanToken, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert(name);
    }
    start_span(name, parent.0)
}

/// Adds `delta` to the named counter. Allocation-free after the first use of
/// a name on a thread; a no-op branch when tracing is disabled, which is why
/// lint L002 permits this call (and only this call) inside hot regions.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let _ = BUFFER.try_with(|b| {
        let mut b = b.borrow_mut();
        *b.counters.entry(name).or_insert(0) += delta;
    });
}

/// Sets the named gauge to `value` (last write wins). Gauges persist across
/// [`drain`] so a value set once — e.g. the pool's thread count — stays
/// readable in every later snapshot.
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    lock_sink().gauges.insert(name, value);
}

/// Records a timestamped annotation with a free-form message.
pub fn event(name: &'static str, message: &str) {
    if !enabled() {
        return;
    }
    let ts_ns = now_ns();
    let _ = BUFFER.try_with(|b| {
        let mut b = b.borrow_mut();
        let tid = b.tid;
        b.events.push(EventRecord {
            name,
            message: message.to_string(),
            ts_ns,
            tid,
        });
    });
}

/// A named monotonic counter owned by a value (e.g. one engine instance).
///
/// The local total is always maintained — a relaxed atomic increment — so
/// per-object hooks like `OperaEngine::factorization_count` keep their exact
/// semantics with tracing off; every increment is additionally forwarded to
/// the global sink when tracing is on.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    local: AtomicU64,
}

impl Counter {
    /// A new counter at zero.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            local: AtomicU64::new(0),
        }
    }

    /// The sink name increments are forwarded under.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `delta` to the local total and, when tracing is enabled, to the
    /// global counter of the same name.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.local.fetch_add(delta, Ordering::Relaxed);
        count(self.name, delta);
    }

    /// The local (per-object) total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.local.load(Ordering::Relaxed)
    }
}

/// Everything the sink held at one [`drain`] call.
#[derive(Debug, Clone, Default)]
pub struct TraceSnapshot {
    /// Closed spans, sorted by start time then id.
    pub spans: Vec<SpanRecord>,
    /// Global counter totals.
    pub counters: BTreeMap<&'static str, u64>,
    /// Gauge values (persist in the sink across drains).
    pub gauges: BTreeMap<&'static str, f64>,
    /// Timestamped annotations, sorted by timestamp.
    pub events: Vec<EventRecord>,
}

/// Flushes the calling thread's buffered records into the global sink
/// without draining it.
///
/// Worker threads owned by the vendored rayon shim flush automatically
/// before a parallel call returns, and every thread flushes at exit through
/// its buffer's `Drop` — but thread-local destructors may still be running
/// when a `std::thread` join (or a `std::thread::scope` exit) returns on
/// the spawning side. A plain-`std::thread` worker whose records must be
/// visible to an immediate [`drain`] on another thread should therefore
/// call `flush` as the last thing its closure does.
pub fn flush() {
    let mut s = lock_sink();
    let _ = BUFFER.try_with(|b| b.borrow_mut().flush_into(&mut s));
}

/// Flushes the calling thread's buffer and removes everything except gauges
/// from the global sink, returning it as a snapshot. Worker threads spawned
/// by the vendored rayon shim have already flushed (they exit before the
/// parallel call returns), so a drain after a parallel region sees all
/// worker records.
pub fn drain() -> TraceSnapshot {
    let mut s = lock_sink();
    let _ = BUFFER.try_with(|b| b.borrow_mut().flush_into(&mut s));
    let mut spans = std::mem::take(&mut s.spans);
    let mut events = std::mem::take(&mut s.events);
    let snapshot_gauges = s.gauges.clone();
    let counters = std::mem::take(&mut s.counters);
    drop(s);
    spans.sort_by_key(|r| (r.start_ns, r.id));
    events.sort_by_key(|e| (e.ts_ns, e.tid));
    TraceSnapshot {
        spans,
        counters,
        gauges: snapshot_gauges,
        events,
    }
}

impl TraceSnapshot {
    /// Folds another snapshot into this one (spans/events re-sorted,
    /// counters summed, gauges last-write-wins from `other`).
    pub fn merge(&mut self, other: TraceSnapshot) {
        self.spans.extend(other.spans);
        self.spans.sort_by_key(|r| (r.start_ns, r.id));
        for (name, value) in other.counters {
            *self.counters.entry(name).or_insert(0) += value;
        }
        self.gauges.extend(other.gauges);
        self.events.extend(other.events);
        self.events.sort_by_key(|e| (e.ts_ns, e.tid));
    }

    /// Summed wall time, in nanoseconds, over every span with this name.
    #[must_use]
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.dur_ns)
            .sum()
    }

    /// Summed wall time, in seconds, over every span with this name.
    #[must_use]
    pub fn total_seconds(&self, name: &str) -> f64 {
        self.total_ns(name) as f64 * 1e-9
    }

    /// Number of spans with this name.
    #[must_use]
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|r| r.name == name).count()
    }

    /// The counter total, or 0 if the name was never counted.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge value, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The spans whose parent is `parent`.
    #[must_use]
    pub fn children_of(&self, parent: u64) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|r| r.parent == parent).collect()
    }

    /// A hierarchical text report: spans aggregated by name at each nesting
    /// level (total wall time, call count), then counters, gauges, events.
    #[must_use]
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        out.push_str("== trace report ==\n");
        if !self.spans.is_empty() {
            out.push_str("spans (total ms, calls):\n");
            let mut by_parent: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
            let known: std::collections::BTreeSet<u64> = self.spans.iter().map(|r| r.id).collect();
            for r in &self.spans {
                // A parent drained in an earlier snapshot is treated as a
                // root so its children still appear in the report.
                let key = if known.contains(&r.parent) {
                    r.parent
                } else {
                    0
                };
                by_parent.entry(key).or_default().push(r);
            }
            let roots = by_parent.get(&0).cloned().unwrap_or_default();
            emit_group(&mut out, &by_parent, &roots, 1);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name} = {value}\n"));
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                out.push_str(&format!(
                    "  [{:.3} ms] {}: {}\n",
                    e.ts_ns as f64 * 1e-6,
                    e.name,
                    e.message
                ));
            }
        }
        out
    }
}

/// Aggregates one sibling group by name and recurses into the children of
/// each name bucket.
fn emit_group(
    out: &mut String,
    by_parent: &BTreeMap<u64, Vec<&SpanRecord>>,
    group: &[&SpanRecord],
    depth: usize,
) {
    let mut buckets: BTreeMap<&'static str, (u64, usize, Vec<u64>)> = BTreeMap::new();
    for r in group {
        let b = buckets.entry(r.name).or_insert((0, 0, Vec::new()));
        b.0 += r.dur_ns;
        b.1 += 1;
        b.2.push(r.id);
    }
    let mut ordered: Vec<_> = buckets.into_iter().collect();
    // Largest total first; name breaks ties so the report is stable.
    ordered.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(b.0)));
    for (name, (total_ns, calls, ids)) in ordered {
        out.push_str(&format!(
            "{:indent$}{name}  {:.3} ms  x{calls}\n",
            "",
            total_ns as f64 * 1e-6,
            indent = depth * 2
        ));
        let mut children: Vec<&SpanRecord> = Vec::new();
        for id in ids {
            if let Some(kids) = by_parent.get(&id) {
                children.extend(kids.iter().copied());
            }
        }
        if !children.is_empty() {
            emit_group(out, by_parent, &children, depth + 1);
        }
    }
}

/// Serialises tests that touch the process-global trace state.
///
/// Trace state (the enabled flag, the sink, the counters) is shared by every
/// thread in the process, so two tests that [`enable`]/[`drain`] concurrently
/// would see each other's records. Any test that enables tracing should hold
/// this guard for its whole body and call [`reset`] before enabling.
#[must_use = "dropping the guard immediately would let trace-enabled tests interleave"]
pub fn test_guard() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Trace state is process-global; tests in this binary serialise on one
    // mutex and reset around each body.
    fn serial() -> MutexGuard<'static, ()> {
        test_guard()
    }

    #[test]
    fn disabled_spans_are_inert_and_record_nothing() {
        let _g = serial();
        reset();
        disable();
        {
            let s = span("nothing");
            assert_eq!(s.token(), SpanToken(0));
            count("nope", 5);
            gauge_set("nope", 1.0);
            event("nope", "msg");
        }
        let snap = drain();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let _g = serial();
        reset();
        enable();
        {
            let outer = span("outer");
            let outer_id = outer.token();
            {
                let _inner = span("inner");
                assert_ne!(current_span(), outer_id);
            }
            assert_eq!(current_span(), outer_id);
        }
        disable();
        let snap = drain();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|r| r.name == "outer").map(|r| r.id);
        let inner = snap.spans.iter().find(|r| r.name == "inner");
        assert_eq!(inner.map(|r| r.parent), outer);
        assert!(snap.total_ns("outer") >= snap.total_ns("inner"));
    }

    #[test]
    fn span_under_attaches_cross_thread_workers() {
        let _g = serial();
        reset();
        enable();
        let parent_id;
        {
            let parent = span("fanout");
            parent_id = parent.token();
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        {
                            let _w = span_under(parent_id, "worker");
                            count("work", 1);
                        }
                        // The scope can unwind past a joined worker before
                        // its thread-local buffer's exit-time flush runs;
                        // flushing explicitly makes the drain deterministic.
                        flush();
                    });
                }
            });
        }
        disable();
        let snap = drain();
        assert_eq!(snap.span_count("worker"), 3);
        let fan = snap
            .spans
            .iter()
            .find(|r| r.name == "fanout")
            .map(|r| r.id)
            .unwrap_or(0);
        assert!(snap
            .spans
            .iter()
            .filter(|r| r.name == "worker")
            .all(|r| r.parent == fan));
        assert_eq!(snap.counter("work"), 3);
        // Workers got distinct thread ids.
        let tids: std::collections::BTreeSet<u64> = snap
            .spans
            .iter()
            .filter(|r| r.name == "worker")
            .map(|r| r.tid)
            .collect();
        assert!(!tids.is_empty());
    }

    #[test]
    fn counters_gauges_events_round_trip() {
        let _g = serial();
        reset();
        enable();
        count("steps", 10);
        count("steps", 5);
        gauge_set("threads", 4.0);
        gauge_set("threads", 8.0);
        event("note", "hello");
        disable();
        let snap = drain();
        assert_eq!(snap.counter("steps"), 15);
        assert_eq!(snap.gauge("threads"), Some(8.0));
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].message, "hello");
        // Gauges persist in the sink across drains.
        let again = drain();
        assert_eq!(again.gauge("threads"), Some(8.0));
        assert!(again.spans.is_empty());
    }

    #[test]
    fn owned_counter_keeps_local_total_and_feeds_sink() {
        let _g = serial();
        reset();
        disable();
        let c = Counter::new("owned.total");
        c.incr();
        c.add(2);
        assert_eq!(c.get(), 3);
        enable();
        c.incr();
        disable();
        assert_eq!(c.get(), 4);
        let snap = drain();
        // Only the increment made while enabled reached the sink.
        assert_eq!(snap.counter("owned.total"), 1);
    }

    #[test]
    fn merge_and_text_report_cover_all_sections() {
        let _g = serial();
        reset();
        enable();
        {
            let _a = span("phase.a");
            let _b = span("phase.b");
            count("n", 1);
        }
        gauge_set("g", 2.5);
        event("e", "detail");
        let mut first = drain();
        {
            let _a = span("phase.a");
        }
        disable();
        let second = drain();
        first.merge(second);
        assert_eq!(first.span_count("phase.a"), 2);
        let report = first.text_report();
        assert!(report.contains("phase.a"));
        assert!(report.contains("phase.b"));
        assert!(report.contains("n = 1"));
        assert!(report.contains("g = 2.5"));
        assert!(report.contains("detail"));
    }
}
