//! End-to-end experiment drivers.
//!
//! [`ExperimentConfig`] is a thin, validated front end over the
//! [`OperaEngine`]: [`run_experiment`] builds an
//! engine from the configuration and runs one baseline
//! [`Scenario`] through it, reproducing one row of
//! the paper's Table 1 (accuracy, ±3σ spread, wall-clock times, speed-up)
//! plus the Figure 1–2 distributions. For serving many scenarios against one
//! grid, build the engine once and use
//! [`run_batch`](crate::engine::OperaEngine::run_batch) instead — the
//! assembly and factorisation are then shared across all of them.

use opera_grid::{GridSpec, PAPER_GRID_NODE_COUNTS};
use opera_pce::sampling;
use opera_variation::VariationSpec;

use crate::compare::AccuracySummary;
use crate::engine::{CollocationConfig, GridKind, OperaEngine, Scenario};
use crate::monte_carlo::MonteCarloResult;
use crate::parallel::Parallelism;
use crate::response::{drops_as_percent_of_vdd, DropSummary, Histogram};
use crate::solver::{backend_by_name, BLOCK_JACOBI_CG, DIRECT_CHOLESKY};
use crate::stochastic::StochasticSolution;
use crate::transient::TransientOptions;
use crate::{OperaError, Result};

/// How the stochastic solution of an experiment is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMethod {
    /// The paper's intrusive Galerkin spectral-stochastic solve (one
    /// augmented system). The default.
    #[default]
    Galerkin,
    /// Non-intrusive stochastic collocation: a quadrature-grid sweep of
    /// deterministic solves sharing one symbolic analysis, projected onto
    /// the same polynomial-chaos basis.
    ///
    /// Note that [`run_experiment`] still builds a full [`OperaEngine`]
    /// (including its one-time Galerkin assembly and factorisation, which
    /// this method does not use) so both methods validate against the exact
    /// same Monte Carlo pipeline; that setup cost is *not* billed to the
    /// collocation timing. For a pure collocation workload on a large grid,
    /// drive `opera_collocation::solve_collocation` directly.
    Collocation {
        /// Refinement level of the quadrature grid (`≥ 1`).
        level: u32,
        /// Smolyak sparse grid or full tensor product.
        grid: GridKind,
    },
}

impl AnalysisMethod {
    /// A Smolyak-grid collocation method at the given level.
    pub fn collocation(level: u32) -> Self {
        AnalysisMethod::Collocation {
            level,
            grid: GridKind::Smolyak,
        }
    }
}

/// Configuration of one OPERA-vs-Monte-Carlo experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Grid to generate.
    pub grid_spec: GridSpec,
    /// Process-variation magnitudes.
    pub variation: VariationSpec,
    /// Expansion order (2 in the paper's Table 1).
    pub order: u32,
    /// Monte Carlo sample count (1000 in the paper).
    pub mc_samples: usize,
    /// Transient time step in seconds.
    pub time_step: f64,
    /// Transient end time; `None` uses the grid's waveform end time.
    pub end_time: Option<f64>,
    /// Seed for the Monte Carlo sampler.
    pub mc_seed: u64,
    /// Number of histogram bins for the distribution figures.
    pub histogram_bins: usize,
    /// Registered name of the solver backend for the augmented system (see
    /// [`crate::solver::available_backends`]). The block-preconditioned CG
    /// backend is recommended for large grids (the paper's §5.2 remark on
    /// iterative block solvers).
    pub solver: String,
    /// Worker-thread budget for the Monte Carlo baseline. Statistics are
    /// bit-identical for every setting (per-sample RNG streams, ordered
    /// accumulation); only wall-clock time changes.
    pub parallelism: Parallelism,
    /// How the stochastic solution is computed: the intrusive Galerkin solve
    /// (the paper's method, the default) or a stochastic-collocation sweep.
    pub method: AnalysisMethod,
}

impl ExperimentConfig {
    /// A configuration mirroring one row of Table 1 at full scale: paper grid
    /// `index` (0-based), order-2 expansion, 1000 Monte Carlo samples.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] if `index` is not one of the
    /// paper's seven grids.
    pub fn table1_row(index: usize) -> Result<Self> {
        if index >= PAPER_GRID_NODE_COUNTS.len() {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "Table 1 has {} rows, got index {index}",
                    PAPER_GRID_NODE_COUNTS.len()
                ),
            });
        }
        Ok(ExperimentConfig {
            grid_spec: GridSpec::paper_grid(index)?,
            variation: VariationSpec::paper_defaults(),
            order: 2,
            mc_samples: 1000,
            time_step: 0.05e-9,
            end_time: None,
            mc_seed: 42 + index as u64,
            histogram_bins: 30,
            solver: BLOCK_JACOBI_CG.to_string(),
            parallelism: Parallelism::Max,
            method: AnalysisMethod::Galerkin,
        })
    }

    /// The same experiment with the grid size and sample count scaled down so
    /// it finishes quickly on a laptop (`scale` ≤ 1 scales the node count,
    /// `samples` overrides the Monte Carlo sample count).
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] if `index` is not one of the
    /// paper's seven grids.
    pub fn table1_row_scaled(index: usize, scale: f64, samples: usize) -> Result<Self> {
        let mut config = ExperimentConfig::table1_row(index)?;
        config.grid_spec = config.grid_spec.scaled_nodes(scale);
        config.mc_samples = samples;
        Ok(config)
    }

    /// A deliberately tiny configuration for doc-tests and smoke tests.
    pub fn quick_demo(nodes: usize) -> Self {
        ExperimentConfig {
            grid_spec: GridSpec::small_test(nodes),
            variation: VariationSpec::paper_defaults(),
            order: 2,
            mc_samples: 40,
            time_step: 0.2e-9,
            end_time: Some(1.0e-9),
            mc_seed: 7,
            histogram_bins: 12,
            solver: DIRECT_CHOLESKY.to_string(),
            parallelism: Parallelism::Max,
            method: AnalysisMethod::Galerkin,
        }
    }

    /// Returns the same configuration with a different parallelism setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Returns the same configuration with a different solver backend name.
    pub fn with_solver(mut self, name: &str) -> Self {
        self.solver = name.to_string();
        self
    }

    /// Returns the same configuration with a different analysis method.
    pub fn with_method(mut self, method: AnalysisMethod) -> Self {
        self.method = method;
        self
    }

    /// Validates the configuration without building anything: expansion
    /// order, sample and bin counts, solver-backend name and transient
    /// settings.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] describing the first problem.
    pub fn validate(&self) -> Result<()> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        if self.mc_samples == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "mc_samples must be at least 1".to_string(),
            });
        }
        if self.histogram_bins == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "histogram_bins must be at least 1".to_string(),
            });
        }
        if let AnalysisMethod::Collocation { level, .. } = self.method {
            if level == 0 {
                return Err(OperaError::InvalidOptions {
                    reason: "collocation level must be at least 1".to_string(),
                });
            }
        }
        backend_by_name(&self.solver)?.validate()?;
        match self.end_time {
            // The full transient contract (finite positive step/end, step not
            // exceeding the horizon) lives in TransientOptions::validate.
            Some(end) => TransientOptions::new(self.time_step, end).validate(),
            // Without an explicit end time the horizon comes from the grid's
            // waveform at engine-build time; only the step can be checked.
            None => TransientOptions::new(self.time_step, f64::MAX).validate(),
        }
    }
}

/// Distributions of the voltage drop (as % of VDD) at a probe node — the
/// content of the paper's Figures 1 and 2.
#[derive(Debug, Clone)]
pub struct ProbeDistribution {
    /// Node the distribution was taken at.
    pub node: usize,
    /// Time index the distribution was taken at (worst mean drop).
    pub time_index: usize,
    /// Histogram of the drop predicted by sampling the OPERA expansion.
    pub opera: Histogram,
    /// Histogram of the drop observed in the Monte Carlo samples.
    pub monte_carlo: Histogram,
}

/// Everything produced by one experiment: one row of Table 1 plus the data of
/// Figures 1–2.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Number of nodes of the generated grid.
    pub node_count: usize,
    /// Voltage-drop statistics of the OPERA solution.
    pub opera: DropSummary,
    /// OPERA-vs-Monte-Carlo accuracy (the µ and σ error columns).
    pub errors: AccuracySummary,
    /// Wall-clock seconds of the OPERA analysis. For [`run_experiment`] this
    /// covers assembly + factorisation + solve; for
    /// [`run_batch`](crate::engine::OperaEngine::run_batch) reports it covers
    /// the solve only (setup is shared, see
    /// [`OperaEngine::setup_seconds`](crate::engine::OperaEngine::setup_seconds)).
    pub opera_seconds: f64,
    /// Wall-clock seconds of the Monte Carlo baseline.
    pub monte_carlo_seconds: f64,
    /// Speed-up `monte_carlo_seconds / opera_seconds`.
    pub speedup: f64,
    /// Number of Monte Carlo samples used.
    pub mc_samples: usize,
    /// Distribution of the drop at the worst node (Figures 1–2).
    pub distribution: ProbeDistribution,
}

/// Runs a full OPERA-vs-Monte-Carlo experiment: builds an
/// [`OperaEngine`] from the configuration and
/// runs the baseline scenario through it. For the Galerkin method the
/// reported `opera_seconds` includes the engine setup (assembly +
/// factorisation), matching the paper's cost accounting for a single
/// one-shot analysis; for the collocation method it covers the sweep itself
/// (grid build + node solves + projection) — the engine's Galerkin setup is
/// not part of the collocation algorithm and is not billed to it.
///
/// # Errors
///
/// Propagates configuration-validation, grid-generation, assembly and solver
/// errors.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentReport> {
    let engine = OperaEngine::from_config(config)?;
    let (scenario_report, setup_seconds) = match config.method {
        AnalysisMethod::Galerkin => (
            engine.run_scenario(&Scenario::default())?,
            engine.setup_seconds(),
        ),
        AnalysisMethod::Collocation { level, grid } => (
            engine.run_collocation_scenario(
                &Scenario::default(),
                &CollocationConfig { level, grid },
            )?,
            0.0,
        ),
    };
    let mut report = scenario_report.report;
    report.opera_seconds += setup_seconds;
    report.speedup = if report.opera_seconds > 0.0 {
        report.monte_carlo_seconds / report.opera_seconds
    } else {
        f64::INFINITY
    };
    Ok(report)
}

/// Builds the OPERA and Monte Carlo drop histograms at a probe node/time
/// (the paper's Figures 1–2). The OPERA histogram is obtained by sampling the
/// explicit expansion — no further circuit solves are needed, which is the
/// point the figures make.
///
/// # Errors
///
/// Propagates expansion-evaluation errors.
pub fn probe_distributions(
    opera: &StochasticSolution,
    mc: &MonteCarloResult,
    vdd: f64,
    node: usize,
    time_index: usize,
    bins: usize,
    seed: u64,
) -> Result<ProbeDistribution> {
    // Monte Carlo drops at the probe.
    let mc_voltages =
        mc.probe_samples_at(node, time_index)
            .ok_or_else(|| OperaError::InvalidOptions {
                reason: format!("node {node} is not a Monte Carlo probe node"),
            })?;
    let mc_drops = drops_as_percent_of_vdd(&mc_voltages, vdd);

    // OPERA drops: evaluate the expansion at freshly drawn standard samples.
    let series = opera.node_series(time_index, node)?;
    let samples = sampling::sample_standard(series.basis(), mc_voltages.len().max(1000), seed);
    let opera_voltages = sampling::evaluate_at_samples(&series, &samples)?;
    let opera_drops = drops_as_percent_of_vdd(&opera_voltages, vdd);

    // Shared histogram range so the two distributions are directly comparable.
    let lo = mc_drops
        .iter()
        .chain(opera_drops.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = mc_drops
        .iter()
        .chain(opera_drops.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let lo = lo - 0.02 * span;
    let hi = hi + 0.02 * span;

    Ok(ProbeDistribution {
        node,
        time_index,
        opera: Histogram::with_range(&opera_drops, bins, lo, hi),
        monte_carlo: Histogram::with_range(&mc_drops, bins, lo, hi),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_consistent_report() {
        let report = run_experiment(&ExperimentConfig::quick_demo(120)).unwrap();
        assert!(report.node_count >= 100);
        assert!(report.opera.worst_mean_drop > 0.0);
        assert!(report.opera.sigma_at_worst > 0.0);
        assert!(report.errors.avg_mean_error_percent < 1.0);
        assert!(report.opera_seconds > 0.0);
        assert!(report.monte_carlo_seconds > 0.0);
        assert!(report.speedup > 1.0, "speedup {}", report.speedup);
        assert_eq!(report.mc_samples, 40);
        // Histograms cover the same range and contain all samples.
        assert_eq!(
            report.distribution.opera.edges(),
            report.distribution.monte_carlo.edges()
        );
        assert_eq!(report.distribution.monte_carlo.total(), report.mc_samples);
    }

    #[test]
    fn distributions_overlap_between_opera_and_monte_carlo() {
        let report = run_experiment(&ExperimentConfig::quick_demo(150)).unwrap();
        // The modal bins of the two histograms should be close (the paper's
        // figures show nearly coincident distributions).
        let mode_opera = report.distribution.opera.mode_bin() as i64;
        let mode_mc = report.distribution.monte_carlo.mode_bin() as i64;
        assert!(
            (mode_opera - mode_mc).abs() <= 3,
            "modes {mode_opera} vs {mode_mc}"
        );
    }

    #[test]
    fn collocation_method_axis_produces_a_comparable_report() {
        let galerkin = run_experiment(&ExperimentConfig::quick_demo(120)).unwrap();
        let config = ExperimentConfig::quick_demo(120).with_method(AnalysisMethod::collocation(2));
        assert!(config.validate().is_ok());
        let colloc = run_experiment(&config).unwrap();
        // Both methods expand the same response in the same basis, so the
        // summary statistics nearly coincide and both validate against the
        // identical Monte Carlo baseline.
        assert!(colloc.errors.avg_mean_error_percent < 1.0);
        let rel = (colloc.opera.worst_mean_drop - galerkin.opera.worst_mean_drop).abs()
            / galerkin.opera.worst_mean_drop;
        assert!(rel < 1e-3, "worst drops differ by {rel}");
        assert_eq!(colloc.distribution.node, galerkin.distribution.node);

        // Level 0 fails validation before any work happens.
        let bad = ExperimentConfig::quick_demo(100).with_method(AnalysisMethod::Collocation {
            level: 0,
            grid: GridKind::Smolyak,
        });
        assert!(bad.validate().is_err());
        assert!(run_experiment(&bad).is_err());
    }

    #[test]
    fn table1_row_scaled_shrinks_the_grid() {
        let config = ExperimentConfig::table1_row_scaled(0, 0.05, 25).unwrap();
        assert_eq!(config.mc_samples, 25);
        assert!(config.grid_spec.target_nodes < 1_000);
        assert_eq!(ExperimentConfig::table1_row(3).unwrap().mc_samples, 1000);
    }

    #[test]
    fn out_of_range_table1_rows_are_errors_not_panics() {
        assert!(matches!(
            ExperimentConfig::table1_row(7),
            Err(OperaError::InvalidOptions { .. })
        ));
        assert!(matches!(
            ExperimentConfig::table1_row_scaled(99, 0.1, 10),
            Err(OperaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn invalid_configs_fail_validation_with_clear_errors() {
        let ok = ExperimentConfig::quick_demo(100);
        assert!(ok.validate().is_ok());

        let mut bad = ok.clone();
        bad.mc_samples = 0;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("mc_samples"), "{err}");

        let mut bad = ok.clone();
        bad.histogram_bins = 0;
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("histogram_bins"), "{err}");

        let mut bad = ok.clone();
        bad.solver = "warp-drive".to_string();
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("warp-drive"), "{err}");

        let mut bad = ok.clone();
        bad.end_time = Some(f64::NAN);
        assert!(bad.validate().is_err());

        let mut bad = ok.clone();
        bad.end_time = Some(0.5 * bad.time_step);
        assert!(bad.validate().is_err(), "step exceeding the horizon");

        let mut bad = ok;
        bad.order = 0;
        assert!(bad.validate().is_err());
    }
}
