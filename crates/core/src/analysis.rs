//! End-to-end experiment drivers.
//!
//! [`run_experiment`] reproduces one row of the paper's Table 1: it builds a
//! synthetic grid, runs OPERA and the Monte Carlo baseline with the same
//! transient configuration, and reports accuracy, ±3σ spread, wall-clock
//! times and the speed-up. [`probe_distributions`] additionally produces the
//! histograms of Figures 1–2 for the node with the worst voltage drop.

use std::time::Instant;

use opera_grid::{GridSpec, PowerGrid};
use opera_pce::sampling;
use opera_variation::{StochasticGridModel, VariationSpec};

use crate::compare::{compare, AccuracySummary};
use crate::monte_carlo::{run as run_monte_carlo, MonteCarloOptions, MonteCarloResult};
use crate::parallel::Parallelism;
use crate::response::{drop_summary, drops_as_percent_of_vdd, DropSummary, Histogram};
use crate::stochastic::{solve, OperaOptions, StochasticSolution};
use crate::transient::{solve_transient, TransientOptions};
use crate::Result;

/// Configuration of one OPERA-vs-Monte-Carlo experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Grid to generate.
    pub grid_spec: GridSpec,
    /// Process-variation magnitudes.
    pub variation: VariationSpec,
    /// Expansion order (2 in the paper's Table 1).
    pub order: u32,
    /// Monte Carlo sample count (1000 in the paper).
    pub mc_samples: usize,
    /// Transient time step in seconds.
    pub time_step: f64,
    /// Transient end time; `None` uses the grid's waveform end time.
    pub end_time: Option<f64>,
    /// Seed for the Monte Carlo sampler.
    pub mc_seed: u64,
    /// Number of histogram bins for the distribution figures.
    pub histogram_bins: usize,
    /// Use the block-preconditioned CG solver for the augmented system
    /// instead of the direct factorisation — recommended for large grids
    /// (the paper's §5.2 remark on iterative block solvers).
    pub iterative_solver: bool,
    /// Worker-thread budget for the Monte Carlo baseline. Statistics are
    /// bit-identical for every setting (per-sample RNG streams, ordered
    /// accumulation); only wall-clock time changes.
    pub parallelism: Parallelism,
}

impl ExperimentConfig {
    /// A configuration mirroring one row of Table 1 at full scale: paper grid
    /// `index` (0-based), order-2 expansion, 1000 Monte Carlo samples.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 7`.
    pub fn table1_row(index: usize) -> Self {
        ExperimentConfig {
            grid_spec: GridSpec::paper_grid(index),
            variation: VariationSpec::paper_defaults(),
            order: 2,
            mc_samples: 1000,
            time_step: 0.05e-9,
            end_time: None,
            mc_seed: 42 + index as u64,
            histogram_bins: 30,
            iterative_solver: true,
            parallelism: Parallelism::Max,
        }
    }

    /// The same experiment with the grid size and sample count scaled down so
    /// it finishes quickly on a laptop (`scale` ≤ 1 scales the node count,
    /// `samples` overrides the Monte Carlo sample count).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 7`.
    pub fn table1_row_scaled(index: usize, scale: f64, samples: usize) -> Self {
        let mut config = ExperimentConfig::table1_row(index);
        config.grid_spec = config.grid_spec.scaled_nodes(scale);
        config.mc_samples = samples;
        config
    }

    /// A deliberately tiny configuration for doc-tests and smoke tests.
    pub fn quick_demo(nodes: usize) -> Self {
        ExperimentConfig {
            grid_spec: GridSpec::small_test(nodes),
            variation: VariationSpec::paper_defaults(),
            order: 2,
            mc_samples: 40,
            time_step: 0.2e-9,
            end_time: Some(1.0e-9),
            mc_seed: 7,
            histogram_bins: 12,
            iterative_solver: false,
            parallelism: Parallelism::Max,
        }
    }

    /// Returns the same configuration with a different parallelism setting.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    fn transient_options(&self, grid: &PowerGrid) -> TransientOptions {
        let end = self
            .end_time
            .unwrap_or_else(|| grid.waveform_end_time().max(self.time_step));
        TransientOptions::new(self.time_step, end)
    }
}

/// Distributions of the voltage drop (as % of VDD) at a probe node — the
/// content of the paper's Figures 1 and 2.
#[derive(Debug, Clone)]
pub struct ProbeDistribution {
    /// Node the distribution was taken at.
    pub node: usize,
    /// Time index the distribution was taken at (worst mean drop).
    pub time_index: usize,
    /// Histogram of the drop predicted by sampling the OPERA expansion.
    pub opera: Histogram,
    /// Histogram of the drop observed in the Monte Carlo samples.
    pub monte_carlo: Histogram,
}

/// Everything produced by one experiment: one row of Table 1 plus the data of
/// Figures 1–2.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Number of nodes of the generated grid.
    pub node_count: usize,
    /// Voltage-drop statistics of the OPERA solution.
    pub opera: DropSummary,
    /// OPERA-vs-Monte-Carlo accuracy (the µ and σ error columns).
    pub errors: AccuracySummary,
    /// Wall-clock seconds of the OPERA analysis (assembly + solve).
    pub opera_seconds: f64,
    /// Wall-clock seconds of the Monte Carlo baseline.
    pub monte_carlo_seconds: f64,
    /// Speed-up `monte_carlo_seconds / opera_seconds`.
    pub speedup: f64,
    /// Number of Monte Carlo samples used.
    pub mc_samples: usize,
    /// Distribution of the drop at the worst node (Figures 1–2).
    pub distribution: ProbeDistribution,
}

/// Runs a full OPERA-vs-Monte-Carlo experiment.
///
/// # Errors
///
/// Propagates grid-generation, assembly and solver errors.
pub fn run_experiment(config: &ExperimentConfig) -> Result<ExperimentReport> {
    let grid = config.grid_spec.build()?;
    let model = StochasticGridModel::inter_die(&grid, &config.variation)?;
    let topts = config.transient_options(&grid);

    // --- OPERA (timed).
    let mut opera_options = OperaOptions::with_order(config.order, topts);
    if config.iterative_solver {
        opera_options = opera_options.with_iterative_solver();
    }
    let t0 = Instant::now();
    let opera_solution = solve(&model, &opera_options)?;
    let opera_seconds = t0.elapsed().as_secs_f64();

    // Probe node: worst mean drop of the OPERA solution.
    let (probe_node, probe_time, _) = opera_solution.worst_mean_drop(grid.vdd());

    // --- Monte Carlo (timed).
    let mc_options = MonteCarloOptions {
        samples: config.mc_samples,
        seed: config.mc_seed,
        transient: topts,
        probe_nodes: vec![probe_node],
    };
    let t1 = Instant::now();
    let mc_result = config
        .parallelism
        .install(|| run_monte_carlo(&model, &mc_options))??;
    let monte_carlo_seconds = t1.elapsed().as_secs_f64();

    // --- Nominal (no-variation) transient for the µ₀ reference.
    let nominal = solve_transient(
        &grid.conductance_matrix(),
        &grid.capacitance_matrix(),
        |t| grid.excitation(t),
        &topts,
    )?;

    let summary = drop_summary(&opera_solution, grid.vdd(), Some(&nominal));
    let errors = compare(&opera_solution, &mc_result, grid.vdd());
    let distribution = probe_distributions(
        &opera_solution,
        &mc_result,
        grid.vdd(),
        probe_node,
        probe_time,
        config.histogram_bins,
        config.mc_seed ^ 0x5eed,
    )?;

    Ok(ExperimentReport {
        node_count: grid.node_count(),
        opera: summary,
        errors,
        opera_seconds,
        monte_carlo_seconds,
        speedup: if opera_seconds > 0.0 {
            monte_carlo_seconds / opera_seconds
        } else {
            f64::INFINITY
        },
        mc_samples: config.mc_samples,
        distribution,
    })
}

/// Builds the OPERA and Monte Carlo drop histograms at a probe node/time
/// (the paper's Figures 1–2). The OPERA histogram is obtained by sampling the
/// explicit expansion — no further circuit solves are needed, which is the
/// point the figures make.
///
/// # Errors
///
/// Propagates expansion-evaluation errors.
pub fn probe_distributions(
    opera: &StochasticSolution,
    mc: &MonteCarloResult,
    vdd: f64,
    node: usize,
    time_index: usize,
    bins: usize,
    seed: u64,
) -> Result<ProbeDistribution> {
    // Monte Carlo drops at the probe.
    let mc_voltages = mc.probe_samples_at(node, time_index);
    let mc_drops = drops_as_percent_of_vdd(&mc_voltages, vdd);

    // OPERA drops: evaluate the expansion at freshly drawn standard samples.
    let series = opera.node_series(time_index, node)?;
    let samples = sampling::sample_standard(series.basis(), mc_voltages.len().max(1000), seed);
    let opera_voltages = sampling::evaluate_at_samples(&series, &samples)?;
    let opera_drops = drops_as_percent_of_vdd(&opera_voltages, vdd);

    // Shared histogram range so the two distributions are directly comparable.
    let lo = mc_drops
        .iter()
        .chain(opera_drops.iter())
        .copied()
        .fold(f64::INFINITY, f64::min);
    let hi = mc_drops
        .iter()
        .chain(opera_drops.iter())
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let lo = lo - 0.02 * span;
    let hi = hi + 0.02 * span;

    Ok(ProbeDistribution {
        node,
        time_index,
        opera: Histogram::with_range(&opera_drops, bins, lo, hi),
        monte_carlo: Histogram::with_range(&mc_drops, bins, lo, hi),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiment_produces_consistent_report() {
        let report = run_experiment(&ExperimentConfig::quick_demo(120)).unwrap();
        assert!(report.node_count >= 100);
        assert!(report.opera.worst_mean_drop > 0.0);
        assert!(report.opera.sigma_at_worst > 0.0);
        assert!(report.errors.avg_mean_error_percent < 1.0);
        assert!(report.opera_seconds > 0.0);
        assert!(report.monte_carlo_seconds > 0.0);
        assert!(report.speedup > 1.0, "speedup {}", report.speedup);
        assert_eq!(report.mc_samples, 40);
        // Histograms cover the same range and contain all samples.
        assert_eq!(
            report.distribution.opera.edges(),
            report.distribution.monte_carlo.edges()
        );
        assert_eq!(report.distribution.monte_carlo.total(), report.mc_samples);
    }

    #[test]
    fn distributions_overlap_between_opera_and_monte_carlo() {
        let report = run_experiment(&ExperimentConfig::quick_demo(150)).unwrap();
        // The modal bins of the two histograms should be close (the paper's
        // figures show nearly coincident distributions).
        let mode_opera = report.distribution.opera.mode_bin() as i64;
        let mode_mc = report.distribution.monte_carlo.mode_bin() as i64;
        assert!(
            (mode_opera - mode_mc).abs() <= 3,
            "modes {mode_opera} vs {mode_mc}"
        );
    }

    #[test]
    fn table1_row_scaled_shrinks_the_grid() {
        let config = ExperimentConfig::table1_row_scaled(0, 0.05, 25);
        assert_eq!(config.mc_samples, 25);
        assert!(config.grid_spec.target_nodes < 1_000);
        assert_eq!(ExperimentConfig::table1_row(3).mc_samples, 1000);
    }
}
