//! Error type for the OPERA engine.

use std::error::Error;
use std::fmt;

/// Errors produced by the OPERA solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OperaError {
    /// An underlying sparse linear-algebra operation failed.
    Sparse(opera_sparse::SparseError),
    /// A polynomial-chaos operation failed.
    Pce(opera_pce::PceError),
    /// A grid construction/query failed.
    Grid(opera_grid::GridError),
    /// A netlist could not be read, parsed or lowered.
    Netlist(opera_netlist::NetlistError),
    /// A variation-model operation failed.
    Variation(opera_variation::VariationError),
    /// The analysis options are inconsistent (non-positive time step, zero
    /// samples, …).
    InvalidOptions {
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for OperaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperaError::Sparse(e) => write!(f, "sparse linear algebra error: {e}"),
            OperaError::Pce(e) => write!(f, "polynomial chaos error: {e}"),
            OperaError::Grid(e) => write!(f, "power grid error: {e}"),
            OperaError::Netlist(e) => write!(f, "netlist error: {e}"),
            OperaError::Variation(e) => write!(f, "variation model error: {e}"),
            OperaError::InvalidOptions { reason } => write!(f, "invalid options: {reason}"),
        }
    }
}

impl Error for OperaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OperaError::Sparse(e) => Some(e),
            OperaError::Pce(e) => Some(e),
            OperaError::Grid(e) => Some(e),
            OperaError::Netlist(e) => Some(e),
            OperaError::Variation(e) => Some(e),
            OperaError::InvalidOptions { .. } => None,
        }
    }
}

impl From<opera_sparse::SparseError> for OperaError {
    fn from(e: opera_sparse::SparseError) -> Self {
        OperaError::Sparse(e)
    }
}

impl From<opera_pce::PceError> for OperaError {
    fn from(e: opera_pce::PceError) -> Self {
        OperaError::Pce(e)
    }
}

impl From<opera_grid::GridError> for OperaError {
    fn from(e: opera_grid::GridError) -> Self {
        OperaError::Grid(e)
    }
}

impl From<opera_netlist::NetlistError> for OperaError {
    fn from(e: opera_netlist::NetlistError) -> Self {
        OperaError::Netlist(e)
    }
}

impl From<opera_variation::VariationError> for OperaError {
    fn from(e: opera_variation::VariationError) -> Self {
        OperaError::Variation(e)
    }
}

impl From<opera_collocation::CollocationError> for OperaError {
    fn from(e: opera_collocation::CollocationError) -> Self {
        match e {
            opera_collocation::CollocationError::Sparse(e) => OperaError::Sparse(e),
            opera_collocation::CollocationError::Pce(e) => OperaError::Pce(e),
            opera_collocation::CollocationError::Variation(e) => OperaError::Variation(e),
            opera_collocation::CollocationError::InvalidOptions { reason } => {
                OperaError::InvalidOptions { reason }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_the_source_error() {
        let inner = opera_sparse::SparseError::Singular { column: 3 };
        let e: OperaError = inner.clone().into();
        assert_eq!(e, OperaError::Sparse(inner));
        assert!(e.to_string().contains("column 3"));
        assert!(e.source().is_some());
    }

    #[test]
    fn invalid_options_display() {
        let e = OperaError::InvalidOptions {
            reason: "time step must be positive".to_string(),
        };
        assert!(e.to_string().contains("time step"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OperaError>();
    }
}
