//! Voltage-drop statistics, summaries and histograms.
//!
//! These are the quantities the paper reports: the ±3σ spread of the voltage
//! drops relative to the nominal drop (≈ ±35 % in Table 1), the negligible
//! shift of the mean with respect to the nominal analysis, and the
//! distribution of the voltage drop at selected nodes (Figures 1–2).

use crate::stochastic::StochasticSolution;
use crate::transient::TransientSolution;

/// A histogram over equal-width bins, reported in percentages of occurrences
/// (the y-axis of the paper's Figures 1 and 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<usize>,
    total: usize,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins spanning
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn with_range(values: &[f64], bins: usize, lo: f64, hi: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        let width = (hi - lo) / bins as f64;
        let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
        let mut counts = vec![0usize; bins];
        for &v in values {
            if v < lo || v > hi {
                continue;
            }
            let mut idx = ((v - lo) / width) as usize;
            if idx >= bins {
                idx = bins - 1;
            }
            counts[idx] += 1;
        }
        Histogram {
            edges,
            counts,
            total: values.len(),
        }
    }

    /// Builds a histogram spanning the min/max of the data (with a small
    /// margin so the extremes fall inside the outer bins).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `bins == 0`.
    pub fn from_values(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty(), "histogram needs at least one value");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-12);
        Histogram::with_range(values, bins, lo - 0.01 * span, hi + 0.01 * span)
    }

    /// Bin edges (length `bins + 1`).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Bin centres.
    pub fn centers(&self) -> Vec<f64> {
        self.edges.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect()
    }

    /// Percentage of occurrences per bin (0–100, the paper's y-axis).
    pub fn percentages(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total as f64)
            .collect()
    }

    /// Number of values the histogram was built from.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Index of the fullest bin.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Summary of the stochastic voltage-drop behaviour of a grid — one Table 1
/// row's worth of response statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DropSummary {
    /// Largest mean voltage drop over all nodes and time points, in volts.
    pub worst_mean_drop: f64,
    /// Node attaining the worst mean drop.
    pub worst_node: usize,
    /// Time index attaining the worst mean drop.
    pub worst_time_index: usize,
    /// Standard deviation of the drop at the worst node/time, in volts.
    pub sigma_at_worst: f64,
    /// Average over loaded nodes of `3σ / µ₀ × 100` (the paper's "±3σ
    /// variation as % of nominal drop µ₀", ≈ 30–46 %).
    pub avg_three_sigma_percent_of_nominal: f64,
    /// Maximum over loaded nodes of `3σ / µ₀ × 100`.
    pub max_three_sigma_percent_of_nominal: f64,
    /// Average of `|µ − µ₀| / VDD × 100` over loaded nodes — the paper
    /// observes this is negligible.
    pub avg_mean_shift_percent_of_vdd: f64,
    /// Number of nodes included in the averages (nodes whose nominal drop is
    /// at least 10 % of the worst drop, so that the ratio is meaningful).
    pub loaded_nodes: usize,
}

/// Computes the drop summary of a stochastic solution.
///
/// `nominal` is the deterministic (no-variation) transient solution used as
/// `µ₀`; when it is `None`, the stochastic mean itself is used as the
/// reference (the paper notes the two are nearly identical).
///
/// # Panics
///
/// Panics if `nominal` is given but has a different shape than `solution`.
pub fn drop_summary(
    solution: &StochasticSolution,
    vdd: f64,
    nominal: Option<&TransientSolution>,
) -> DropSummary {
    if let Some(nom) = nominal {
        assert_eq!(nom.times.len(), solution.times().len(), "time axes differ");
        assert_eq!(
            nom.node_count(),
            solution.node_count(),
            "node counts differ"
        );
    }
    let (worst_node, worst_time_index, worst_mean_drop) = solution.worst_mean_drop(vdd);
    let sigma_at_worst = solution.std_dev_at(worst_time_index, worst_node);

    // Per node: evaluate at the node's own worst (mean-drop) time.
    let threshold = 0.10 * worst_mean_drop.max(1e-12);
    let mut ratios = Vec::new();
    let mut mean_shifts = Vec::new();
    for node in 0..solution.node_count() {
        let (k, _) = solution.worst_mean_drop_of_node(vdd, node);
        let mu = vdd - solution.mean_at(k, node);
        let mu0 = match nominal {
            Some(nom) => vdd - nom.state_at(k)[node],
            None => mu,
        };
        if mu0 < threshold {
            continue;
        }
        let sigma = solution.std_dev_at(k, node);
        ratios.push(300.0 * sigma / mu0);
        mean_shifts.push(100.0 * (mu - mu0).abs() / vdd);
    }
    let loaded_nodes = ratios.len();
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    DropSummary {
        worst_mean_drop,
        worst_node,
        worst_time_index,
        sigma_at_worst,
        avg_three_sigma_percent_of_nominal: avg(&ratios),
        max_three_sigma_percent_of_nominal: ratios.iter().copied().fold(0.0, f64::max),
        avg_mean_shift_percent_of_vdd: avg(&mean_shifts),
        loaded_nodes,
    }
}

/// Converts node voltages at one time point into voltage drops expressed as a
/// percentage of VDD (the x-axis of the paper's Figures 1–2).
pub fn drops_as_percent_of_vdd(voltages: &[f64], vdd: f64) -> Vec<f64> {
    voltages.iter().map(|&v| 100.0 * (vdd - v) / vdd).collect()
}

/// Higher moments and a Gram–Charlier density of one node voltage at one time
/// point, computed directly from the explicit expansion (the paper's remark
/// that once higher-order moments are available "expansions like
/// Gram-Charlier series … could be used to obtain the probability density
/// function of x(t, ξ) directly").
#[derive(Debug, Clone)]
pub struct NodeDensity {
    /// The first four moments of the node voltage.
    pub moments: opera_pce::moments::Moments,
    /// The Gram–Charlier type-A density built from those moments.
    pub density: opera_pce::gram_charlier::GramCharlierPdf,
}

/// Computes the moments and Gram–Charlier density of `node` at time index `k`
/// of a stochastic solution.
///
/// # Errors
///
/// Propagates expansion/quadrature errors; returns
/// [`crate::OperaError::InvalidOptions`] when the voltage has (numerically)
/// zero variance, in which case a density is not defined.
pub fn node_density(
    solution: &StochasticSolution,
    k: usize,
    node: usize,
) -> crate::Result<NodeDensity> {
    let series = solution.node_series(k, node)?;
    let moments = opera_pce::moments::moments(&series)?;
    if moments.variance <= 0.0 {
        return Err(crate::OperaError::InvalidOptions {
            reason: format!("node {node} has zero variance at time index {k}"),
        });
    }
    let density = opera_pce::gram_charlier::GramCharlierPdf::from_moments(&moments);
    Ok(NodeDensity { moments, density })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::{solve, OperaOptions};
    use crate::transient::{solve_transient, TransientOptions};
    use opera_grid::GridSpec;
    use opera_variation::{StochasticGridModel, VariationSpec};

    #[test]
    fn histogram_counts_and_percentages() {
        let values = [1.0, 1.1, 1.2, 2.0, 2.1, 3.0, 3.0, 3.0];
        let h = Histogram::with_range(&values, 3, 1.0, 4.0);
        assert_eq!(h.counts(), &[3, 2, 3]);
        let pct = h.percentages();
        assert!((pct[0] - 37.5).abs() < 1e-12);
        assert_eq!(h.total(), 8);
        assert_eq!(h.centers().len(), 3);
        assert!(h.mode_bin() == 0 || h.mode_bin() == 2);
    }

    #[test]
    fn histogram_from_values_covers_all_data() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let h = Histogram::from_values(&values, 10);
        assert_eq!(h.counts().iter().sum::<usize>(), 100);
        assert!((h.percentages().iter().sum::<f64>() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_values_are_ignored() {
        let h = Histogram::with_range(&[0.5, 1.5, 9.0], 2, 1.0, 2.0);
        assert_eq!(h.counts().iter().sum::<usize>(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_bins_panics() {
        let _ = Histogram::with_range(&[1.0], 0, 0.0, 1.0);
    }

    #[test]
    fn drop_summary_reports_sensible_percentages() {
        let grid = GridSpec::small_test(120).with_seed(17).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let sol = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let nominal = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        let summary = drop_summary(&sol, grid.vdd(), Some(&nominal));
        assert!(summary.worst_mean_drop > 0.0);
        assert!(summary.sigma_at_worst > 0.0);
        assert!(summary.loaded_nodes > 0);
        // The ±3σ spread should be a two-digit percentage of the nominal drop
        // for the paper's variation magnitudes.
        assert!(
            summary.avg_three_sigma_percent_of_nominal > 5.0
                && summary.avg_three_sigma_percent_of_nominal < 120.0,
            "±3σ = {}%",
            summary.avg_three_sigma_percent_of_nominal
        );
        assert!(
            summary.max_three_sigma_percent_of_nominal
                >= summary.avg_three_sigma_percent_of_nominal
        );
        // Mean shift vs nominal is small (paper: negligible).
        assert!(summary.avg_mean_shift_percent_of_vdd < 1.0);
    }

    #[test]
    fn node_density_matches_sampled_histogram_statistics() {
        let grid = GridSpec::small_test(100).with_seed(23).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let sol = solve(
            &model,
            &OperaOptions::order2(TransientOptions::new(0.2e-9, 1.0e-9)),
        )
        .unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        let nd = node_density(&sol, k, node).unwrap();
        assert!((nd.moments.mean - sol.mean_at(k, node)).abs() < 1e-10);
        assert!((nd.moments.variance - sol.variance_at(k, node)).abs() < 1e-10);
        // The Gram–Charlier density integrates to ≈ 1 over ±5σ.
        let sigma = nd.moments.std_dev();
        let total = nd.density.cdf(
            nd.moments.mean - 5.0 * sigma,
            nd.moments.mean + 5.0 * sigma,
            2000,
        );
        assert!((total - 1.0).abs() < 5e-3, "density integrates to {total}");
        // A node/time with zero variance is rejected (t = 0, unloaded node).
        let quiet = node_density(&sol, 0, grid.pad_nodes()[0]);
        assert!(quiet.is_err() || sol.std_dev_at(0, grid.pad_nodes()[0]) > 0.0);
    }

    #[test]
    fn drops_as_percent_conversion() {
        let drops = drops_as_percent_of_vdd(&[1.2, 1.14, 1.08], 1.2);
        assert!((drops[0] - 0.0).abs() < 1e-12);
        assert!((drops[1] - 5.0).abs() < 1e-12);
        assert!((drops[2] - 10.0).abs() < 1e-12);
    }
}
