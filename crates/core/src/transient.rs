//! Deterministic transient analysis of `G·v + C·dv/dt = u(t)`.
//!
//! The paper carries out fixed-step transient analysis of the power grid.
//! This module provides backward Euler (default, matching the paper's fixed
//! time step) and trapezoidal integration. The companion matrix
//! `G + C/h` (or `G + 2C/h`) is factored once with sparse Cholesky and reused
//! for every time step.

use opera_sparse::{CsrMatrix, MatrixFactor, Panel, SolveWorkspace};

use crate::{OperaError, Result};

/// Rescales an excitation vector around an anchor (the quiescent `t = 0`
/// excitation): `u ← anchor + scale·(u − anchor)`. Because switching
/// currents vanish at quiescence, this scales exactly the switching part
/// while leaving the pad (supply) injection untouched. Shared by the
/// engine's scenario paths and the Monte Carlo baseline so the two sides of
/// an OPERA-vs-MC comparison always apply the same scaling.
pub(crate) fn rescale_around_anchor(u: &mut [f64], anchor: &[f64], scale: f64) {
    for (u_n, a_n) in u.iter_mut().zip(anchor) {
        *u_n = a_n + scale * (*u_n - a_n);
    }
}

/// Time-integration scheme for the transient solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// First-order implicit Euler — robust, matches the paper's fixed-step
    /// analysis. This is the default.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate for smooth waveforms.
    Trapezoidal,
}

/// Options for a fixed-step transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// End time in seconds (the analysis covers `0..=end_time`).
    pub end_time: f64,
    /// Integration scheme.
    pub method: IntegrationMethod,
}

impl TransientOptions {
    /// Creates options with the default backward Euler scheme.
    pub fn new(time_step: f64, end_time: f64) -> Self {
        TransientOptions {
            time_step,
            end_time,
            method: IntegrationMethod::BackwardEuler,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for non-positive step or end
    /// time, or a step larger than the end time.
    pub fn validate(&self) -> Result<()> {
        if self.time_step <= 0.0 || !self.time_step.is_finite() {
            return Err(OperaError::InvalidOptions {
                reason: format!("time_step must be positive, got {}", self.time_step),
            });
        }
        if self.end_time <= 0.0 || !self.end_time.is_finite() {
            return Err(OperaError::InvalidOptions {
                reason: format!("end_time must be positive, got {}", self.end_time),
            });
        }
        if self.time_step > self.end_time {
            return Err(OperaError::InvalidOptions {
                reason: "time_step must not exceed end_time".to_string(),
            });
        }
        Ok(())
    }

    /// The time points `t₀ = 0, t₁ = h, …` covered by the analysis.
    pub fn time_points(&self) -> Vec<f64> {
        let steps = (self.end_time / self.time_step).round() as usize;
        (0..=steps).map(|k| k as f64 * self.time_step).collect()
    }
}

/// Result of a deterministic transient analysis.
#[derive(Debug, Clone)]
pub struct TransientSolution {
    /// Time points, starting at `t = 0`.
    pub times: Vec<f64>,
    /// Node voltages: `voltages[k][n]` is the voltage of node `n` at
    /// `times[k]`.
    pub voltages: Vec<Vec<f64>>,
}

impl TransientSolution {
    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the solution holds no time points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage of `node` over time.
    pub fn node_waveform(&self, node: usize) -> Vec<f64> {
        self.voltages.iter().map(|v| v[node]).collect()
    }

    /// Worst (largest) voltage drop below `vdd` over all nodes and times,
    /// returned as `(drop, node, time_index)`.
    pub fn worst_drop(&self, vdd: f64) -> (f64, usize, usize) {
        let mut worst = (f64::NEG_INFINITY, 0, 0);
        for (k, v) in self.voltages.iter().enumerate() {
            for (n, &vn) in v.iter().enumerate() {
                let drop = vdd - vn;
                if drop > worst.0 {
                    worst = (drop, n, k);
                }
            }
        }
        worst
    }
}

/// A factored companion system that can advance the transient solution and be
/// reused across right-hand sides (this is what makes the special case of the
/// paper cheap: one factorisation, many solves).
pub struct CompanionSystem {
    factor: MatrixFactor,
    c_over_h: CsrMatrix,
    g: CsrMatrix,
    method: IntegrationMethod,
    h: f64,
}

impl CompanionSystem {
    /// Builds and factors the companion matrix for the given `G`, `C` and
    /// step size. Tries Cholesky first and falls back to LU if the matrix is
    /// not numerically positive definite.
    ///
    /// # Errors
    ///
    /// Returns the underlying factorisation error if both attempts fail.
    pub fn new(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
    ) -> Result<Self> {
        Self::with_factoring(g, c, time_step, method, MatrixFactor::cholesky_or_lu)
    }

    /// Builds the companion system with a left-looking LU factorisation,
    /// skipping the Cholesky attempt — for matrices known (or suspected) not
    /// to be positive definite.
    ///
    /// # Errors
    ///
    /// Returns the LU factorisation error for singular companion matrices.
    pub fn with_lu(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
    ) -> Result<Self> {
        Self::with_factoring(g, c, time_step, method, MatrixFactor::lu)
    }

    fn with_factoring(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
        factoring: impl FnOnce(&CsrMatrix) -> opera_sparse::Result<MatrixFactor>,
    ) -> Result<Self> {
        let scale = match method {
            IntegrationMethod::BackwardEuler => 1.0 / time_step,
            IntegrationMethod::Trapezoidal => 2.0 / time_step,
        };
        let c_over_h = c.scaled(scale);
        let companion = g.add_scaled(&c_over_h, 1.0)?;
        let factor = factoring(&companion)?;
        Ok(CompanionSystem {
            factor,
            c_over_h,
            g: g.clone(),
            method,
            h: time_step,
        })
    }

    /// Time step the companion matrix was built for.
    pub fn time_step(&self) -> f64 {
        self.h
    }

    /// Solves the companion system for an arbitrary right-hand side,
    /// allocating the result. In hot loops prefer
    /// [`CompanionSystem::solve_in_place`].
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        self.factor.solve(rhs)
    }

    /// Solves the companion system in place with workspace-borrowed scratch
    /// (zero heap allocations once `ws` is warm).
    pub fn solve_in_place(&self, rhs: &mut [f64], ws: &mut SolveWorkspace) {
        self.factor.solve_in_place(rhs, ws);
    }

    /// Solves the companion system for every column of a panel in one blocked
    /// multi-RHS sweep. Each column is bit-identical to
    /// [`CompanionSystem::solve`] on that column.
    pub fn solve_panel(&self, rhs: &mut Panel, ws: &mut SolveWorkspace) {
        self.factor.solve_panel(rhs, ws);
    }

    /// Advances one time step: given the state `v_k` and the excitations at
    /// `t_k` and `t_{k+1}`, returns `v_{k+1}`. Allocates the result; the hot
    /// loops use [`CompanionSystem::step_into`].
    pub fn step(&self, v_k: &[f64], u_k: &[f64], u_k1: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; v_k.len()];
        self.step_into(v_k, u_k, u_k1, &mut out, &mut SolveWorkspace::new());
        out
    }

    /// Advances one time step into a caller-provided buffer: builds the
    /// implicit right-hand side in `out` and solves it in place, borrowing
    /// all scratch from `ws`. A steady-state loop that double-buffers `v_k`
    /// and `out` performs zero heap allocations per step. Bit-identical to
    /// [`CompanionSystem::step`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the system dimension.
    // The per-step state advance: zero allocations, scratch comes from the
    // caller's SolveWorkspace (the engine's allocation counter asserts the
    // same property at run time).
    // lint: hot(transient-step)
    pub fn step_into(
        &self,
        v_k: &[f64],
        u_k: &[f64],
        u_k1: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(u_k.len(), out.len(), "u_k dimension mismatch");
        assert_eq!(u_k1.len(), out.len(), "u_k1 dimension mismatch");
        match self.method {
            IntegrationMethod::BackwardEuler => {
                // (G + C/h) v_{k+1} = u_{k+1} + (C/h) v_k
                self.c_over_h.matvec_into(v_k, out);
                for (r, u) in out.iter_mut().zip(u_k1) {
                    *r += u;
                }
            }
            IntegrationMethod::Trapezoidal => {
                // (G + 2C/h) v_{k+1} = u_k + u_{k+1} + (2C/h − G) v_k
                self.c_over_h.matvec_into(v_k, out);
                self.g.matvec_acc(v_k, -1.0, out);
                for ((r, a), b) in out.iter_mut().zip(u_k).zip(u_k1) {
                    *r += a + b;
                }
            }
        }
        self.factor.solve_in_place(out, ws);
    }

    /// Advances one time step for a whole panel of independent states sharing
    /// this companion system: column `j` of `out` receives the step of column
    /// `j` of `v_k` driven by column `j` of `u_k`/`u_k1`, and all columns go
    /// through **one** blocked panel solve. Each column is bit-identical to
    /// [`CompanionSystem::step`] on that column.
    ///
    /// # Panics
    ///
    /// Panics if the panel shapes disagree.
    pub fn step_panel_into(
        &self,
        v_k: &Panel,
        u_k: &Panel,
        u_k1: &Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(v_k.ncols(), out.ncols(), "state/output panel mismatch");
        assert_eq!(u_k.ncols(), out.ncols(), "u_k panel column mismatch");
        assert_eq!(u_k1.ncols(), out.ncols(), "u_k1 panel column mismatch");
        assert_eq!(u_k.nrows(), out.nrows(), "u_k panel row mismatch");
        assert_eq!(u_k1.nrows(), out.nrows(), "u_k1 panel row mismatch");
        for j in 0..out.ncols() {
            let col = out.col_mut(j);
            match self.method {
                IntegrationMethod::BackwardEuler => {
                    self.c_over_h.matvec_into(v_k.col(j), col);
                    for (r, u) in col.iter_mut().zip(u_k1.col(j)) {
                        *r += u;
                    }
                }
                IntegrationMethod::Trapezoidal => {
                    self.c_over_h.matvec_into(v_k.col(j), col);
                    self.g.matvec_acc(v_k.col(j), -1.0, col);
                    for ((r, a), b) in col.iter_mut().zip(u_k.col(j)).zip(u_k1.col(j)) {
                        *r += a + b;
                    }
                }
            }
        }
        self.factor.solve_panel(out, ws);
    }

    // lint: end-hot
}

/// Runs a fixed-step transient analysis of `G·v + C·dv/dt = u(t)`.
///
/// The initial condition is the DC solution `G·v(0) = u(0)` (the paper starts
/// its transient analyses from the quiescent operating point).
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options and propagates
/// factorisation errors.
///
/// # Example
///
/// ```
/// use opera::transient::{solve_transient, TransientOptions};
/// use opera_grid::GridSpec;
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(120).build()?;
/// let opts = TransientOptions::new(0.05e-9, 1.0e-9);
/// let sol = solve_transient(
///     &grid.conductance_matrix(),
///     &grid.capacitance_matrix(),
///     |t| grid.excitation(t),
///     &opts,
/// )?;
/// let (drop, _, _) = sol.worst_drop(grid.vdd());
/// assert!(drop >= 0.0 && drop < 0.12 * grid.vdd());
/// # Ok(())
/// # }
/// ```
pub fn solve_transient(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64>,
    options: &TransientOptions,
) -> Result<TransientSolution> {
    options.validate()?;
    let times = options.time_points();
    let n = g.nrows();
    // DC initial condition.
    let u0 = excitation(0.0);
    let v0 = MatrixFactor::cholesky_or_lu(g)
        .map_err(OperaError::from)?
        .solve(&u0);
    let companion = CompanionSystem::new(g, c, options.time_step, options.method)?;
    // All output rows are allocated up front; the stepping loop then writes
    // each new state straight into its output row (double-buffering the state
    // through `split_at_mut`) with workspace-borrowed solver scratch, so the
    // steady-state loop performs no per-step solver allocations.
    let mut voltages = vec![vec![0.0; n]; times.len()];
    voltages[0] = v0;
    let mut ws = SolveWorkspace::with_capacity(n);
    let mut u_prev = u0;
    // The span lives outside the hot region (its guard is not allocation-free
    // when tracing is enabled); inside it only counter increments are allowed.
    let stepping = opera_trace::span("transient.stepping");
    // lint: hot(transient-stepping-loop)
    for k in 1..times.len() {
        opera_trace::count("transient.steps", 1);
        let u_next = excitation(times[k]);
        let (done, rest) = voltages.split_at_mut(k);
        companion.step_into(&done[k - 1], &u_prev, &u_next, &mut rest[0], &mut ws);
        u_prev = u_next;
    }
    // lint: end-hot
    drop(stepping);
    Ok(TransientSolution { times, voltages })
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_sparse::TripletMatrix;

    /// Single RC node driven through a resistor from a 1 V source:
    /// v(t) = 1 − exp(−t/RC) with R = 1 Ω, C = 1 F (so τ = 1 s).
    fn rc_circuit() -> (CsrMatrix, CsrMatrix) {
        let mut g = TripletMatrix::new(1, 1);
        g.push(0, 0, 1.0);
        let mut c = TripletMatrix::new(1, 1);
        c.push(0, 0, 1.0);
        (g.to_csr(), c.to_csr())
    }

    #[test]
    fn rc_step_response_matches_analytic_solution() {
        let (g, c) = rc_circuit();
        // Excitation: 0 at t = 0 (so DC start at 0), then 1 A injected.
        let u = |t: f64| vec![if t > 0.0 { 1.0 } else { 0.0 }];
        let opts = TransientOptions {
            time_step: 0.001,
            end_time: 2.0,
            method: IntegrationMethod::Trapezoidal,
        };
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        let k = sol.times.len() - 1;
        let expected = 1.0 - (-sol.times[k]).exp();
        assert!(
            (sol.voltages[k][0] - expected).abs() < 1e-3,
            "got {}, expected {expected}",
            sol.voltages[k][0]
        );
    }

    #[test]
    fn backward_euler_and_trapezoidal_converge_to_same_answer() {
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![if t > 0.0 { 1.0 } else { 0.0 }];
        let mut results = Vec::new();
        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
        ] {
            let opts = TransientOptions {
                time_step: 0.0005,
                end_time: 1.0,
                method,
            };
            let sol = solve_transient(&g, &c, u, &opts).unwrap();
            results.push(sol.voltages.last().unwrap()[0]);
        }
        assert!((results[0] - results[1]).abs() < 2e-3);
    }

    #[test]
    fn dc_start_means_first_point_solves_g_v_eq_u0() {
        let (g, c) = rc_circuit();
        let u = |_t: f64| vec![0.5];
        let opts = TransientOptions::new(0.1, 1.0);
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        assert!((sol.voltages[0][0] - 0.5).abs() < 1e-12);
        // Constant excitation keeps the solution at the DC value.
        assert!((sol.voltages.last().unwrap()[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grid_transient_drop_stays_below_calibration_target() {
        let grid = opera_grid::GridSpec::small_test(200).build().unwrap();
        let opts = TransientOptions::new(0.05e-9, 1.0e-9);
        let sol = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &opts,
        )
        .unwrap();
        let (drop, _, _) = sol.worst_drop(grid.vdd());
        // The generator calibrates the *DC* peak drop to 8 % of VDD; the
        // transient drop with capacitive smoothing must not exceed it (plus
        // slack for discretisation).
        assert!(drop <= 0.09 * grid.vdd(), "drop {drop}");
        assert!(drop > 0.0);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler_at_equal_step() {
        // Second-order vs first-order accuracy on a *smooth* excitation
        // (a raised-cosine ramp); the reference is a very fine trapezoidal run.
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![0.5 * (1.0 - (std::f64::consts::PI * t).cos())];
        let end = 1.0;
        let value_at_end = |method: IntegrationMethod, step: f64| {
            let sol = solve_transient(
                &g,
                &c,
                u,
                &TransientOptions {
                    time_step: step,
                    end_time: end,
                    method,
                },
            )
            .unwrap();
            sol.voltages.last().unwrap()[0]
        };
        let reference = value_at_end(IntegrationMethod::Trapezoidal, 0.001);
        let be_error = (value_at_end(IntegrationMethod::BackwardEuler, 0.05) - reference).abs();
        let trap_error = (value_at_end(IntegrationMethod::Trapezoidal, 0.05) - reference).abs();
        assert!(
            trap_error < 0.2 * be_error,
            "trapezoidal ({trap_error}) should clearly beat backward Euler ({be_error})"
        );
    }

    #[test]
    fn companion_system_exposes_its_step_and_solves_consistently() {
        let (g, c) = rc_circuit();
        let companion =
            CompanionSystem::new(&g, &c, 0.1, IntegrationMethod::BackwardEuler).unwrap();
        assert_eq!(companion.time_step(), 0.1);
        // Solving the companion system directly must satisfy (G + C/h) x = b.
        let b = vec![3.0];
        let x = companion.solve(&b);
        assert!((11.0 * x[0] - 3.0).abs() < 1e-12); // G + C/h = 1 + 10
    }

    #[test]
    fn node_waveform_extracts_single_node_history() {
        let (g, c) = rc_circuit();
        let u = |_t: f64| vec![1.0];
        let opts = TransientOptions::new(0.25, 1.0);
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        assert_eq!(sol.node_waveform(0).len(), sol.len());
        assert!(!sol.is_empty());
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(TransientOptions::new(0.0, 1.0).validate().is_err());
        assert!(TransientOptions::new(1.0, 0.0).validate().is_err());
        assert!(TransientOptions::new(2.0, 1.0).validate().is_err());
        assert!(TransientOptions::new(0.1, 1.0).validate().is_ok());
        assert_eq!(TransientOptions::new(0.25, 1.0).time_points().len(), 5);
    }
}
