//! Deterministic transient analysis of `G·v + C·dv/dt = u(t)`.
//!
//! The paper carries out fixed-step transient analysis of the power grid.
//! This module provides backward Euler (default, matching the paper's fixed
//! time step), trapezoidal integration, and the L-stable two-stage TR-BDF2
//! composite. The companion matrix `G + s·C` (`s = 1/h`, `2/h` or `2/(γh)`
//! depending on the scheme) is factored once with sparse Cholesky and reused
//! for every time step. [`CompanionFamily`] extends the reuse across step
//! sizes: one symbolic analysis serves numeric-only refactorisations for
//! every `h` the adaptive controller visits, with an LRU cache of the
//! recently-used factors. See `docs/TRANSIENT.md`.

use std::sync::{Arc, Mutex};

use opera_sparse::{CsrMatrix, MatrixFactor, Panel, SolveWorkspace, SymbolicCholesky};
use opera_trace::Counter;

use crate::{OperaError, Result};

/// TR-BDF2 stage split: the trapezoidal stage covers `γh`, the BDF2 stage the
/// remaining `(1−γ)h`, with `γ = 2 − √2` so both stages share one companion
/// matrix `G + (2/(γh))·C`.
pub const TR_BDF2_GAMMA: f64 = 2.0 - std::f64::consts::SQRT_2;

/// BDF2-stage weight of the intermediate state: `1/(2(1−γ))`.
pub(crate) const TR_BDF2_W_MID: f64 = 0.5 / (1.0 - TR_BDF2_GAMMA);
/// BDF2-stage weight of the old state: `(1−γ)/2`.
pub(crate) const TR_BDF2_W_OLD: f64 = 0.5 * (1.0 - TR_BDF2_GAMMA);

/// TR-BDF2 local-error constant `(3γ² − 4γ + 2) / (12(2 − γ))`
/// (Hosea–Shampine), folded below into the per-node residual weights of the
/// filtered error estimate.
const TR_BDF2_ERR_CONST: f64 = (3.0 * TR_BDF2_GAMMA * TR_BDF2_GAMMA - 4.0 * TR_BDF2_GAMMA + 2.0)
    / (12.0 * (2.0 - TR_BDF2_GAMMA));
/// Residual weight of the step-start node in the filtered LTE solve.
const TR_BDF2_ERR_OLD: f64 = 2.0 * TR_BDF2_ERR_CONST / (TR_BDF2_GAMMA * TR_BDF2_GAMMA);
/// Residual weight of the intermediate (`t + γh`) node.
const TR_BDF2_ERR_MID: f64 =
    -2.0 * TR_BDF2_ERR_CONST / (TR_BDF2_GAMMA * TR_BDF2_GAMMA * (1.0 - TR_BDF2_GAMMA));
/// Residual weight of the step-end node.
const TR_BDF2_ERR_NEW: f64 = 2.0 * TR_BDF2_ERR_CONST / (TR_BDF2_GAMMA * (1.0 - TR_BDF2_GAMMA));

/// Companion-matrix scale `s` in `G + s·C` for a scheme at step `h`.
pub(crate) fn companion_scale(method: IntegrationMethod, time_step: f64) -> f64 {
    match method {
        IntegrationMethod::BackwardEuler => 1.0 / time_step,
        IntegrationMethod::Trapezoidal => 2.0 / time_step,
        IntegrationMethod::TrBdf2 => 2.0 / (TR_BDF2_GAMMA * time_step),
    }
}

/// Rescales an excitation vector around an anchor (the quiescent `t = 0`
/// excitation): `u ← anchor + scale·(u − anchor)`. Because switching
/// currents vanish at quiescence, this scales exactly the switching part
/// while leaving the pad (supply) injection untouched. Shared by the
/// engine's scenario paths and the Monte Carlo baseline so the two sides of
/// an OPERA-vs-MC comparison always apply the same scaling.
pub(crate) fn rescale_around_anchor(u: &mut [f64], anchor: &[f64], scale: f64) {
    for (u_n, a_n) in u.iter_mut().zip(anchor) {
        *u_n = a_n + scale * (*u_n - a_n);
    }
}

/// Time-integration scheme for the transient solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// First-order implicit Euler — robust, matches the paper's fixed-step
    /// analysis. This is the default.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate for smooth waveforms.
    Trapezoidal,
    /// Second-order TR-BDF2 composite (trapezoidal stage over `γh`, BDF2
    /// stage over the rest, `γ = 2 − √2`) — L-stable, so stiff RC decks do
    /// not ring, with an embedded error estimate that drives the adaptive
    /// controller in [`crate::adaptive`].
    TrBdf2,
}

/// Options for a fixed-step transient analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step in seconds.
    pub time_step: f64,
    /// End time in seconds (the analysis covers `0..=end_time`).
    pub end_time: f64,
    /// Integration scheme.
    pub method: IntegrationMethod,
}

impl TransientOptions {
    /// Creates options with the default backward Euler scheme.
    pub fn new(time_step: f64, end_time: f64) -> Self {
        TransientOptions {
            time_step,
            end_time,
            method: IntegrationMethod::BackwardEuler,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for non-positive step or end
    /// time, or a step larger than the end time.
    pub fn validate(&self) -> Result<()> {
        if self.time_step <= 0.0 || !self.time_step.is_finite() {
            return Err(OperaError::InvalidOptions {
                reason: format!("time_step must be positive, got {}", self.time_step),
            });
        }
        if self.end_time <= 0.0 || !self.end_time.is_finite() {
            return Err(OperaError::InvalidOptions {
                reason: format!("end_time must be positive, got {}", self.end_time),
            });
        }
        if self.time_step > self.end_time {
            return Err(OperaError::InvalidOptions {
                reason: "time_step must not exceed end_time".to_string(),
            });
        }
        Ok(())
    }

    /// The time points `t₀ = 0, t₁ = h, …` covered by the analysis.
    ///
    /// Interior points are generated as `k as f64 * h` (not by accumulating
    /// `t += h`, which drifts), and the final point is `end_time` itself, so
    /// the grid always lands exactly on the requested horizon even when
    /// `steps · h` rounds away from it. `TransientSpec::time_points` in
    /// `opera-collocation` mirrors this exactly.
    pub fn time_points(&self) -> Vec<f64> {
        let steps = (self.end_time / self.time_step).round() as usize;
        (0..=steps)
            .map(|k| {
                if k == steps {
                    self.end_time
                } else {
                    k as f64 * self.time_step
                }
            })
            .collect()
    }
}

/// Result of a deterministic transient analysis.
///
/// The per-time states live in **one** contiguous column-major [`Panel`]
/// (column `k` is the state at `times[k]`), so extracting a node history is
/// a strided sweep over a single allocation instead of a pointer chase
/// through per-time-point vectors.
#[derive(Debug, Clone)]
pub struct TransientSolution {
    /// Time points, starting at `t = 0`.
    pub times: Vec<f64>,
    /// Node states: column `k` holds the voltage vector at `times[k]`.
    states: Panel,
}

impl TransientSolution {
    /// Builds a solution from its time grid and state panel (column `k` of
    /// `states` is the state at `times[k]`).
    ///
    /// # Panics
    ///
    /// Panics if the panel column count disagrees with the time grid.
    pub fn new(times: Vec<f64>, states: Panel) -> Self {
        assert_eq!(
            times.len(),
            states.ncols(),
            "one state column per time point"
        );
        TransientSolution { times, states }
    }

    /// Builds a solution from per-time state vectors (row `k` becomes the
    /// state column at `times[k]`).
    ///
    /// # Panics
    ///
    /// Panics if the state count disagrees with the time grid or the states
    /// have differing lengths.
    pub fn from_states(times: Vec<f64>, states: &[Vec<f64>]) -> Self {
        Self::new(times, Panel::from_columns(states))
    }

    /// Number of time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` if the solution holds no time points.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of nodes in each state.
    pub fn node_count(&self) -> usize {
        self.states.nrows()
    }

    /// The full state (all node voltages) at time index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn state_at(&self, k: usize) -> &[f64] {
        self.states.col(k)
    }

    /// The state panel: column `k` is the state at `times[k]`.
    pub fn states(&self) -> &Panel {
        &self.states
    }

    /// Voltage of `node` over time: one strided gather over the contiguous
    /// state panel.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range (and the solution is non-empty).
    pub fn node_waveform(&self, node: usize) -> Vec<f64> {
        let n = self.states.nrows();
        let data = self.states.data();
        (0..self.states.ncols())
            .map(|k| data[k * n + node])
            .collect()
    }

    /// Worst (largest) voltage drop below `vdd` over all nodes and times,
    /// returned as `(drop, node, time_index)`.
    pub fn worst_drop(&self, vdd: f64) -> (f64, usize, usize) {
        let mut worst = (f64::NEG_INFINITY, 0, 0);
        for (k, v) in self.states.columns().enumerate() {
            for (n, &vn) in v.iter().enumerate() {
                let drop = vdd - vn;
                if drop > worst.0 {
                    worst = (drop, n, k);
                }
            }
        }
        worst
    }
}

/// A factored companion system that can advance the transient solution and be
/// reused across right-hand sides (this is what makes the special case of the
/// paper cheap: one factorisation, many solves).
pub struct CompanionSystem {
    factor: MatrixFactor,
    c_over_h: CsrMatrix,
    g: CsrMatrix,
    method: IntegrationMethod,
    h: f64,
}

impl CompanionSystem {
    /// Builds and factors the companion matrix for the given `G`, `C` and
    /// step size. Tries Cholesky first and falls back to LU if the matrix is
    /// not numerically positive definite.
    ///
    /// # Errors
    ///
    /// Returns the underlying factorisation error if both attempts fail.
    pub fn new(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
    ) -> Result<Self> {
        Self::with_factoring(g, c, time_step, method, MatrixFactor::cholesky_or_lu)
    }

    /// Builds the companion system with a left-looking LU factorisation,
    /// skipping the Cholesky attempt — for matrices known (or suspected) not
    /// to be positive definite.
    ///
    /// # Errors
    ///
    /// Returns the LU factorisation error for singular companion matrices.
    pub fn with_lu(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
    ) -> Result<Self> {
        Self::with_factoring(g, c, time_step, method, MatrixFactor::lu)
    }

    fn with_factoring(
        g: &CsrMatrix,
        c: &CsrMatrix,
        time_step: f64,
        method: IntegrationMethod,
        factoring: impl FnOnce(&CsrMatrix) -> opera_sparse::Result<MatrixFactor>,
    ) -> Result<Self> {
        let c_over_h = c.scaled(companion_scale(method, time_step));
        let companion = g.add_scaled(&c_over_h, 1.0)?;
        let factor = factoring(&companion)?;
        Ok(CompanionSystem {
            factor,
            c_over_h,
            g: g.clone(),
            method,
            h: time_step,
        })
    }

    /// Time step the companion matrix was built for.
    pub fn time_step(&self) -> f64 {
        self.h
    }

    /// Integration scheme the companion matrix was built for.
    pub fn method(&self) -> IntegrationMethod {
        self.method
    }

    /// Solves the companion system for an arbitrary right-hand side,
    /// allocating the result. In hot loops prefer
    /// [`CompanionSystem::solve_in_place`].
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        self.factor.solve(rhs)
    }

    /// Solves the companion system in place with workspace-borrowed scratch
    /// (zero heap allocations once `ws` is warm).
    pub fn solve_in_place(&self, rhs: &mut [f64], ws: &mut SolveWorkspace) {
        self.factor.solve_in_place(rhs, ws);
    }

    /// Solves the companion system for every column of a panel in one blocked
    /// multi-RHS sweep. Each column is bit-identical to
    /// [`CompanionSystem::solve`] on that column.
    pub fn solve_panel(&self, rhs: &mut Panel, ws: &mut SolveWorkspace) {
        self.factor.solve_panel(rhs, ws);
    }

    /// Advances one time step: given the state `v_k` and the excitations at
    /// `t_k` and `t_{k+1}`, returns `v_{k+1}`. Allocates the result; the hot
    /// loops use [`CompanionSystem::step_into`].
    pub fn step(&self, v_k: &[f64], u_k: &[f64], u_k1: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; v_k.len()];
        self.step_into(v_k, u_k, u_k1, &mut out, &mut SolveWorkspace::new());
        out
    }

    /// Advances one time step into a caller-provided buffer: builds the
    /// implicit right-hand side in `out` and solves it in place, borrowing
    /// all scratch from `ws`. A steady-state loop that double-buffers `v_k`
    /// and `out` performs zero heap allocations per step. Bit-identical to
    /// [`CompanionSystem::step`].
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree with the system dimension.
    // The per-step state advance: zero allocations, scratch comes from the
    // caller's SolveWorkspace (the engine's allocation counter asserts the
    // same property at run time).
    // lint: hot(transient-step)
    pub fn step_into(
        &self,
        v_k: &[f64],
        u_k: &[f64],
        u_k1: &[f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(u_k.len(), out.len(), "u_k dimension mismatch");
        assert_eq!(u_k1.len(), out.len(), "u_k1 dimension mismatch");
        assert!(
            self.method != IntegrationMethod::TrBdf2,
            "TR-BDF2 needs the mid-stage excitation: step via step_tr_bdf2_into"
        );
        let backend = opera_simd::active();
        match self.method {
            IntegrationMethod::BackwardEuler => {
                // (G + C/h) v_{k+1} = u_{k+1} + (C/h) v_k
                self.c_over_h.matvec_into(v_k, out);
                opera_simd::add_assign(out, u_k1, backend);
            }
            // TrBdf2 is rejected by the assert above.
            IntegrationMethod::Trapezoidal | IntegrationMethod::TrBdf2 => {
                // (G + 2C/h) v_{k+1} = u_k + u_{k+1} + (2C/h − G) v_k
                self.c_over_h.matvec_into(v_k, out);
                self.g.matvec_acc(v_k, -1.0, out);
                opera_simd::add2_assign(out, u_k, u_k1, backend);
            }
        }
        self.factor.solve_in_place(out, ws);
    }

    /// Advances one TR-BDF2 step into caller-provided buffers: the
    /// trapezoidal stage over `[t, t + γh]` lands the intermediate state in
    /// `stage`, the BDF2 stage over `[t, t + γh, t + h]` lands `v_{k+1}` in
    /// `out`. Both stages solve the **same** factored companion matrix
    /// `G + (2/(γh))·C`, so a TR-BDF2 step costs two solves against one
    /// factorisation. `u_mid` is the excitation at `t + γh`. Zero heap
    /// allocations once `ws` is warm.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree or the system was built for a
    /// different scheme.
    #[allow(clippy::too_many_arguments)] // two stages = three excitations + two buffers
    pub fn step_tr_bdf2_into(
        &self,
        v_k: &[f64],
        u_k: &[f64],
        u_mid: &[f64],
        u_k1: &[f64],
        stage: &mut [f64],
        out: &mut [f64],
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(self.method, IntegrationMethod::TrBdf2, "method mismatch");
        assert_eq!(u_k.len(), out.len(), "u_k dimension mismatch");
        assert_eq!(u_mid.len(), out.len(), "u_mid dimension mismatch");
        assert_eq!(u_k1.len(), out.len(), "u_k1 dimension mismatch");
        assert_eq!(stage.len(), out.len(), "stage dimension mismatch");
        let backend = opera_simd::active();
        // TR stage: (G + 2C/(γh)) v_γ = u_k + u_γ + (2C/(γh) − G) v_k
        self.c_over_h.matvec_into(v_k, stage);
        self.g.matvec_acc(v_k, -1.0, stage);
        opera_simd::add2_assign(stage, u_k, u_mid, backend);
        self.factor.solve_in_place(stage, ws);
        // BDF2 stage on the unequally spaced nodes {t, t+γh, t+h}:
        // (G + 2C/(γh)) v_{k+1} = u_{k+1} + (2C/(γh))·(v_γ/(2(1−γ)) − v_k·(1−γ)/2)
        self.c_over_h.matvec_into(stage, out);
        opera_simd::scale_assign(out, TR_BDF2_W_MID, backend);
        self.c_over_h.matvec_acc(v_k, -TR_BDF2_W_OLD, out);
        opera_simd::add_assign(out, u_k1, backend);
        self.factor.solve_in_place(out, ws);
    }

    /// The embedded TR-BDF2 local-truncation-error estimate, filtered through
    /// the companion matrix (Hosea–Shampine): solves
    /// `(G + (2/(γh))·C) e = Σ w_i (u_i − G v_i)` over the three stage nodes,
    /// which equals the raw divided-difference estimate premultiplied by the
    /// L-stable filter `(I + (γh/2)C⁻¹G)⁻¹` — no `C⁻¹` ever materialises, so
    /// singular `C` (nodes without capacitors) is fine. Costs three `G`
    /// mat-vecs and one extra solve of the already-factored companion. Zero
    /// heap allocations once `ws` is warm.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths disagree or the system was built for a
    /// different scheme.
    #[allow(clippy::too_many_arguments)]
    pub fn tr_bdf2_error_into(
        &self,
        v_k: &[f64],
        v_mid: &[f64],
        v_k1: &[f64],
        u_k: &[f64],
        u_mid: &[f64],
        u_k1: &[f64],
        err: &mut [f64],
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(self.method, IntegrationMethod::TrBdf2, "method mismatch");
        assert_eq!(v_k.len(), err.len(), "v_k dimension mismatch");
        assert_eq!(v_mid.len(), err.len(), "v_mid dimension mismatch");
        assert_eq!(v_k1.len(), err.len(), "v_k1 dimension mismatch");
        opera_simd::weighted_sum3(
            err,
            [u_k, u_mid, u_k1],
            [TR_BDF2_ERR_OLD, TR_BDF2_ERR_MID, TR_BDF2_ERR_NEW],
            opera_simd::active(),
        );
        self.g.matvec_acc(v_k, -TR_BDF2_ERR_OLD, err);
        self.g.matvec_acc(v_mid, -TR_BDF2_ERR_MID, err);
        self.g.matvec_acc(v_k1, -TR_BDF2_ERR_NEW, err);
        self.factor.solve_in_place(err, ws);
    }

    /// Advances one time step for a whole panel of independent states sharing
    /// this companion system: column `j` of `out` receives the step of column
    /// `j` of `v_k` driven by column `j` of `u_k`/`u_k1`, and all columns go
    /// through **one** blocked panel solve. Each column is bit-identical to
    /// [`CompanionSystem::step`] on that column.
    ///
    /// # Panics
    ///
    /// Panics if the panel shapes disagree.
    pub fn step_panel_into(
        &self,
        v_k: &Panel,
        u_k: &Panel,
        u_k1: &Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(v_k.ncols(), out.ncols(), "state/output panel mismatch");
        assert_eq!(u_k.ncols(), out.ncols(), "u_k panel column mismatch");
        assert_eq!(u_k1.ncols(), out.ncols(), "u_k1 panel column mismatch");
        assert_eq!(u_k.nrows(), out.nrows(), "u_k panel row mismatch");
        assert_eq!(u_k1.nrows(), out.nrows(), "u_k1 panel row mismatch");
        assert!(
            self.method != IntegrationMethod::TrBdf2,
            "TR-BDF2 needs the mid-stage excitation: step via step_tr_bdf2_panel_into"
        );
        let backend = opera_simd::active();
        for j in 0..out.ncols() {
            let col = out.col_mut(j);
            match self.method {
                IntegrationMethod::BackwardEuler => {
                    self.c_over_h.matvec_into(v_k.col(j), col);
                    opera_simd::add_assign(col, u_k1.col(j), backend);
                }
                // TrBdf2 is rejected by the assert above.
                IntegrationMethod::Trapezoidal | IntegrationMethod::TrBdf2 => {
                    self.c_over_h.matvec_into(v_k.col(j), col);
                    self.g.matvec_acc(v_k.col(j), -1.0, col);
                    opera_simd::add2_assign(col, u_k.col(j), u_k1.col(j), backend);
                }
            }
        }
        self.factor.solve_panel(out, ws);
    }

    /// Advances one TR-BDF2 step for a whole panel of independent states:
    /// the TR-stage right-hand sides of every column build in `stage`, go
    /// through **one** blocked panel solve, then the BDF2 stage does the
    /// same into `out`. Each column is bit-identical to
    /// [`CompanionSystem::step_tr_bdf2_into`] on that column.
    ///
    /// # Panics
    ///
    /// Panics if the panel shapes disagree or the system was built for a
    /// different scheme.
    #[allow(clippy::too_many_arguments)]
    pub fn step_tr_bdf2_panel_into(
        &self,
        v_k: &Panel,
        u_k: &Panel,
        u_mid: &Panel,
        u_k1: &Panel,
        stage: &mut Panel,
        out: &mut Panel,
        ws: &mut SolveWorkspace,
    ) {
        assert_eq!(self.method, IntegrationMethod::TrBdf2, "method mismatch");
        assert_eq!(v_k.ncols(), out.ncols(), "state/output panel mismatch");
        assert_eq!(stage.ncols(), out.ncols(), "stage panel column mismatch");
        assert_eq!(u_k.ncols(), out.ncols(), "u_k panel column mismatch");
        assert_eq!(u_mid.ncols(), out.ncols(), "u_mid panel column mismatch");
        assert_eq!(u_k1.ncols(), out.ncols(), "u_k1 panel column mismatch");
        assert_eq!(u_k.nrows(), out.nrows(), "u_k panel row mismatch");
        assert_eq!(u_mid.nrows(), out.nrows(), "u_mid panel row mismatch");
        assert_eq!(u_k1.nrows(), out.nrows(), "u_k1 panel row mismatch");
        let backend = opera_simd::active();
        for j in 0..out.ncols() {
            let col = stage.col_mut(j);
            self.c_over_h.matvec_into(v_k.col(j), col);
            self.g.matvec_acc(v_k.col(j), -1.0, col);
            opera_simd::add2_assign(col, u_k.col(j), u_mid.col(j), backend);
        }
        self.factor.solve_panel(stage, ws);
        for j in 0..out.ncols() {
            let col = out.col_mut(j);
            self.c_over_h.matvec_into(stage.col(j), col);
            opera_simd::scale_assign(col, TR_BDF2_W_MID, backend);
            self.c_over_h.matvec_acc(v_k.col(j), -TR_BDF2_W_OLD, col);
            opera_simd::add_assign(col, u_k1.col(j), backend);
        }
        self.factor.solve_panel(out, ws);
    }

    // lint: end-hot

    /// Advances one TR-BDF2 step, allocating the result; the hot loops use
    /// [`CompanionSystem::step_tr_bdf2_into`]. Returns `v_{k+1}`.
    pub fn step_tr_bdf2(&self, v_k: &[f64], u_k: &[f64], u_mid: &[f64], u_k1: &[f64]) -> Vec<f64> {
        let mut stage = vec![0.0; v_k.len()];
        let mut out = vec![0.0; v_k.len()];
        self.step_tr_bdf2_into(
            v_k,
            u_k,
            u_mid,
            u_k1,
            &mut stage,
            &mut out,
            &mut SolveWorkspace::new(),
        );
        out
    }
}

/// Number of recently-used step sizes whose numeric companion factors stay
/// cached (the adaptive controller's deadband revisits a handful of steps).
const FAMILY_CACHE_CAPACITY: usize = 8;

/// A family of companion systems over one `(G, C)` pair: the sparsity
/// pattern of `G + s·C` is independent of `s`, so **one**
/// [`SymbolicCholesky`] analysis (AMD ordering, etree, supernodes) serves
/// every step size, and changing `h` only re-runs the numeric factorisation.
/// Recently-used factors are kept in a small LRU cache keyed by
/// `(h, method)`, so the adaptive controller's deadband — and TR-BDF2 step
/// sequences that alternate a few step sizes — pay no factorisation at all
/// on revisits.
///
/// The factors produced here are bit-identical to [`CompanionSystem::new`]
/// on the same inputs: the shared analysis sees the same union pattern, so
/// ordering, fill and the numeric kernel all match the one-shot path.
///
/// Bookkeeping is observable two ways: the `transient.symbolic_analyses` and
/// `transient.refactorizations` counters flow into [`opera_trace`] when
/// tracing is enabled, and [`CompanionFamily::symbolic_analysis_count`] /
/// [`CompanionFamily::refactorization_count`] always read the per-family
/// totals.
pub struct CompanionFamily {
    g: CsrMatrix,
    c: CsrMatrix,
    symbolic: Option<SymbolicCholesky>,
    use_lu: bool,
    cache: Mutex<Vec<CachedFactor>>,
    symbolic_analyses: Counter,
    refactorizations: Counter,
}

/// One LRU entry of a [`CompanionFamily`]: a factored companion system keyed
/// by the step-size bit pattern and the scheme it was built for.
type CachedFactor = ((u64, IntegrationMethod), Arc<CompanionSystem>);

impl CompanionFamily {
    /// Analyses the union pattern `G + C` once and prepares the family for
    /// Cholesky factors (with a per-step-size LU fallback mirroring
    /// [`MatrixFactor::cholesky_or_lu`]).
    ///
    /// # Errors
    ///
    /// Propagates pattern-union and symbolic-analysis errors.
    pub fn new(g: &CsrMatrix, c: &CsrMatrix) -> Result<Self> {
        Self::build_family(g, c, false)
    }

    /// Prepares a family that factors every step size with left-looking LU,
    /// skipping the shared Cholesky analysis — for matrices known not to be
    /// positive definite. Step-size changes re-run the full LU.
    ///
    /// # Errors
    ///
    /// Propagates pattern-union errors.
    pub fn with_lu(g: &CsrMatrix, c: &CsrMatrix) -> Result<Self> {
        Self::build_family(g, c, true)
    }

    fn build_family(g: &CsrMatrix, c: &CsrMatrix, use_lu: bool) -> Result<Self> {
        let symbolic_analyses = Counter::new("transient.symbolic_analyses");
        let symbolic = if use_lu {
            None
        } else {
            // The analysis is pattern-only: `s = 1` stands in for every
            // positive companion scale.
            let pattern = g.add_scaled(c, 1.0)?;
            let symbolic = SymbolicCholesky::analyze(&pattern)?;
            symbolic_analyses.incr();
            Some(symbolic)
        };
        Ok(CompanionFamily {
            g: g.clone(),
            c: c.clone(),
            symbolic,
            use_lu,
            cache: Mutex::new(Vec::new()),
            symbolic_analyses,
            refactorizations: Counter::new("transient.refactorizations"),
        })
    }

    /// System dimension (rows of `G`).
    pub fn dim(&self) -> usize {
        self.g.nrows()
    }

    /// Number of symbolic analyses this family has run (0 for the LU
    /// fallback, 1 otherwise — never more).
    pub fn symbolic_analysis_count(&self) -> u64 {
        self.symbolic_analyses.get()
    }

    /// Number of numeric (re)factorisations this family has run — one per
    /// distinct `(h, method)` requested, cache hits excluded.
    pub fn refactorization_count(&self) -> u64 {
        self.refactorizations.get()
    }

    /// Number of companion systems currently held by the LRU cache.
    pub fn cached_systems(&self) -> usize {
        match self.cache.lock() {
            Ok(cache) => cache.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Returns the factored companion system for `(time_step, method)`,
    /// reusing the cached factor when the pair was recently requested and
    /// otherwise running a numeric-only refactorisation against the shared
    /// symbolic analysis.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for a non-positive step and
    /// propagates factorisation errors.
    pub fn system_for(
        &self,
        time_step: f64,
        method: IntegrationMethod,
    ) -> Result<Arc<CompanionSystem>> {
        if time_step <= 0.0 || !time_step.is_finite() {
            return Err(OperaError::InvalidOptions {
                reason: format!("companion step must be positive, got {time_step}"),
            });
        }
        let key = (time_step.to_bits(), method);
        let mut cache = match self.cache.lock() {
            Ok(cache) => cache,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            let entry = cache.remove(pos);
            cache.insert(0, entry);
            return Ok(Arc::clone(&cache[0].1));
        }
        let c_over_h = self.c.scaled(companion_scale(method, time_step));
        let companion = self.g.add_scaled(&c_over_h, 1.0)?;
        let factor = if self.use_lu {
            MatrixFactor::lu(&companion)?
        } else if let Some(symbolic) = &self.symbolic {
            match symbolic.factor_numeric(&companion) {
                Ok(factor) => MatrixFactor::Cholesky(factor),
                // Mirror cholesky_or_lu: numerically indefinite companions
                // fall back to a full LU for this step size.
                Err(_) => MatrixFactor::lu(&companion)?,
            }
        } else {
            MatrixFactor::cholesky_or_lu(&companion)?
        };
        self.refactorizations.incr();
        let system = Arc::new(CompanionSystem {
            factor,
            c_over_h,
            g: self.g.clone(),
            method,
            h: time_step,
        });
        cache.insert(0, (key, Arc::clone(&system)));
        cache.truncate(FAMILY_CACHE_CAPACITY);
        Ok(system)
    }
}

/// Runs a fixed-step transient analysis of `G·v + C·dv/dt = u(t)`.
///
/// The initial condition is the DC solution `G·v(0) = u(0)` (the paper starts
/// its transient analyses from the quiescent operating point).
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options and propagates
/// factorisation errors.
///
/// # Example
///
/// ```
/// use opera::transient::{solve_transient, TransientOptions};
/// use opera_grid::GridSpec;
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(120).build()?;
/// let opts = TransientOptions::new(0.05e-9, 1.0e-9);
/// let sol = solve_transient(
///     &grid.conductance_matrix(),
///     &grid.capacitance_matrix(),
///     |t| grid.excitation(t),
///     &opts,
/// )?;
/// let (drop, _, _) = sol.worst_drop(grid.vdd());
/// assert!(drop >= 0.0 && drop < 0.12 * grid.vdd());
/// # Ok(())
/// # }
/// ```
pub fn solve_transient(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64>,
    options: &TransientOptions,
) -> Result<TransientSolution> {
    options.validate()?;
    let times = options.time_points();
    let n = g.nrows();
    // DC initial condition.
    let u0 = excitation(0.0);
    let v0 = MatrixFactor::cholesky_or_lu(g)
        .map_err(OperaError::from)?
        .solve(&u0);
    let companion = CompanionSystem::new(g, c, options.time_step, options.method)?;
    // The whole output panel is allocated up front; the stepping loop then
    // writes each new state straight into its output column (double-buffering
    // the state through `split_at_mut` on the contiguous storage) with
    // workspace-borrowed solver scratch, so the steady-state loop performs no
    // per-step solver allocations.
    let mut states = Panel::zeros(n, times.len());
    states.col_mut(0).copy_from_slice(&v0);
    let mut ws = SolveWorkspace::with_capacity(n);
    let mut u_prev = u0;
    let two_stage = options.method == IntegrationMethod::TrBdf2;
    // TR-BDF2 intermediate stage (allocated outside the hot loop; unused by
    // the single-stage schemes).
    let mut stage = vec![0.0; if two_stage { n } else { 0 }];
    // The span lives outside the hot region (its guard is not allocation-free
    // when tracing is enabled); inside it only counter increments are allowed.
    let stepping = opera_trace::span("transient.stepping");
    // lint: hot(transient-stepping-loop)
    for k in 1..times.len() {
        opera_trace::count("transient.steps", 1);
        let u_next = excitation(times[k]);
        let (done, rest) = states.data_mut().split_at_mut(k * n);
        let v_prev = &done[(k - 1) * n..];
        let out = &mut rest[..n];
        if two_stage {
            let t_prev = times[k - 1];
            let u_mid = excitation(t_prev + TR_BDF2_GAMMA * (times[k] - t_prev));
            companion.step_tr_bdf2_into(v_prev, &u_prev, &u_mid, &u_next, &mut stage, out, &mut ws);
        } else {
            companion.step_into(v_prev, &u_prev, &u_next, out, &mut ws);
        }
        u_prev = u_next;
    }
    // lint: end-hot
    drop(stepping);
    Ok(TransientSolution::new(times, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use opera_sparse::TripletMatrix;

    /// Single RC node driven through a resistor from a 1 V source:
    /// v(t) = 1 − exp(−t/RC) with R = 1 Ω, C = 1 F (so τ = 1 s).
    fn rc_circuit() -> (CsrMatrix, CsrMatrix) {
        let mut g = TripletMatrix::new(1, 1);
        g.push(0, 0, 1.0);
        let mut c = TripletMatrix::new(1, 1);
        c.push(0, 0, 1.0);
        (g.to_csr(), c.to_csr())
    }

    #[test]
    fn rc_step_response_matches_analytic_solution() {
        let (g, c) = rc_circuit();
        // Excitation: 0 at t = 0 (so DC start at 0), then 1 A injected.
        let u = |t: f64| vec![if t > 0.0 { 1.0 } else { 0.0 }];
        let opts = TransientOptions {
            time_step: 0.001,
            end_time: 2.0,
            method: IntegrationMethod::Trapezoidal,
        };
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        let k = sol.times.len() - 1;
        let expected = 1.0 - (-sol.times[k]).exp();
        assert!(
            (sol.state_at(k)[0] - expected).abs() < 1e-3,
            "got {}, expected {expected}",
            sol.state_at(k)[0]
        );
    }

    #[test]
    fn backward_euler_and_trapezoidal_converge_to_same_answer() {
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![if t > 0.0 { 1.0 } else { 0.0 }];
        let mut results = Vec::new();
        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
        ] {
            let opts = TransientOptions {
                time_step: 0.0005,
                end_time: 1.0,
                method,
            };
            let sol = solve_transient(&g, &c, u, &opts).unwrap();
            results.push(sol.state_at(sol.len() - 1)[0]);
        }
        assert!((results[0] - results[1]).abs() < 2e-3);
    }

    #[test]
    fn dc_start_means_first_point_solves_g_v_eq_u0() {
        let (g, c) = rc_circuit();
        let u = |_t: f64| vec![0.5];
        let opts = TransientOptions::new(0.1, 1.0);
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        assert!((sol.state_at(0)[0] - 0.5).abs() < 1e-12);
        // Constant excitation keeps the solution at the DC value.
        assert!((sol.state_at(sol.len() - 1)[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn grid_transient_drop_stays_below_calibration_target() {
        let grid = opera_grid::GridSpec::small_test(200).build().unwrap();
        let opts = TransientOptions::new(0.05e-9, 1.0e-9);
        let sol = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &opts,
        )
        .unwrap();
        let (drop, _, _) = sol.worst_drop(grid.vdd());
        // The generator calibrates the *DC* peak drop to 8 % of VDD; the
        // transient drop with capacitive smoothing must not exceed it (plus
        // slack for discretisation).
        assert!(drop <= 0.09 * grid.vdd(), "drop {drop}");
        assert!(drop > 0.0);
    }

    #[test]
    fn trapezoidal_is_more_accurate_than_backward_euler_at_equal_step() {
        // Second-order vs first-order accuracy on a *smooth* excitation
        // (a raised-cosine ramp); the reference is a very fine trapezoidal run.
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![0.5 * (1.0 - (std::f64::consts::PI * t).cos())];
        let end = 1.0;
        let value_at_end = |method: IntegrationMethod, step: f64| {
            let sol = solve_transient(
                &g,
                &c,
                u,
                &TransientOptions {
                    time_step: step,
                    end_time: end,
                    method,
                },
            )
            .unwrap();
            sol.state_at(sol.len() - 1)[0]
        };
        let reference = value_at_end(IntegrationMethod::Trapezoidal, 0.001);
        let be_error = (value_at_end(IntegrationMethod::BackwardEuler, 0.05) - reference).abs();
        let trap_error = (value_at_end(IntegrationMethod::Trapezoidal, 0.05) - reference).abs();
        assert!(
            trap_error < 0.2 * be_error,
            "trapezoidal ({trap_error}) should clearly beat backward Euler ({be_error})"
        );
    }

    #[test]
    fn companion_system_exposes_its_step_and_solves_consistently() {
        let (g, c) = rc_circuit();
        let companion =
            CompanionSystem::new(&g, &c, 0.1, IntegrationMethod::BackwardEuler).unwrap();
        assert_eq!(companion.time_step(), 0.1);
        // Solving the companion system directly must satisfy (G + C/h) x = b.
        let b = vec![3.0];
        let x = companion.solve(&b);
        assert!((11.0 * x[0] - 3.0).abs() < 1e-12); // G + C/h = 1 + 10
    }

    #[test]
    fn node_waveform_extracts_single_node_history() {
        let (g, c) = rc_circuit();
        let u = |_t: f64| vec![1.0];
        let opts = TransientOptions::new(0.25, 1.0);
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        assert_eq!(sol.node_waveform(0).len(), sol.len());
        assert!(!sol.is_empty());
        assert_eq!(sol.node_count(), 1);
    }

    /// The strided panel gather behind `node_waveform` must reproduce the
    /// naive per-time-point walk bit for bit, for every node of a multi-node
    /// system.
    #[test]
    fn node_waveform_is_bit_identical_to_the_per_step_walk() {
        let grid = opera_grid::GridSpec::small_test(60).build().unwrap();
        let opts = TransientOptions::new(0.1e-9, 1.0e-9);
        let sol = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &opts,
        )
        .unwrap();
        for node in 0..sol.node_count() {
            let waveform = sol.node_waveform(node);
            assert_eq!(waveform.len(), sol.len());
            for (k, &v) in waveform.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    sol.state_at(k)[node].to_bits(),
                    "node {node} diverged at time index {k}"
                );
            }
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        assert!(TransientOptions::new(0.0, 1.0).validate().is_err());
        assert!(TransientOptions::new(1.0, 0.0).validate().is_err());
        assert!(TransientOptions::new(2.0, 1.0).validate().is_err());
        assert!(TransientOptions::new(0.1, 1.0).validate().is_ok());
        assert_eq!(TransientOptions::new(0.25, 1.0).time_points().len(), 5);
    }

    #[test]
    fn time_points_land_exactly_on_end_time() {
        // 0.1 is not exactly representable: accumulating (or multiplying out)
        // ten steps of it misses 1e-9 in the last bits. The grid must still
        // end bit-exactly on end_time.
        for (dt, end) in [
            (1e-10, 1e-9),
            (0.1, 0.7),
            (0.3, 0.9),
            (0.05e-9, 1.0e-9),
            (0.25, 1.0),
        ] {
            let pts = TransientOptions::new(dt, end).time_points();
            assert_eq!(pts[0], 0.0);
            let last = *pts.last().unwrap();
            assert_eq!(
                last.to_bits(),
                f64::to_bits(end),
                "grid for dt={dt}, end={end} ends at {last:e}, not {end:e}"
            );
            // Interior points are the drift-free k·h form.
            for (k, &t) in pts.iter().enumerate().take(pts.len() - 1) {
                assert_eq!(t.to_bits(), (k as f64 * dt).to_bits());
            }
        }
    }

    #[test]
    fn tr_bdf2_holds_steady_state_exactly() {
        let (g, c) = rc_circuit();
        let u = |_t: f64| vec![0.5];
        let opts = TransientOptions {
            time_step: 0.1,
            end_time: 1.0,
            method: IntegrationMethod::TrBdf2,
        };
        let sol = solve_transient(&g, &c, u, &opts).unwrap();
        for v in sol.states().columns() {
            assert!(
                (v[0] - 0.5).abs() < 1e-12,
                "steady state drifted to {}",
                v[0]
            );
        }
    }

    #[test]
    fn tr_bdf2_is_second_order_on_smooth_excitation() {
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![0.5 * (1.0 - (std::f64::consts::PI * t).cos())];
        let value_at_end = |method: IntegrationMethod, step: f64| {
            let sol = solve_transient(
                &g,
                &c,
                u,
                &TransientOptions {
                    time_step: step,
                    end_time: 1.0,
                    method,
                },
            )
            .unwrap();
            sol.state_at(sol.len() - 1)[0]
        };
        let reference = value_at_end(IntegrationMethod::Trapezoidal, 0.0005);
        let coarse = (value_at_end(IntegrationMethod::TrBdf2, 0.05) - reference).abs();
        let fine = (value_at_end(IntegrationMethod::TrBdf2, 0.025) - reference).abs();
        let be = (value_at_end(IntegrationMethod::BackwardEuler, 0.05) - reference).abs();
        // Halving the step must cut the error by ~4 (order 2), and the
        // composite must clearly beat first-order backward Euler.
        assert!(fine < 0.35 * coarse, "coarse {coarse:e}, fine {fine:e}");
        assert!(coarse < 0.25 * be, "tr-bdf2 {coarse:e} vs BE {be:e}");
    }

    #[test]
    fn companion_family_matches_one_shot_factorisation_bitwise() {
        let grid = opera_grid::GridSpec::small_test(150).build().unwrap();
        let g = grid.conductance_matrix();
        let c = grid.capacitance_matrix();
        let family = CompanionFamily::new(&g, &c).unwrap();
        let u0 = grid.excitation(0.0);
        let u1 = grid.excitation(0.05e-9);
        let v0 = MatrixFactor::cholesky_or_lu(&g).unwrap().solve(&u0);
        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
        ] {
            let one_shot = CompanionSystem::new(&g, &c, 0.05e-9, method).unwrap();
            let shared = family.system_for(0.05e-9, method).unwrap();
            let a = one_shot.step(&v0, &u0, &u1);
            let b = shared.step(&v0, &u0, &u1);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "family factor diverged");
            }
        }
    }

    #[test]
    fn companion_family_reuses_one_symbolic_analysis_and_caches_factors() {
        let (g, c) = rc_circuit();
        let family = CompanionFamily::new(&g, &c).unwrap();
        assert_eq!(family.symbolic_analysis_count(), 1);
        assert_eq!(family.refactorization_count(), 0);
        let first = family.system_for(0.1, IntegrationMethod::TrBdf2).unwrap();
        assert_eq!(family.refactorization_count(), 1);
        // Cache hit: same (h, method) pair returns the same factor object.
        let again = family.system_for(0.1, IntegrationMethod::TrBdf2).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        assert_eq!(family.refactorization_count(), 1);
        // A new step size refactors numerics only — the analysis count stays 1.
        family.system_for(0.05, IntegrationMethod::TrBdf2).unwrap();
        assert_eq!(family.refactorization_count(), 2);
        assert_eq!(family.symbolic_analysis_count(), 1);
        // The cache is bounded: far more step sizes than the capacity...
        for k in 1..=(2 * FAMILY_CACHE_CAPACITY) {
            family
                .system_for(0.1 / k as f64, IntegrationMethod::TrBdf2)
                .unwrap();
        }
        assert!(family.cached_systems() <= FAMILY_CACHE_CAPACITY);
        // ...and eviction is least-recently-used: the newest entry survives.
        let newest = 0.1 / (2 * FAMILY_CACHE_CAPACITY) as f64;
        let before = family.refactorization_count();
        family
            .system_for(newest, IntegrationMethod::TrBdf2)
            .unwrap();
        assert_eq!(family.refactorization_count(), before);
        assert!(family.system_for(-1.0, IntegrationMethod::TrBdf2).is_err());
    }

    #[test]
    fn tr_bdf2_step_wrapper_matches_step_into_and_panel_path() {
        let grid = opera_grid::GridSpec::small_test(80).build().unwrap();
        let g = grid.conductance_matrix();
        let c = grid.capacitance_matrix();
        let n = g.nrows();
        let sys = CompanionSystem::new(&g, &c, 0.05e-9, IntegrationMethod::TrBdf2).unwrap();
        let u0 = grid.excitation(0.0);
        let u_mid = grid.excitation(TR_BDF2_GAMMA * 0.05e-9);
        let u1 = grid.excitation(0.05e-9);
        let v0 = MatrixFactor::cholesky_or_lu(&g).unwrap().solve(&u0);
        let scalar = sys.step_tr_bdf2(&v0, &u0, &u_mid, &u1);
        // Panel with two identical columns: both must equal the scalar step
        // bit for bit.
        let mut ws = SolveWorkspace::with_capacity(2 * n);
        let fill = |src: &[f64]| {
            let mut p = Panel::zeros(n, 2);
            p.col_mut(0).copy_from_slice(src);
            p.col_mut(1).copy_from_slice(src);
            p
        };
        let (vp, up0, upm, up1) = (fill(&v0), fill(&u0), fill(&u_mid), fill(&u1));
        let mut stage = Panel::zeros(n, 2);
        let mut out = Panel::zeros(n, 2);
        sys.step_tr_bdf2_panel_into(&vp, &up0, &upm, &up1, &mut stage, &mut out, &mut ws);
        for j in 0..2 {
            for (x, y) in scalar.iter().zip(out.col(j)) {
                assert_eq!(x.to_bits(), y.to_bits(), "panel column {j} diverged");
            }
        }
    }

    #[test]
    fn tr_bdf2_error_estimate_shrinks_with_the_step() {
        let (g, c) = rc_circuit();
        let u = |t: f64| vec![0.5 * (1.0 - (std::f64::consts::PI * t).cos())];
        let norm_at = |h: f64| {
            let sys = CompanionSystem::new(&g, &c, h, IntegrationMethod::TrBdf2).unwrap();
            let u0 = u(0.0);
            let um = u(TR_BDF2_GAMMA * h);
            let u1 = u(h);
            let v0 = vec![0.0];
            let mut stage = vec![0.0];
            let mut next = vec![0.0];
            let mut ws = SolveWorkspace::new();
            sys.step_tr_bdf2_into(&v0, &u0, &um, &u1, &mut stage, &mut next, &mut ws);
            let mut err = vec![0.0];
            sys.tr_bdf2_error_into(&v0, &stage, &next, &u0, &um, &u1, &mut err, &mut ws);
            err[0].abs()
        };
        let coarse = norm_at(0.2);
        let fine = norm_at(0.1);
        // The local error of an order-2 step is O(h³): halving the step must
        // shrink the estimate by far more than half.
        assert!(fine < 0.3 * coarse, "coarse {coarse:e}, fine {fine:e}");
    }
}
