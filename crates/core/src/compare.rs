//! OPERA vs Monte Carlo accuracy metrics (the error columns of Table 1).
//!
//! The paper reports, per grid, the average and maximum percentage errors of
//! the mean (µ) and standard deviation (σ) of the voltage response "for data
//! obtained from simulation across all nodes and all time points". We use:
//!
//! * mean error: `|µ_OPERA − µ_MC| / VDD × 100` — the mean voltages are within
//!   a few percent of VDD of each other, so normalising by VDD reproduces the
//!   order of magnitude (hundredths of a percent) of the paper's µ column;
//! * σ error: `|σ_OPERA − σ_MC| / σ_MC × 100`, restricted to nodes/times where
//!   `σ_MC` is significant (above a small fraction of its maximum) so the
//!   relative error is well defined.

use crate::monte_carlo::MonteCarloResult;
use crate::stochastic::StochasticSolution;

/// Aggregate accuracy of an OPERA run against a Monte Carlo reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySummary {
    /// Average error in the mean voltage, as a percentage of VDD.
    pub avg_mean_error_percent: f64,
    /// Maximum error in the mean voltage, as a percentage of VDD.
    pub max_mean_error_percent: f64,
    /// Average relative error in the standard deviation, in percent.
    pub avg_std_error_percent: f64,
    /// Maximum relative error in the standard deviation, in percent.
    pub max_std_error_percent: f64,
    /// Number of (node, time) pairs contributing to the σ statistics.
    pub sigma_comparisons: usize,
}

/// Compares an OPERA solution with a Monte Carlo result over all nodes and
/// time points.
///
/// # Panics
///
/// Panics if the two results do not share the same time axis and node count.
pub fn compare(opera: &StochasticSolution, mc: &MonteCarloResult, vdd: f64) -> AccuracySummary {
    assert_eq!(
        opera.times().len(),
        mc.times.len(),
        "OPERA and Monte Carlo use different time axes"
    );
    assert_eq!(
        opera.node_count(),
        mc.mean[0].len(),
        "OPERA and Monte Carlo use different node counts"
    );
    let times = opera.times().len();
    let nodes = opera.node_count();

    // Threshold below which σ_MC is considered too small for a relative error.
    let sigma_max = mc
        .variance
        .iter()
        .flat_map(|row| row.iter())
        .fold(0.0f64, |acc, &v| acc.max(v))
        .sqrt();
    let sigma_floor = 0.05 * sigma_max;

    let mut sum_mean = 0.0;
    let mut max_mean = 0.0f64;
    let mut count_mean = 0usize;
    let mut sum_std = 0.0;
    let mut max_std = 0.0f64;
    let mut count_std = 0usize;

    for k in 0..times {
        for n in 0..nodes {
            let mean_err = 100.0 * (opera.mean_at(k, n) - mc.mean[k][n]).abs() / vdd;
            sum_mean += mean_err;
            max_mean = max_mean.max(mean_err);
            count_mean += 1;

            let sigma_mc = mc.variance[k][n].sqrt();
            if sigma_mc > sigma_floor && sigma_floor > 0.0 {
                let sigma_opera = opera.std_dev_at(k, n);
                let err = 100.0 * (sigma_opera - sigma_mc).abs() / sigma_mc;
                sum_std += err;
                max_std = max_std.max(err);
                count_std += 1;
            }
        }
    }
    AccuracySummary {
        avg_mean_error_percent: sum_mean / count_mean.max(1) as f64,
        max_mean_error_percent: max_mean,
        avg_std_error_percent: sum_std / count_std.max(1) as f64,
        max_std_error_percent: max_std,
        sigma_comparisons: count_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{run, MonteCarloOptions};
    use crate::stochastic::{solve, OperaOptions};
    use crate::transient::TransientOptions;
    use opera_grid::GridSpec;
    use opera_variation::{StochasticGridModel, VariationSpec};

    #[test]
    fn opera_agrees_with_monte_carlo_within_table1_tolerances() {
        let grid = GridSpec::small_test(100).with_seed(31).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let opera = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let mc = run(&model, &MonteCarloOptions::new(300, 7, topts)).unwrap();
        let summary = compare(&opera, &mc, grid.vdd());
        // The paper reports µ errors of hundredths of a percent and σ errors
        // of a few percent (with 1000 samples); with 300 samples the Monte
        // Carlo noise dominates, so accept a slightly looser bound.
        assert!(
            summary.avg_mean_error_percent < 0.5,
            "avg µ error {}",
            summary.avg_mean_error_percent
        );
        assert!(summary.max_mean_error_percent < 2.0);
        assert!(
            summary.avg_std_error_percent < 25.0,
            "avg σ error {}",
            summary.avg_std_error_percent
        );
        assert!(summary.sigma_comparisons > 0);
    }

    #[test]
    fn identical_statistics_give_zero_error() {
        // Build a Monte Carlo result that copies the OPERA statistics.
        let grid = GridSpec::small_test(60).with_seed(1).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let topts = TransientOptions::new(0.25e-9, 0.5e-9);
        let opera = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let times = opera.times().to_vec();
        let mean: Vec<Vec<f64>> = (0..times.len())
            .map(|k| {
                (0..opera.node_count())
                    .map(|n| opera.mean_at(k, n))
                    .collect()
            })
            .collect();
        let variance: Vec<Vec<f64>> = (0..times.len())
            .map(|k| {
                (0..opera.node_count())
                    .map(|n| opera.variance_at(k, n))
                    .collect()
            })
            .collect();
        let mc = MonteCarloResult {
            times,
            mean,
            variance,
            probe_nodes: vec![],
            probe_traces: vec![],
            samples: 1,
        };
        let summary = compare(&opera, &mc, grid.vdd());
        assert!(summary.avg_mean_error_percent < 1e-12);
        assert!(summary.max_std_error_percent < 1e-9);
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let grid = GridSpec::small_test(60).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        let opera = solve(
            &model,
            &OperaOptions::order2(TransientOptions::new(0.25e-9, 0.5e-9)),
        )
        .unwrap();
        let mc = MonteCarloResult {
            times: vec![0.0],
            mean: vec![vec![0.0; 3]],
            variance: vec![vec![0.0; 3]],
            probe_nodes: vec![],
            probe_traces: vec![],
            samples: 1,
        };
        let _ = compare(&opera, &mc, 1.2);
    }
}
