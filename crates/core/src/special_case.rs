//! The special case of Section 5.1: variations only in the excitation.
//!
//! When only the right-hand side of the MNA equation is stochastic (for
//! example leakage currents driven by per-region threshold-voltage
//! variations), projecting onto the basis decouples the Galerkin system into
//! `N + 1` *independent* deterministic systems
//!
//! ```text
//! (G + sC) x_j(s) = U_j(s),    j = 0 … N            (paper Eq. 27)
//! ```
//!
//! so a single factorisation of the nominal companion matrix is shared by all
//! right-hand sides. Unlike the bounds of prior work, the expansion gives the
//! exact mean, variance and higher moments of the response.
//!
//! The `N + 1` solves are independent and run in parallel on the installed
//! [`Parallelism`](crate::parallel::Parallelism) pool; the solver is fully
//! deterministic, so the result does not depend on the thread count.

use opera_grid::PowerGrid;
use opera_pce::{GalerkinCoupling, OrthogonalBasis};
use opera_sparse::MatrixFactor;
use opera_variation::LeakageModel;
use rayon::prelude::*;

use crate::stochastic::StochasticSolution;
use crate::transient::{CompanionSystem, TransientOptions};
use crate::{OperaError, Result};

/// Options for the special-case (RHS-only variation) solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecialCaseOptions {
    /// Truncation order of the expansion (the paper uses 2 in its example).
    pub order: u32,
    /// Transient analysis options.
    pub transient: TransientOptions,
}

impl SpecialCaseOptions {
    /// Order-2 options, matching the paper's example.
    pub fn order2(transient: TransientOptions) -> Self {
        SpecialCaseOptions {
            order: 2,
            transient,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for order 0 or invalid
    /// transient options.
    pub fn validate(&self) -> Result<()> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        self.transient.validate()
    }
}

/// Solves the RHS-only variation problem: switching currents are
/// deterministic, leakage currents are lognormal with per-region `Vth`
/// variations.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for inconsistent inputs and
/// propagates factorisation errors.
///
/// # Example
///
/// ```
/// use opera::special_case::{solve_leakage, SpecialCaseOptions};
/// use opera::transient::TransientOptions;
/// use opera_grid::GridSpec;
/// use opera_variation::LeakageModel;
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(100).build()?;
/// let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 2.0e-6, 0.03, 23.0)?;
/// let options = SpecialCaseOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
/// let solution = solve_leakage(&grid, &leakage, &options)?;
/// assert_eq!(solution.basis_size(), 6);
/// # Ok(())
/// # }
/// ```
pub fn solve_leakage(
    grid: &PowerGrid,
    leakage: &LeakageModel,
    options: &SpecialCaseOptions,
) -> Result<StochasticSolution> {
    options.validate()?;
    if leakage.node_count() != grid.node_count() {
        return Err(OperaError::InvalidOptions {
            reason: format!(
                "leakage model covers {} nodes but the grid has {}",
                leakage.node_count(),
                grid.node_count()
            ),
        });
    }
    let basis = OrthogonalBasis::total_order_mixed(
        leakage.families(),
        leakage.region_count(),
        options.order,
    )?;
    let coupling = GalerkinCoupling::new(&basis)?;
    // Projected leakage injections: inj[j][node] (amperes drawn).
    let injections = leakage.projected_injections(&basis, &coupling)?;

    let g = grid.conductance_matrix();
    let c = grid.capacitance_matrix();
    let times = options.transient.time_points();
    let n = grid.node_count();
    let size = basis.len();

    // Right-hand side for coefficient j at time t:
    //   j = 0 : nominal switching excitation minus the mean leakage,
    //   j > 0 : minus the j-th leakage coefficient (time independent).
    let rhs_at = |j: usize, t: f64| -> Vec<f64> {
        if j == 0 {
            let mut u = grid.excitation(t);
            for (u_n, inj) in u.iter_mut().zip(&injections[0]) {
                *u_n -= inj;
            }
            u
        } else {
            injections[j].iter().map(|&inj| -inj).collect()
        }
    };

    // One factorisation of G for the DC start and one of the companion matrix
    // for the time stepping — shared by all N + 1 systems (the whole point of
    // the special case).
    let dc_factor = MatrixFactor::cholesky_or_lu(&g)?;
    let companion = CompanionSystem::new(
        &g,
        &c,
        options.transient.time_step,
        options.transient.method,
    )?;

    // The N + 1 systems are independent, so they run on the installed rayon
    // pool; the shared factors are only read. Each worker produces the full
    // time series of its coefficient, per_j[j][k][node].
    let per_j: Vec<Vec<Vec<f64>>> = (0..size)
        .into_par_iter()
        .map(|j| {
            let u0 = rhs_at(j, 0.0);
            let mut state = dc_factor.solve(&u0);
            let mut series = Vec::with_capacity(times.len());
            series.push(state.clone());
            let mut u_prev = u0;
            for &t in &times[1..] {
                let u_next = rhs_at(j, t);
                state = companion.step(&state, &u_prev, &u_next);
                series.push(state.clone());
                u_prev = u_next;
            }
            series
        })
        .collect();

    // Transpose into the coefficients[k][j][node] layout the solution expects.
    let mut coefficients = vec![vec![Vec::new(); size]; times.len()];
    for (j, series) in per_j.into_iter().enumerate() {
        for (k, state) in series.into_iter().enumerate() {
            coefficients[k][j] = state;
        }
    }
    Ok(StochasticSolution::new(basis, times, n, coefficients))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{run_leakage, MonteCarloOptions};
    use opera_grid::GridSpec;

    fn setup() -> (opera_grid::PowerGrid, LeakageModel) {
        let grid = GridSpec::small_test(90).with_seed(13).build().unwrap();
        // Sizeable leakage so its variation is visible next to the switching
        // currents: a few percent of the block current budget per node.
        let leakage =
            LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0).unwrap();
        (grid, leakage)
    }

    #[test]
    fn special_case_matches_leakage_monte_carlo() {
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        let mc = run_leakage(&grid, &leakage, &MonteCarloOptions::new(300, 2, topts)).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        let mean_err = (sol.mean_at(k, node) - mc.mean[k][node]).abs() / grid.vdd();
        assert!(mean_err < 2e-3, "mean error {mean_err}");
        let s_opera = sol.std_dev_at(k, node);
        let s_mc = mc.std_dev_at(k, node);
        assert!(s_mc > 0.0);
        assert!(
            (s_opera - s_mc).abs() / s_mc < 0.3,
            "sigma mismatch {s_opera} vs {s_mc}"
        );
    }

    #[test]
    fn mean_reflects_lognormal_leakage_bias() {
        // The mean response must account for E[exp(−sξ)] > exp(0): the mean
        // drop is larger than the drop at the nominal (median) leakage.
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.5e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        // Zero-variance model with the same median leakage.
        let no_var = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.0, 23.0).unwrap();
        let sol0 = solve_leakage(&grid, &no_var, &SpecialCaseOptions::order2(topts)).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        assert!(sol.mean_at(k, node) < sol0.mean_at(k, node));
        // And the zero-variance case has (numerically) zero spread.
        assert!(sol0.std_dev_at(k, node) < 1e-12);
    }

    #[test]
    fn region_variables_affect_their_own_region_most() {
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.5e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        let k = sol.times().len() - 1;
        // A node deep in region 0 must load mostly on ξ₁; one in region 1 on ξ₂.
        let node_r0 = (0..grid.node_count())
            .find(|&n| leakage.region_of(n) == 0)
            .unwrap();
        let node_r1 = (0..grid.node_count())
            .rev()
            .find(|&n| leakage.region_of(n) == 1)
            .unwrap();
        let xi1 = sol.basis().linear_index(0).unwrap();
        let xi2 = sol.basis().linear_index(1).unwrap();
        assert!(sol.coefficient(k, xi1, node_r0).abs() > sol.coefficient(k, xi2, node_r0).abs());
        assert!(sol.coefficient(k, xi2, node_r1).abs() > sol.coefficient(k, xi1, node_r1).abs());
    }

    #[test]
    fn mismatched_node_counts_are_rejected() {
        let (grid, _) = setup();
        let wrong =
            LeakageModel::uniform_slices(grid.node_count() + 5, 2, 1e-6, 0.03, 23.0).unwrap();
        let opts = SpecialCaseOptions::order2(TransientOptions::new(0.2e-9, 1.0e-9));
        assert!(matches!(
            solve_leakage(&grid, &wrong, &opts),
            Err(OperaError::InvalidOptions { .. })
        ));
        let bad_order = SpecialCaseOptions {
            order: 0,
            transient: TransientOptions::new(0.2e-9, 1.0e-9),
        };
        let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 1e-6, 0.03, 23.0).unwrap();
        assert!(solve_leakage(&grid, &leakage, &bad_order).is_err());
    }
}
