//! The special case of Section 5.1: variations only in the excitation.
//!
//! When only the right-hand side of the MNA equation is stochastic (for
//! example leakage currents driven by per-region threshold-voltage
//! variations), projecting onto the basis decouples the Galerkin system into
//! `N + 1` *independent* deterministic systems
//!
//! ```text
//! (G + sC) x_j(s) = U_j(s),    j = 0 … N            (paper Eq. 27)
//! ```
//!
//! so a single factorisation of the nominal companion matrix is shared by all
//! right-hand sides. Unlike the bounds of prior work, the expansion gives the
//! exact mean, variance and higher moments of the response.
//!
//! This is the multi-RHS hot loop of the whole system: at every time step all
//! `N + 1` chaos-coefficient excitation columns form one dense
//! [`opera_sparse::Panel`] and advance through a **single blocked
//! panel solve** of the shared companion factor ([`solve_leakage`]), instead
//! of `N + 1` sequential scalar solves. The per-column path is kept as
//! [`solve_leakage_reference`] — it fans the independent columns out over the
//! installed [`Parallelism`](crate::parallel::Parallelism) pool — and both
//! paths produce bit-identical coefficients (each panel column performs
//! exactly the scalar arithmetic), which `perf_report` uses to measure the
//! panel speedup honestly.

use opera_grid::PowerGrid;
use opera_pce::{GalerkinCoupling, OrthogonalBasis};
use opera_sparse::{MatrixFactor, Panel, SolveWorkspace};
use opera_variation::LeakageModel;
use rayon::prelude::*;

use crate::stochastic::StochasticSolution;
use crate::transient::{CompanionSystem, IntegrationMethod, TransientOptions, TR_BDF2_GAMMA};
use crate::{OperaError, Result};

/// Options for the special-case (RHS-only variation) solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecialCaseOptions {
    /// Truncation order of the expansion (the paper uses 2 in its example).
    pub order: u32,
    /// Transient analysis options.
    pub transient: TransientOptions,
}

impl SpecialCaseOptions {
    /// Order-2 options, matching the paper's example.
    pub fn order2(transient: TransientOptions) -> Self {
        SpecialCaseOptions {
            order: 2,
            transient,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for order 0 or invalid
    /// transient options.
    pub fn validate(&self) -> Result<()> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        self.transient.validate()
    }
}

/// Solves the RHS-only variation problem: switching currents are
/// deterministic, leakage currents are lognormal with per-region `Vth`
/// variations.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for inconsistent inputs and
/// propagates factorisation errors.
///
/// # Example
///
/// ```
/// use opera::special_case::{solve_leakage, SpecialCaseOptions};
/// use opera::transient::TransientOptions;
/// use opera_grid::GridSpec;
/// use opera_variation::LeakageModel;
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(100).build()?;
/// let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 2.0e-6, 0.03, 23.0)?;
/// let options = SpecialCaseOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
/// let solution = solve_leakage(&grid, &leakage, &options)?;
/// assert_eq!(solution.basis_size(), 6);
/// # Ok(())
/// # }
/// ```
pub fn solve_leakage(
    grid: &PowerGrid,
    leakage: &LeakageModel,
    options: &SpecialCaseOptions,
) -> Result<StochasticSolution> {
    let sys = LeakageSystem::build(grid, leakage, options)?;
    let (n, size) = (sys.n, sys.size);
    let times = &sys.times;

    // ---- Panel transient: the N + 1 chaos-coefficient columns advance in
    // lock step, one blocked multi-RHS solve per time point. Only the j = 0
    // column depends on time; the leakage-coefficient columns are constant.
    let mut ws = SolveWorkspace::with_capacity(n * size);
    let mut u_prev = Panel::zeros(n, size);
    for j in 0..size {
        u_prev.col_mut(j).copy_from_slice(&sys.rhs_at(j, 0.0));
    }
    let mut state = Panel::zeros(n, size);
    state.data_mut().copy_from_slice(u_prev.data());
    sys.dc_factor.solve_panel(&mut state, &mut ws);

    let mut coefficients: Vec<Vec<Vec<f64>>> = Vec::with_capacity(times.len());
    coefficients.push(state.columns().map(<[f64]>::to_vec).collect());

    let mut u_next = u_prev.clone();
    let mut next = Panel::zeros(n, size);
    let two_stage = options.transient.method == IntegrationMethod::TrBdf2;
    // TR-BDF2 mid-stage panels: only column 0 is time-dependent, so the
    // leakage-coefficient columns of `u_mid` are filled once up front.
    let cols_mid = if two_stage { size } else { 0 };
    let mut u_mid = if two_stage {
        u_prev.clone()
    } else {
        Panel::zeros(n, cols_mid)
    };
    let mut stage = Panel::zeros(n, cols_mid);
    let mut t_prev = times[0];
    for &t in &times[1..] {
        u_next.col_mut(0).copy_from_slice(&sys.rhs_at(0, t));
        if two_stage {
            let tm = t_prev + TR_BDF2_GAMMA * (t - t_prev);
            u_mid.col_mut(0).copy_from_slice(&sys.rhs_at(0, tm));
            sys.companion.step_tr_bdf2_panel_into(
                &state, &u_prev, &u_mid, &u_next, &mut stage, &mut next, &mut ws,
            );
        } else {
            sys.companion
                .step_panel_into(&state, &u_prev, &u_next, &mut next, &mut ws);
        }
        coefficients.push(next.columns().map(<[f64]>::to_vec).collect());
        std::mem::swap(&mut state, &mut next);
        std::mem::swap(&mut u_prev, &mut u_next);
        t_prev = t;
    }
    Ok(StochasticSolution::new(
        sys.basis,
        sys.times,
        n,
        coefficients,
    ))
}

/// Per-column reference implementation of [`solve_leakage`]: the `N + 1`
/// independent systems are solved one right-hand side at a time, fanned out
/// over the installed [`Parallelism`](crate::parallel::Parallelism) pool.
///
/// This is the pre-panel hot path, kept so the panel speedup can be measured
/// against it (`perf_report`'s `galerkin_multi_rhs` section) and so property
/// tests can assert the two paths stay **bit-identical**. Prefer
/// [`solve_leakage`] everywhere else.
///
/// # Errors
///
/// Same as [`solve_leakage`].
pub fn solve_leakage_reference(
    grid: &PowerGrid,
    leakage: &LeakageModel,
    options: &SpecialCaseOptions,
) -> Result<StochasticSolution> {
    let sys = LeakageSystem::build(grid, leakage, options)?;
    let (n, size) = (sys.n, sys.size);
    let times = &sys.times;

    // The N + 1 systems are independent, so they run on the installed rayon
    // pool; the shared factors are only read. Each worker produces the full
    // time series of its coefficient, per_j[j][k][node].
    let two_stage = options.transient.method == IntegrationMethod::TrBdf2;
    let per_j: Vec<Vec<Vec<f64>>> = (0..size)
        .into_par_iter()
        .map(|j| {
            let u0 = sys.rhs_at(j, 0.0);
            let mut state = sys.dc_factor.solve(&u0);
            let mut series = Vec::with_capacity(times.len());
            series.push(state.clone());
            let mut u_prev = u0;
            let mut t_prev = times[0];
            for &t in &times[1..] {
                let u_next = sys.rhs_at(j, t);
                state = if two_stage {
                    let u_mid = sys.rhs_at(j, t_prev + TR_BDF2_GAMMA * (t - t_prev));
                    sys.companion.step_tr_bdf2(&state, &u_prev, &u_mid, &u_next)
                } else {
                    sys.companion.step(&state, &u_prev, &u_next)
                };
                series.push(state.clone());
                u_prev = u_next;
                t_prev = t;
            }
            series
        })
        .collect();

    // Transpose into the coefficients[k][j][node] layout the solution expects.
    let mut coefficients = vec![vec![Vec::new(); size]; times.len()];
    for (j, series) in per_j.into_iter().enumerate() {
        for (k, state) in series.into_iter().enumerate() {
            coefficients[k][j] = state;
        }
    }
    Ok(StochasticSolution::new(
        sys.basis,
        sys.times,
        n,
        coefficients,
    ))
}

/// The shared setup of both special-case drivers: basis, projected
/// injections, the two shared factorisations and the time grid.
struct LeakageSystem<'a> {
    grid: &'a PowerGrid,
    basis: OrthogonalBasis,
    injections: Vec<Vec<f64>>,
    dc_factor: MatrixFactor,
    companion: CompanionSystem,
    times: Vec<f64>,
    n: usize,
    size: usize,
}

impl<'a> LeakageSystem<'a> {
    fn build(
        grid: &'a PowerGrid,
        leakage: &LeakageModel,
        options: &SpecialCaseOptions,
    ) -> Result<Self> {
        options.validate()?;
        if leakage.node_count() != grid.node_count() {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "leakage model covers {} nodes but the grid has {}",
                    leakage.node_count(),
                    grid.node_count()
                ),
            });
        }
        let basis = OrthogonalBasis::total_order_mixed(
            leakage.families(),
            leakage.region_count(),
            options.order,
        )?;
        let coupling = GalerkinCoupling::new(&basis)?;
        // Projected leakage injections: inj[j][node] (amperes drawn).
        let injections = leakage.projected_injections(&basis, &coupling)?;

        let g = grid.conductance_matrix();
        let c = grid.capacitance_matrix();

        // One factorisation of G for the DC start and one of the companion
        // matrix for the time stepping — shared by all N + 1 systems (the
        // whole point of the special case).
        let dc_factor = MatrixFactor::cholesky_or_lu(&g)?;
        let companion = CompanionSystem::new(
            &g,
            &c,
            options.transient.time_step,
            options.transient.method,
        )?;

        Ok(LeakageSystem {
            grid,
            n: grid.node_count(),
            size: basis.len(),
            basis,
            injections,
            dc_factor,
            companion,
            times: options.transient.time_points(),
        })
    }

    /// Right-hand side for coefficient `j` at time `t`:
    ///   `j = 0` : nominal switching excitation minus the mean leakage,
    ///   `j > 0` : minus the `j`-th leakage coefficient (time independent).
    fn rhs_at(&self, j: usize, t: f64) -> Vec<f64> {
        if j == 0 {
            let mut u = self.grid.excitation(t);
            for (u_n, inj) in u.iter_mut().zip(&self.injections[0]) {
                *u_n -= inj;
            }
            u
        } else {
            self.injections[j].iter().map(|&inj| -inj).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monte_carlo::{run_leakage, MonteCarloOptions};
    use opera_grid::GridSpec;

    fn setup() -> (opera_grid::PowerGrid, LeakageModel) {
        let grid = GridSpec::small_test(90).with_seed(13).build().unwrap();
        // Sizeable leakage so its variation is visible next to the switching
        // currents: a few percent of the block current budget per node.
        let leakage =
            LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.04, 23.0).unwrap();
        (grid, leakage)
    }

    #[test]
    fn special_case_matches_leakage_monte_carlo() {
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        let mc = run_leakage(&grid, &leakage, &MonteCarloOptions::new(300, 2, topts)).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        let mean_err = (sol.mean_at(k, node) - mc.mean[k][node]).abs() / grid.vdd();
        assert!(mean_err < 2e-3, "mean error {mean_err}");
        let s_opera = sol.std_dev_at(k, node);
        let s_mc = mc.std_dev_at(k, node);
        assert!(s_mc > 0.0);
        assert!(
            (s_opera - s_mc).abs() / s_mc < 0.3,
            "sigma mismatch {s_opera} vs {s_mc}"
        );
    }

    #[test]
    fn panel_path_is_bit_identical_to_per_column_reference() {
        let (grid, leakage) = setup();
        for method in [
            IntegrationMethod::BackwardEuler,
            IntegrationMethod::Trapezoidal,
            IntegrationMethod::TrBdf2,
        ] {
            let opts = SpecialCaseOptions {
                order: 2,
                transient: TransientOptions {
                    time_step: 0.2e-9,
                    end_time: 1.0e-9,
                    method,
                },
            };
            let panel = solve_leakage(&grid, &leakage, &opts).unwrap();
            let reference = solve_leakage_reference(&grid, &leakage, &opts).unwrap();
            assert_eq!(panel.times(), reference.times());
            for k in 0..panel.times().len() {
                for j in 0..panel.basis_size() {
                    for node in 0..grid.node_count() {
                        assert_eq!(
                            panel.coefficient(k, j, node),
                            reference.coefficient(k, j, node),
                            "coefficient ({k}, {j}, {node}) differs under {method:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mean_reflects_lognormal_leakage_bias() {
        // The mean response must account for E[exp(−sξ)] > exp(0): the mean
        // drop is larger than the drop at the nominal (median) leakage.
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.5e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        // Zero-variance model with the same median leakage.
        let no_var = LeakageModel::uniform_slices(grid.node_count(), 2, 3.0e-5, 0.0, 23.0).unwrap();
        let sol0 = solve_leakage(&grid, &no_var, &SpecialCaseOptions::order2(topts)).unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        assert!(sol.mean_at(k, node) < sol0.mean_at(k, node));
        // And the zero-variance case has (numerically) zero spread.
        assert!(sol0.std_dev_at(k, node) < 1e-12);
    }

    #[test]
    fn region_variables_affect_their_own_region_most() {
        let (grid, leakage) = setup();
        let topts = TransientOptions::new(0.5e-9, 1.0e-9);
        let sol = solve_leakage(&grid, &leakage, &SpecialCaseOptions::order2(topts)).unwrap();
        let k = sol.times().len() - 1;
        // A node deep in region 0 must load mostly on ξ₁; one in region 1 on ξ₂.
        let node_r0 = (0..grid.node_count())
            .find(|&n| leakage.region_of(n) == 0)
            .unwrap();
        let node_r1 = (0..grid.node_count())
            .rev()
            .find(|&n| leakage.region_of(n) == 1)
            .unwrap();
        let xi1 = sol.basis().linear_index(0).unwrap();
        let xi2 = sol.basis().linear_index(1).unwrap();
        assert!(sol.coefficient(k, xi1, node_r0).abs() > sol.coefficient(k, xi2, node_r0).abs());
        assert!(sol.coefficient(k, xi2, node_r1).abs() > sol.coefficient(k, xi1, node_r1).abs());
    }

    #[test]
    fn mismatched_node_counts_are_rejected() {
        let (grid, _) = setup();
        let wrong =
            LeakageModel::uniform_slices(grid.node_count() + 5, 2, 1e-6, 0.03, 23.0).unwrap();
        let opts = SpecialCaseOptions::order2(TransientOptions::new(0.2e-9, 1.0e-9));
        assert!(matches!(
            solve_leakage(&grid, &wrong, &opts),
            Err(OperaError::InvalidOptions { .. })
        ));
        let bad_order = SpecialCaseOptions {
            order: 0,
            transient: TransientOptions::new(0.2e-9, 1.0e-9),
        };
        let leakage = LeakageModel::uniform_slices(grid.node_count(), 2, 1e-6, 0.03, 23.0).unwrap();
        assert!(solve_leakage(&grid, &leakage, &bad_order).is_err());
    }
}
