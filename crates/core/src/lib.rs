//! OPERA — Orthogonal Polynomial Expansions for Response Analysis.
//!
//! This crate is the core of the reproduction of *"Stochastic Power Grid
//! Analysis Considering Process Variations"* (DATE 2005): it computes the
//! stochastic voltage response of an RC power grid whose electrical
//! parameters vary with manufacturing process parameters.
//!
//! The pieces are:
//!
//! * [`transient`] — deterministic transient MNA solver (backward Euler or
//!   trapezoidal) used both for nominal analysis and inside the Monte Carlo
//!   baseline.
//! * [`galerkin`] — assembly of the spectral (Galerkin) augmented system
//!   `(G̃ + sC̃) a(s) = Ũ(s)` of paper Eqs. (19)–(22).
//! * [`stochastic`] — the OPERA solver: one augmented transient solve yields
//!   the full polynomial-chaos representation of every node voltage at every
//!   time step.
//! * [`special_case`] — the Section 5.1 special case (variations only in the
//!   excitation, e.g. per-region leakage): a single factorisation of the
//!   nominal matrix plus `N + 1` independent solves.
//! * [`monte_carlo`] — the Monte Carlo baseline the paper compares against.
//! * [`parallel`] — the [`Parallelism`] knob and deterministic per-sample
//!   seeding that let the Monte Carlo and special-case loops use all cores
//!   without changing any statistic.
//! * [`response`] — node-voltage statistics, voltage-drop summaries and
//!   histograms (paper Figures 1–2, the ±3σ column of Table 1).
//! * [`compare`] — OPERA-vs-Monte-Carlo error metrics (the accuracy columns
//!   of Table 1).
//! * [`analysis`] — end-to-end experiment drivers used by the benchmark
//!   harness and the examples.
//!
//! # Quickstart
//!
//! ```
//! use opera::analysis::{ExperimentConfig, run_experiment};
//!
//! # fn main() -> Result<(), opera::OperaError> {
//! // A deliberately tiny configuration so the doc-test runs in milliseconds.
//! let config = ExperimentConfig::quick_demo(160);
//! let report = run_experiment(&config)?;
//! assert!(report.opera.max_three_sigma_percent_of_nominal > 0.0);
//! assert!(report.errors.avg_mean_error_percent < 1.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;

pub mod analysis;
pub mod compare;
pub mod galerkin;
pub mod monte_carlo;
pub mod parallel;
pub mod response;
pub mod special_case;
pub mod stochastic;
pub mod transient;

pub use error::OperaError;
pub use galerkin::GalerkinSystem;
pub use parallel::Parallelism;
pub use stochastic::{AugmentedSolver, OperaOptions, StochasticSolution};
pub use transient::{IntegrationMethod, TransientOptions, TransientSolution};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OperaError>;
