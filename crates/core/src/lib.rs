//! OPERA — Orthogonal Polynomial Expansions for Response Analysis.
//!
//! This crate is the core of the reproduction of *"Stochastic Power Grid
//! Analysis Considering Process Variations"* (DATE 2005): it computes the
//! stochastic voltage response of an RC power grid whose electrical
//! parameters vary with manufacturing process parameters.
//!
//! The pieces are:
//!
//! * [`engine`] — the reusable [`OperaEngine`] session:
//!   grid generation, stochastic-model construction, Galerkin assembly and
//!   the solver factorisation happen **once** at build time, then any number
//!   of [scenarios](engine::Scenario) (waveform rescalings, transient
//!   overrides, Monte Carlo validations, whole batches) reuse them. Engines
//!   are built either from a synthetic [`GridSpec`](opera_grid::GridSpec)
//!   ([`OperaEngine::for_grid`]) or from a SPICE-style deck
//!   ([`OperaEngine::for_netlist`], grammar in `docs/NETLIST.md`) — netlist
//!   engines name their nodes in every report.
//! * [`solver`] — pluggable [`SolverBackend`]s for the
//!   augmented system (direct Cholesky, block-Jacobi preconditioned CG,
//!   left-looking LU) plus a name-based registry for custom backends.
//! * [`transient`] — deterministic transient MNA solver (backward Euler,
//!   trapezoidal or L-stable TR-BDF2) used both for nominal analysis and
//!   inside the Monte Carlo baseline.
//! * [`adaptive`] — LTE-driven adaptive TR-BDF2 stepping with dense
//!   interpolated output on the requested `.tran` grid, sharing one symbolic
//!   analysis across all step sizes.
//! * [`galerkin`] — assembly of the spectral (Galerkin) augmented system
//!   `(G̃ + sC̃) a(s) = Ũ(s)` of paper Eqs. (19)–(22).
//! * [`stochastic`] — the one-shot OPERA solver front end: one augmented
//!   transient solve yields the full polynomial-chaos representation of every
//!   node voltage at every time step.
//! * [`special_case`] — the Section 5.1 special case (variations only in the
//!   excitation, e.g. per-region leakage): a single factorisation of the
//!   nominal matrix plus `N + 1` independent solves.
//! * [`monte_carlo`] — the Monte Carlo baseline the paper compares against.
//! * [`engine::CollocationConfig`] / [`OperaEngine::collocation`] — the
//!   stochastic-collocation cross-check: a Smolyak (or tensor) sweep of
//!   independent deterministic node solves sharing one symbolic
//!   factorisation analysis (driver in the `opera_collocation` crate),
//!   projected onto the same polynomial-chaos basis.
//! * [`parallel`] — the [`Parallelism`] knob and deterministic per-sample
//!   seeding that let the Monte Carlo, special-case and batched-scenario
//!   loops use all cores without changing any statistic.
//! * [`response`] — node-voltage statistics, voltage-drop summaries and
//!   histograms (paper Figures 1–2, the ±3σ column of Table 1).
//! * [`compare`] — OPERA-vs-Monte-Carlo error metrics (the accuracy columns
//!   of Table 1).
//! * [`analysis`] — [`ExperimentConfig`](analysis::ExperimentConfig), a thin
//!   validated front end over the engine, and the one-shot
//!   [`run_experiment`](analysis::run_experiment) driver.
//!
//! # Quickstart
//!
//! Build an engine once, then serve as many scenarios as you like — the
//! assembly and factorisation are shared across all of them:
//!
//! ```
//! use opera::engine::{OperaEngine, Scenario};
//! use opera_grid::GridSpec;
//! use opera_variation::VariationSpec;
//!
//! # fn main() -> Result<(), opera::OperaError> {
//! // Deliberately tiny so the doc-test runs in milliseconds.
//! let engine = OperaEngine::for_grid(GridSpec::small_test(140))?
//!     .variation(VariationSpec::paper_defaults())
//!     .order(2)
//!     .time_step(0.2e-9)
//!     .end_time(1.0e-9)
//!     .mc_samples(25)
//!     .build()?;
//!
//! // A batch of scenarios: nominal, light and heavy switching activity.
//! let scenarios = [
//!     Scenario::named("nominal"),
//!     Scenario::named("light").with_current_scale(0.5),
//!     Scenario::named("heavy").with_current_scale(1.5),
//! ];
//! let reports = engine.run_batch(&scenarios)?;
//! assert_eq!(reports.len(), 3);
//! assert!(reports.iter().all(|r| r.report.opera.worst_mean_drop > 0.0));
//!
//! // The whole batch shared one assembly and one factorisation.
//! assert_eq!(engine.assembly_count(), 1);
//! assert_eq!(engine.factorization_count(), 1);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;

pub mod adaptive;
pub mod analysis;
pub mod compare;
pub mod engine;
pub mod galerkin;
pub mod monte_carlo;
pub mod parallel;
pub mod response;
pub mod solver;
pub mod special_case;
pub mod stochastic;
pub mod transient;

pub use adaptive::{AdaptiveOptions, AdaptiveStats, AdaptiveTransientSolution};
pub use engine::{
    CollocationConfig, CollocationReport, GridKind as CollocationGridKind, McConfig, OperaEngine,
    Scenario, ScenarioReport,
};
pub use error::OperaError;
pub use galerkin::GalerkinSystem;
pub use opera_simd::Backend as SimdBackend;
pub use parallel::Parallelism;
pub use solver::{BlockJacobiCg, DirectCholesky, LeftLookingLu, SolverBackend};
pub use stochastic::{OperaOptions, StochasticSolution};
pub use transient::{IntegrationMethod, TransientOptions, TransientSolution};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OperaError>;
