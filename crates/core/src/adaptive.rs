//! LTE-driven adaptive TR-BDF2 transient integration.
//!
//! The fixed-step loops in [`crate::transient`] resolve the whole horizon at
//! the deck's `.tran` step, which over-resolves quiet regions and
//! under-resolves fast edges. This module drives the L-stable
//! [`IntegrationMethod::TrBdf2`] composite with a local-truncation-error
//! controller instead: every step solves the embedded Hosea–Shampine error
//! estimate ([`crate::transient::CompanionSystem::tr_bdf2_error_into`]),
//! accepts the step when
//! the weighted-RMS error norm is at most one, and grows or shrinks the step
//! with the classic `safety · err^(−1/3)` rule (TR-BDF2 is second order) under
//! PI-style clamps. Results are still reported on the caller's output grid —
//! dense quadratic interpolation through the TR stage reconstructs the state
//! between accepted steps, and output points that coincide with accepted steps
//! are bit-exact copies of the accepted state.
//!
//! Step-size changes are cheap by construction: the controller requests every
//! factorisation through a [`CompanionFamily`], which reuses one shared
//! symbolic Cholesky analysis (numeric-only refactorisation) and serves
//! recently used step sizes from an LRU cache. A dead-band in the controller
//! keeps the step unchanged when the predicted growth is modest, so long
//! smooth stretches run entirely on cache hits. See `docs/TRANSIENT.md` for
//! the full contract.

use opera_sparse::{CsrMatrix, MatrixFactor, SolveWorkspace};

use crate::transient::{
    CompanionFamily, IntegrationMethod, TransientOptions, TransientSolution, TR_BDF2_GAMMA,
};
use crate::{OperaError, Result};

/// Controller dead-band: predicted step factors inside `[DEADBAND_LOW,
/// DEADBAND_HIGH]` keep the current step, so consecutive smooth steps reuse
/// the cached factorisation instead of refactoring for a marginal gain.
const DEADBAND_LOW: f64 = 0.9;
const DEADBAND_HIGH: f64 = 1.3;

/// Error exponent for a second-order embedded pair: `factor ∝ err^(−1/3)`.
const ERROR_EXPONENT: f64 = -1.0 / 3.0;

/// Options for the adaptive TR-BDF2 step-size controller.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Relative error tolerance per step (weighted-RMS norm).
    pub rel_tol: f64,
    /// Absolute error tolerance per step, in volts.
    pub abs_tol: f64,
    /// First attempted step. Defaults to 1/100 of the horizon.
    pub initial_step: Option<f64>,
    /// Smallest step the controller may take. Defaults to `1e-12` of the
    /// horizon.
    pub min_step: Option<f64>,
    /// Largest step the controller may take. Defaults to the whole horizon.
    pub max_step: Option<f64>,
    /// Safety factor applied to the predicted optimal step (classic 0.9).
    pub safety: f64,
    /// Maximum step growth per accepted step.
    pub max_growth: f64,
    /// Maximum step shrink per rejected step.
    pub min_shrink: f64,
    /// Consecutive rejections tolerated before the controller gives up.
    pub max_rejects: u32,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            rel_tol: 1e-4,
            abs_tol: 1e-9,
            initial_step: None,
            min_step: None,
            max_step: None,
            safety: 0.9,
            max_growth: 5.0,
            min_shrink: 0.2,
            max_rejects: 20,
        }
    }
}

impl AdaptiveOptions {
    /// Adaptive stepping at the given relative tolerance (other knobs at
    /// their defaults).
    pub fn with_rel_tol(rel_tol: f64) -> Self {
        AdaptiveOptions {
            rel_tol,
            ..AdaptiveOptions::default()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for non-positive tolerances,
    /// out-of-range controller clamps, or inconsistent step bounds.
    pub fn validate(&self) -> Result<()> {
        let positive_finite = |value: f64| value > 0.0 && value.is_finite();
        if !positive_finite(self.rel_tol) {
            return Err(invalid(format!(
                "rel_tol must be positive, got {}",
                self.rel_tol
            )));
        }
        if !positive_finite(self.abs_tol) {
            return Err(invalid(format!(
                "abs_tol must be positive, got {}",
                self.abs_tol
            )));
        }
        for (name, step) in [
            ("initial_step", self.initial_step),
            ("min_step", self.min_step),
            ("max_step", self.max_step),
        ] {
            if let Some(step) = step {
                if !positive_finite(step) {
                    return Err(invalid(format!("{name} must be positive, got {step}")));
                }
            }
        }
        if let (Some(lo), Some(hi)) = (self.min_step, self.max_step) {
            if lo > hi {
                return Err(invalid(format!("min_step {lo} exceeds max_step {hi}")));
            }
        }
        if !(self.safety > 0.0 && self.safety <= 1.0) {
            return Err(invalid(format!(
                "safety must lie in (0, 1], got {}",
                self.safety
            )));
        }
        if !(self.max_growth > 1.0 && self.max_growth.is_finite()) {
            return Err(invalid(format!(
                "max_growth must exceed 1, got {}",
                self.max_growth
            )));
        }
        if !(self.min_shrink > 0.0 && self.min_shrink < 1.0) {
            return Err(invalid(format!(
                "min_shrink must lie in (0, 1), got {}",
                self.min_shrink
            )));
        }
        if self.max_rejects == 0 {
            return Err(invalid("max_rejects must be at least 1".to_string()));
        }
        Ok(())
    }
}

fn invalid(reason: String) -> OperaError {
    OperaError::InvalidOptions { reason }
}

/// What the adaptive controller did over one integration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Steps attempted (accepted + rejected).
    pub steps_attempted: u64,
    /// Steps accepted (emitted into the solution).
    pub steps_accepted: u64,
    /// Steps rejected by the error test (never emitted).
    pub steps_rejected: u64,
    /// Numeric refactorisations the run triggered in its
    /// [`CompanionFamily`] (cache hits excluded).
    pub refactorizations: u64,
    /// Symbolic analyses the family has ever run (1 for Cholesky families —
    /// step-size changes are numeric-only).
    pub symbolic_analyses: u64,
}

/// Internal result of [`integrate_adaptive`]: dense output rows plus the
/// accepted internal trajectory and controller statistics.
pub(crate) struct AdaptiveRun {
    /// State at every requested output time (dense interpolated output).
    pub states: Vec<Vec<f64>>,
    /// The internal accepted time sequence, starting at `t0` and ending
    /// exactly at `t_end`.
    pub accepted_times: Vec<f64>,
    /// State at every accepted time.
    pub accepted_states: Vec<Vec<f64>>,
    /// Controller statistics.
    pub stats: AdaptiveStats,
}

/// Result of an adaptive deterministic transient analysis.
#[derive(Debug, Clone)]
pub struct AdaptiveTransientSolution {
    /// The solution sampled on the requested output grid (same shape a
    /// fixed-step [`solve_transient`](crate::transient::solve_transient)
    /// would produce for those times).
    pub solution: TransientSolution,
    /// The internal accepted step times.
    pub accepted_times: Vec<f64>,
    /// The state at every accepted step time (row `i` belongs to
    /// `accepted_times[i]`).
    pub accepted_states: Vec<Vec<f64>>,
    /// Controller statistics.
    pub stats: AdaptiveStats,
}

/// Weighted-RMS error norm: `sqrt(mean((e_i / (abs_tol + rel_tol ·
/// max(|v_old_i|, |v_new_i|)))²))`. Accept when at most 1.
fn wrms_norm(err: &[f64], v_old: &[f64], v_new: &[f64], options: &AdaptiveOptions) -> f64 {
    let mut sum = 0.0;
    for ((&e, &a), &b) in err.iter().zip(v_old).zip(v_new) {
        let scale = options.abs_tol + options.rel_tol * a.abs().max(b.abs());
        let ratio = e / scale;
        sum += ratio * ratio;
    }
    (sum / err.len().max(1) as f64).sqrt()
}

/// The predicted step factor for an error norm, clamped to the controller
/// limits. A vanishing error predicts maximal growth.
fn step_factor(err_norm: f64, options: &AdaptiveOptions) -> f64 {
    if !err_norm.is_finite() {
        return options.min_shrink;
    }
    let factor = options.safety * err_norm.max(1e-10).powf(ERROR_EXPONENT);
    factor.clamp(options.min_shrink, options.max_growth)
}

/// Quadratic dense output through the three TR-BDF2 stage nodes `θ ∈ {0, γ,
/// 1}` (Lagrange basis), writing the interpolant at `theta` into `out`.
fn interpolate_into(v_old: &[f64], v_mid: &[f64], v_new: &[f64], theta: f64, out: &mut [f64]) {
    let g = TR_BDF2_GAMMA;
    let w_old = (theta - g) * (theta - 1.0) / g;
    let w_mid = theta * (theta - 1.0) / (g * (g - 1.0));
    let w_new = theta * (theta - g) / (1.0 - g);
    opera_simd::weighted_sum3(
        out,
        [v_old, v_mid, v_new],
        [w_old, w_mid, w_new],
        opera_simd::active(),
    );
}

/// The LTE-driven adaptive TR-BDF2 loop. Starts from `v0` at
/// `output_times[0]`, integrates to `*output_times.last()`, and returns the
/// dense output on `output_times` plus the accepted internal trajectory.
///
/// Every factorisation goes through `family` (one symbolic analysis, LRU'd
/// numeric factors); rejected steps are never emitted; the final step is
/// capped so the last accepted time is **exactly** `t_end`. Counters
/// `transient.adaptive.steps_attempted` / `transient.adaptive.steps_rejected`
/// flow into [`opera_trace`] alongside the family's refactorisation counter.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] when the output grid is not
/// strictly increasing, when `v0` disagrees with the family dimension, or
/// when the controller cannot meet the tolerance within `max_rejects`
/// consecutive rejections at the minimum step.
pub(crate) fn integrate_adaptive(
    family: &CompanionFamily,
    v0: Vec<f64>,
    excitation: &dyn Fn(f64) -> Vec<f64>,
    output_times: &[f64],
    options: &AdaptiveOptions,
) -> Result<AdaptiveRun> {
    options.validate()?;
    if output_times.len() < 2 || output_times.windows(2).any(|w| w[1] <= w[0]) {
        return Err(invalid(
            "adaptive output grid needs at least two strictly increasing times".to_string(),
        ));
    }
    if v0.len() != family.dim() {
        return Err(invalid(format!(
            "initial state has {} entries but the system dimension is {}",
            v0.len(),
            family.dim()
        )));
    }
    let t0 = output_times[0];
    let t_end = output_times[output_times.len() - 1];
    let span = t_end - t0;
    let min_step = options.min_step.unwrap_or(span * 1e-12);
    let max_step = options.max_step.unwrap_or(span).min(span);
    let mut h = options
        .initial_step
        .unwrap_or(span / 100.0)
        .clamp(min_step, max_step);

    let n = v0.len();
    let refactorizations_before = family.refactorization_count();
    let mut stats = AdaptiveStats::default();

    let mut v = v0;
    let mut t = t0;
    let mut u_prev = excitation(t0);
    let mut stage = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut err = vec![0.0; n];
    let mut ws = SolveWorkspace::with_capacity(n);

    let mut states = Vec::with_capacity(output_times.len());
    states.push(v.clone());
    let mut out_idx = 1;
    let mut accepted_times = vec![t0];
    let mut accepted_states = vec![v.clone()];

    let mut rejected_last = false;
    let mut consecutive_rejects = 0u32;

    let adaptive_span = opera_trace::span("transient.adaptive");
    while t < t_end {
        // Cap the closing step so the trajectory lands exactly on `t_end`.
        let last_step = h >= t_end - t;
        let h_eff = if last_step { t_end - t } else { h };
        let t_new = if last_step { t_end } else { t + h };
        let system = family.system_for(h_eff, IntegrationMethod::TrBdf2)?;

        stats.steps_attempted += 1;
        opera_trace::count("transient.adaptive.steps_attempted", 1);
        let u_mid = excitation(t + TR_BDF2_GAMMA * h_eff);
        let u_new = excitation(t_new);
        system.step_tr_bdf2_into(&v, &u_prev, &u_mid, &u_new, &mut stage, &mut next, &mut ws);
        system.tr_bdf2_error_into(
            &v, &stage, &next, &u_prev, &u_mid, &u_new, &mut err, &mut ws,
        );
        let err_norm = wrms_norm(&err, &v, &next, options);

        // A NaN norm fails this comparison and lands in the reject branch.
        if err_norm <= 1.0 {
            stats.steps_accepted += 1;
            consecutive_rejects = 0;
            // Dense output for every requested time inside (t, t_new]; the
            // point at `t_new` itself is a bit-exact copy of the accepted
            // state, never an interpolation.
            while out_idx < output_times.len() && output_times[out_idx] <= t_new {
                let t_out = output_times[out_idx];
                if t_out == t_new {
                    states.push(next.clone());
                } else {
                    let mut row = vec![0.0; n];
                    interpolate_into(&v, &stage, &next, (t_out - t) / h_eff, &mut row);
                    states.push(row);
                }
                out_idx += 1;
            }
            t = t_new;
            std::mem::swap(&mut v, &mut next);
            u_prev = u_new;
            accepted_times.push(t);
            accepted_states.push(v.clone());
            // Grow/shrink for the next step; never grow right after a
            // rejection, and hold the step inside the dead-band so smooth
            // stretches keep hitting the factor cache.
            let mut factor = step_factor(err_norm, options);
            if rejected_last {
                factor = factor.min(1.0);
            }
            rejected_last = false;
            if !(DEADBAND_LOW..=DEADBAND_HIGH).contains(&factor) {
                h = (h * factor).clamp(min_step, max_step);
            }
        } else {
            stats.steps_rejected += 1;
            opera_trace::count("transient.adaptive.steps_rejected", 1);
            consecutive_rejects += 1;
            rejected_last = true;
            let at_floor = h_eff <= min_step;
            if consecutive_rejects > options.max_rejects || at_floor {
                return Err(invalid(format!(
                    "adaptive TR-BDF2 could not meet the error tolerance at t = {t:e} s \
                     (step {h_eff:e} s, error norm {err_norm:.3}); loosen rel_tol/abs_tol \
                     or lower min_step"
                )));
            }
            let factor = step_factor(err_norm, options).min(DEADBAND_LOW);
            h = (h_eff * factor).max(min_step);
        }
    }
    drop(adaptive_span);

    stats.refactorizations = family.refactorization_count() - refactorizations_before;
    stats.symbolic_analyses = family.symbolic_analysis_count();
    Ok(AdaptiveRun {
        states,
        accepted_times,
        accepted_states,
        stats,
    })
}

/// Runs an adaptive TR-BDF2 transient analysis of `G·v + C·dv/dt = u(t)`,
/// reporting the solution on the fixed grid of `options.time_points()` (so
/// the result is drop-in comparable with
/// [`solve_transient`](crate::transient::solve_transient)) while stepping
/// internally at whatever step sizes the error controller selects.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] unless `options.method` is
/// [`IntegrationMethod::TrBdf2`], for invalid options, and when the
/// controller cannot meet the tolerance; propagates factorisation errors.
///
/// # Example
///
/// ```
/// use opera::adaptive::{solve_transient_adaptive, AdaptiveOptions};
/// use opera::transient::{IntegrationMethod, TransientOptions};
/// use opera_grid::GridSpec;
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(120).build()?;
/// let opts = TransientOptions {
///     time_step: 0.05e-9,
///     end_time: 1.0e-9,
///     method: IntegrationMethod::TrBdf2,
/// };
/// let sol = solve_transient_adaptive(
///     &grid.conductance_matrix(),
///     &grid.capacitance_matrix(),
///     |t| grid.excitation(t),
///     &opts,
///     &AdaptiveOptions::default(),
/// )?;
/// assert_eq!(sol.solution.times.len(), opts.time_points().len());
/// assert_eq!(sol.stats.symbolic_analyses, 1);
/// # Ok(())
/// # }
/// ```
pub fn solve_transient_adaptive(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64>,
    options: &TransientOptions,
    adaptive: &AdaptiveOptions,
) -> Result<AdaptiveTransientSolution> {
    options.validate()?;
    if options.method != IntegrationMethod::TrBdf2 {
        return Err(invalid(
            "adaptive stepping requires IntegrationMethod::TrBdf2".to_string(),
        ));
    }
    let times = options.time_points();
    solve_transient_adaptive_at(g, c, excitation, &times, adaptive)
}

/// Like [`solve_transient_adaptive`], but reports on an arbitrary strictly
/// increasing output grid starting at the DC time `output_times[0]`.
///
/// # Errors
///
/// Same contract as [`solve_transient_adaptive`].
pub fn solve_transient_adaptive_at(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Vec<f64>,
    output_times: &[f64],
    adaptive: &AdaptiveOptions,
) -> Result<AdaptiveTransientSolution> {
    let family = CompanionFamily::new(g, c)?;
    let u0 = excitation(output_times.first().copied().unwrap_or(0.0));
    let v0 = MatrixFactor::cholesky_or_lu(g)
        .map_err(OperaError::from)?
        .solve(&u0);
    let run = integrate_adaptive(&family, v0, &excitation, output_times, adaptive)?;
    Ok(AdaptiveTransientSolution {
        solution: TransientSolution::from_states(output_times.to_vec(), &run.states),
        accepted_times: run.accepted_times,
        accepted_states: run.accepted_states,
        stats: run.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::solve_transient;
    use opera_sparse::TripletMatrix;

    /// Single RC node: G = 1, C = 1 (τ = 1 s).
    fn rc_circuit() -> (CsrMatrix, CsrMatrix) {
        let mut g = TripletMatrix::new(1, 1);
        g.push(0, 0, 1.0);
        let mut c = TripletMatrix::new(1, 1);
        c.push(0, 0, 1.0);
        (g.to_csr(), c.to_csr())
    }

    fn step_excitation(t: f64) -> Vec<f64> {
        vec![if t > 0.0 { 1.0 } else { 0.0 }]
    }

    fn tr_bdf2_options() -> TransientOptions {
        TransientOptions {
            time_step: 0.01,
            end_time: 2.0,
            method: IntegrationMethod::TrBdf2,
        }
    }

    #[test]
    fn adaptive_rc_matches_the_analytic_solution_on_the_output_grid() {
        let (g, c) = rc_circuit();
        let sol = solve_transient_adaptive(
            &g,
            &c,
            step_excitation,
            &tr_bdf2_options(),
            &AdaptiveOptions::default(),
        )
        .unwrap();
        for (k, &t) in sol.solution.times.iter().enumerate().skip(1) {
            let expected = 1.0 - (-t).exp();
            assert!(
                (sol.solution.state_at(k)[0] - expected).abs() < 1e-3,
                "t = {t}: got {}, expected {expected}",
                sol.solution.state_at(k)[0]
            );
        }
        assert_eq!(sol.stats.symbolic_analyses, 1);
        assert_eq!(
            sol.stats.steps_attempted,
            sol.stats.steps_accepted + sol.stats.steps_rejected
        );
        // The controller should need far fewer internal steps than the
        // 200-point output grid it reports on.
        assert!(
            sol.accepted_times.len() < sol.solution.times.len() / 2,
            "accepted {} steps for {} output points",
            sol.accepted_times.len(),
            sol.solution.times.len()
        );
    }

    #[test]
    fn accepted_trajectory_is_monotone_and_inside_the_horizon() {
        let (g, c) = rc_circuit();
        let opts = tr_bdf2_options();
        let sol =
            solve_transient_adaptive(&g, &c, step_excitation, &opts, &AdaptiveOptions::default())
                .unwrap();
        assert_eq!(sol.accepted_times[0], 0.0);
        assert_eq!(*sol.accepted_times.last().unwrap(), opts.end_time);
        for w in sol.accepted_times.windows(2) {
            assert!(w[1] > w[0], "time must strictly increase: {w:?}");
        }
        assert_eq!(sol.accepted_times.len(), sol.accepted_states.len());
        assert_eq!(
            sol.stats.steps_accepted as usize,
            sol.accepted_times.len() - 1
        );
    }

    #[test]
    fn tightening_the_tolerance_converges_to_the_fixed_step_reference() {
        // Smooth excitation: a discontinuous source would dominate the
        // comparison with the *reference's own* first-step error.
        let smooth = |t: f64| vec![1.0 - (-3.0 * t).exp()];
        let (g, c) = rc_circuit();
        let opts = TransientOptions {
            time_step: 0.001,
            end_time: 1.0,
            method: IntegrationMethod::TrBdf2,
        };
        let reference = solve_transient(&g, &c, smooth, &opts).unwrap();
        let mut worst_prev = f64::INFINITY;
        for rel_tol in [1e-3, 1e-6] {
            let sol = solve_transient_adaptive(
                &g,
                &c,
                smooth,
                &opts,
                &AdaptiveOptions::with_rel_tol(rel_tol),
            )
            .unwrap();
            let worst = sol
                .solution
                .states()
                .columns()
                .zip(reference.states().columns())
                .map(|(a, b)| (a[0] - b[0]).abs())
                .fold(0.0f64, f64::max);
            assert!(
                worst < worst_prev,
                "tolerance {rel_tol} did not improve: {worst} vs {worst_prev}"
            );
            worst_prev = worst;
        }
        assert!(worst_prev < 1e-5, "tightest run still off by {worst_prev}");
    }

    #[test]
    fn invalid_options_and_wrong_method_are_rejected() {
        let (g, c) = rc_circuit();
        let bad = AdaptiveOptions {
            rel_tol: -1.0,
            ..AdaptiveOptions::default()
        };
        assert!(bad.validate().is_err());
        assert!(AdaptiveOptions {
            safety: 1.5,
            ..AdaptiveOptions::default()
        }
        .validate()
        .is_err());
        assert!(AdaptiveOptions {
            min_step: Some(1.0),
            max_step: Some(0.5),
            ..AdaptiveOptions::default()
        }
        .validate()
        .is_err());
        let be = TransientOptions::new(0.1, 1.0);
        assert!(matches!(
            solve_transient_adaptive(&g, &c, step_excitation, &be, &AdaptiveOptions::default()),
            Err(OperaError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn interpolation_is_exact_at_the_stage_nodes() {
        let v_old = [1.0, -2.0];
        let v_mid = [0.5, 3.0];
        let v_new = [0.25, 7.0];
        let mut out = [0.0; 2];
        interpolate_into(&v_old, &v_mid, &v_new, 0.0, &mut out);
        assert_eq!(out, v_old);
        interpolate_into(&v_old, &v_mid, &v_new, TR_BDF2_GAMMA, &mut out);
        for (o, e) in out.iter().zip(v_mid) {
            assert!((o - e).abs() < 1e-14);
        }
        interpolate_into(&v_old, &v_mid, &v_new, 1.0, &mut out);
        for (o, e) in out.iter().zip(v_new) {
            assert!((o - e).abs() < 1e-14);
        }
    }

    #[test]
    fn impossible_tolerance_reports_a_controller_failure() {
        let (g, c) = rc_circuit();
        let opts = tr_bdf2_options();
        let impossible = AdaptiveOptions {
            rel_tol: 1e-15,
            abs_tol: 1e-18,
            min_step: Some(0.5),
            initial_step: Some(0.5),
            max_rejects: 3,
            ..AdaptiveOptions::default()
        };
        let err =
            solve_transient_adaptive(&g, &c, step_excitation, &opts, &impossible).unwrap_err();
        assert!(err
            .to_string()
            .contains("could not meet the error tolerance"));
    }
}
