//! Monte Carlo baseline for stochastic power-grid analysis.
//!
//! The paper validates OPERA against plain Monte Carlo with 1000 samples per
//! grid: each sample draws a value of the process variables, realises the
//! perturbed `G`, `C` and excitation, and runs a full deterministic transient
//! analysis. Mean and variance are accumulated per node and time point with
//! Welford's algorithm; full sample traces are kept only for a small set of
//! probe nodes (used for the distribution plots of Figures 1–2).
//!
//! # Parallelism and determinism
//!
//! Samples are independent, so the loop runs on a `rayon` pool bounded by
//! the installed [`Parallelism`](crate::parallel::Parallelism). Each sample
//! draws from its own RNG stream seeded by
//! [`sample_seed`]`(options.seed, index)`, and
//! batches of traces are folded into the Welford accumulator *in sample
//! order*, so the statistics are bit-identical for every thread count
//! (serial included). Memory stays bounded: at most one batch of traces
//! (a small multiple of the worker count) is alive at a time.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use opera_grid::PowerGrid;
use opera_sparse::{CsrMatrix, MatrixFactor, Panel, SolveWorkspace};
use opera_variation::{LeakageModel, StochasticGridModel};

use crate::parallel::sample_seed;
use crate::transient::TransientOptions;
use crate::{OperaError, Result};

/// Options for a Monte Carlo run.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloOptions {
    /// Number of samples (the paper uses 1000).
    pub samples: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Transient analysis options (shared with the OPERA run being compared).
    pub transient: TransientOptions,
    /// Nodes whose full per-sample voltage traces are recorded.
    pub probe_nodes: Vec<usize>,
    /// Multiplier applied to the switching currents (`1.0` = as modelled):
    /// the per-sample excitation is scaled around its quiescent `t = 0`
    /// value, mirroring the engine's
    /// [`Scenario::current_scale`](crate::engine::Scenario). With the default
    /// `1.0` the excitation path is bit-identical to the unscaled code.
    pub current_scale: f64,
}

impl MonteCarloOptions {
    /// Creates options with no probes and unscaled currents.
    pub fn new(samples: usize, seed: u64, transient: TransientOptions) -> Self {
        MonteCarloOptions {
            samples,
            seed,
            transient,
            probe_nodes: Vec::new(),
            current_scale: 1.0,
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for zero samples, a negative or
    /// non-finite current scale, or invalid transient options.
    pub fn validate(&self) -> Result<()> {
        if self.samples == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "Monte Carlo needs at least one sample".to_string(),
            });
        }
        if !self.current_scale.is_finite() || self.current_scale < 0.0 {
            return Err(OperaError::InvalidOptions {
                reason: format!(
                    "current_scale must be finite and non-negative, got {}",
                    self.current_scale
                ),
            });
        }
        self.transient.validate()
    }
}

/// Accumulated Monte Carlo statistics.
#[derive(Debug, Clone)]
pub struct MonteCarloResult {
    /// Time points of the transient analyses.
    pub times: Vec<f64>,
    /// Per time point and node: sample mean of the voltage.
    pub mean: Vec<Vec<f64>>,
    /// Per time point and node: unbiased sample variance of the voltage.
    pub variance: Vec<Vec<f64>>,
    /// Probe nodes whose full traces were recorded.
    pub probe_nodes: Vec<usize>,
    /// `probe_traces[p][s][k]`: voltage of probe `p` in sample `s` at time
    /// index `k`.
    pub probe_traces: Vec<Vec<Vec<f64>>>,
    /// Number of samples that were run.
    pub samples: usize,
}

impl MonteCarloResult {
    /// Standard deviation at a time index and node.
    pub fn std_dev_at(&self, k: usize, node: usize) -> f64 {
        self.variance[k][node].sqrt()
    }

    /// The node, time index and value of the worst mean voltage drop.
    pub fn worst_mean_drop(&self, vdd: f64) -> (usize, usize, f64) {
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for (k, row) in self.mean.iter().enumerate() {
            for (n, &v) in row.iter().enumerate() {
                let drop = vdd - v;
                if drop > best.2 {
                    best = (n, k, drop);
                }
            }
        }
        best
    }

    /// Per-sample voltages of a probe node at one time index, or `None`
    /// when the node was not among the probe nodes of the run.
    pub fn probe_samples_at(&self, node: usize, k: usize) -> Option<Vec<f64>> {
        let p = self.probe_nodes.iter().position(|&n| n == node)?;
        Some(self.probe_traces[p].iter().map(|trace| trace[k]).collect())
    }
}

/// Welford accumulator over vectors indexed by (time, node).
struct WelfordGrid {
    count: usize,
    mean: Vec<Vec<f64>>,
    m2: Vec<Vec<f64>>,
}

impl WelfordGrid {
    fn new(times: usize, nodes: usize) -> Self {
        WelfordGrid {
            count: 0,
            mean: vec![vec![0.0; nodes]; times],
            m2: vec![vec![0.0; nodes]; times],
        }
    }

    fn update(&mut self, sample: &[Vec<f64>]) {
        self.count += 1;
        let c = self.count as f64;
        let backend = opera_simd::active();
        for (k, row) in sample.iter().enumerate() {
            opera_simd::welford_update(&mut self.mean[k], &mut self.m2[k], row, c, backend);
        }
    }

    fn finish(self) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, usize) {
        let denom = (self.count.max(2) - 1) as f64;
        let variance = self
            .m2
            .into_iter()
            .map(|row| row.into_iter().map(|m2| m2 / denom).collect())
            .collect();
        (self.mean, variance, self.count)
    }
}

/// Runs the Monte Carlo baseline for an inter-die variation model.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options, and propagates
/// sampling or factorisation errors.
pub fn run(model: &StochasticGridModel, options: &MonteCarloOptions) -> Result<MonteCarloResult> {
    let _span = opera_trace::span("mc.run");
    options.validate()?;
    let times = options.transient.time_points();
    let n = model.node_count();
    let families = model.families();

    let scale = options.current_scale;
    accumulate_samples(options, times.clone(), n, |sample_index| {
        let mut rng = StdRng::seed_from_u64(sample_seed(options.seed, sample_index as u64));
        let xi: Vec<f64> = families.iter().map(|f| f.sample(&mut rng)).collect();
        let g = model.sample_conductance(&xi)?;
        let c = model.sample_capacitance(&xi)?;
        // Anchor the waveform scaling at the quiescent excitation of *this*
        // sample, so only the switching currents are rescaled.
        let anchor = if scale != 1.0 {
            Some(model.sample_excitation(0.0, &xi)?)
        } else {
            None
        };
        transient_sample(
            &g,
            &c,
            |t| {
                let mut u = model.sample_excitation(t, &xi)?;
                if let Some(u0) = &anchor {
                    crate::transient::rescale_around_anchor(&mut u, u0, scale);
                }
                Ok(u)
            },
            &times,
            &options.transient,
        )
    })
}

/// Runs the per-sample closure over all samples on the installed `rayon`
/// pool and folds the resulting traces into the Welford statistics in sample
/// order. Batching keeps at most ~2 traces per worker alive, bounding memory
/// on paper-scale grids while keeping every worker busy.
fn accumulate_samples(
    options: &MonteCarloOptions,
    times: Vec<f64>,
    n: usize,
    sample_trace: impl Fn(usize) -> Result<Vec<Vec<f64>>> + Sync,
) -> Result<MonteCarloResult> {
    accumulate_sample_groups(options, times, n, 1, |range| {
        range.map(&sample_trace).collect()
    })
}

/// Width of the sample panels in shared-factor Monte Carlo runs: each worker
/// advances this many samples in lock step through one blocked panel solve
/// per time step. The partition into groups is fixed (independent of the
/// thread count), so statistics stay bit-identical for every setting.
const MC_PANEL_WIDTH: usize = 4;

/// Grouped generalisation of the sample accumulator: samples are partitioned
/// into contiguous groups of `group_width`, one worker produces all traces of
/// a group (e.g. by stepping them as one panel), and groups are folded into
/// the Welford statistics strictly in sample order. `group_width == 1`
/// recovers the plain per-sample loop.
fn accumulate_sample_groups(
    options: &MonteCarloOptions,
    times: Vec<f64>,
    n: usize,
    group_width: usize,
    group_traces: impl Fn(std::ops::Range<usize>) -> Result<Vec<Vec<Vec<f64>>>> + Sync,
) -> Result<MonteCarloResult> {
    let mut stats = WelfordGrid::new(times.len(), n);
    let mut probe_traces: Vec<Vec<Vec<f64>>> =
        vec![Vec::with_capacity(options.samples); options.probe_nodes.len()];

    let total_groups = options.samples.div_ceil(group_width.max(1)).max(1);
    let batch = (rayon::current_num_threads().max(1) * 2).min(total_groups);
    // Captured before the fan-out: worker threads attach their group spans
    // to the span that spawned the sweep, not to a thread-local root.
    let parent = opera_trace::current_span();
    let mut group = 0;
    while group < total_groups {
        let end = (group + batch).min(total_groups);
        let results: Vec<Result<Vec<Vec<Vec<f64>>>>> = (group..end)
            .into_par_iter()
            .map(|g| {
                let start = g * group_width;
                let stop = (start + group_width).min(options.samples);
                let _span = opera_trace::span_under(parent, "mc.sample_group");
                opera_trace::count("mc.samples", (stop - start) as u64);
                group_traces(start..stop)
            })
            .collect();
        for group_result in results {
            for voltages in group_result? {
                stats.update(&voltages);
                for (p, &node) in options.probe_nodes.iter().enumerate() {
                    probe_traces[p].push(voltages.iter().map(|row| row[node]).collect());
                }
            }
        }
        group = end;
    }
    let (mean, variance, samples) = stats.finish();
    Ok(MonteCarloResult {
        times,
        mean,
        variance,
        probe_nodes: options.probe_nodes.clone(),
        probe_traces,
        samples,
    })
}

/// Runs the Monte Carlo baseline for the RHS-only leakage variation of the
/// paper's special case: the matrices stay nominal, only the excitation is
/// resampled, so a single factorisation is shared by all samples — and the
/// samples of each worker's group advance in lock step through **one blocked
/// panel solve** per time step (groups of `MC_PANEL_WIDTH` = 4 samples)
/// instead of one scalar solve per sample per step. Each panel column
/// performs exactly
/// the scalar arithmetic, so the statistics are bit-identical to the
/// per-sample path for every thread count.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options and propagates
/// factorisation errors.
pub fn run_leakage(
    grid: &PowerGrid,
    leakage: &LeakageModel,
    options: &MonteCarloOptions,
) -> Result<MonteCarloResult> {
    let _span = opera_trace::span("mc.run");
    options.validate()?;
    let times = options.transient.time_points();
    let n = grid.node_count();
    let families = leakage.families();

    let g = grid.conductance_matrix();
    let c = grid.capacitance_matrix();
    let companion = crate::transient::CompanionSystem::new(
        &g,
        &c,
        options.transient.time_step,
        options.transient.method,
    )?;
    let dc = MatrixFactor::cholesky_or_lu(&g)?;
    let scale = options.current_scale;

    // The waveform scaling is anchored at t = 0, so it rescales only the
    // switching currents; the (time-independent) leakage is untouched. The
    // switching excitation is shared by every sample — only the subtracted
    // leakage differs — so each group evaluates it once per time point.
    let anchor = (scale != 1.0).then(|| grid.excitation(0.0));
    let base_at = |t: f64| {
        let mut u = grid.excitation(t);
        if let Some(u0) = &anchor {
            crate::transient::rescale_around_anchor(&mut u, u0, scale);
        }
        u
    };

    accumulate_sample_groups(options, times.clone(), n, MC_PANEL_WIDTH, |range| {
        // Per-sample leakage draws, from each sample's own RNG stream.
        let leaks: Vec<Vec<f64>> = range
            .map(|sample_index| {
                let mut rng = StdRng::seed_from_u64(sample_seed(options.seed, sample_index as u64));
                let xi: Vec<f64> = families.iter().map(|f| f.sample(&mut rng)).collect();
                leakage.sample_leakage(&xi)
            })
            .collect();
        let w = leaks.len();
        let fill = |u_panel: &mut Panel, base: &[f64]| {
            for (j, leak) in leaks.iter().enumerate() {
                for ((u_n, &b), l_n) in u_panel.col_mut(j).iter_mut().zip(base).zip(leak) {
                    *u_n = b - l_n;
                }
            }
        };

        // DC start + shared-factor panel transient (the factors are shared
        // across groups *and* threads; they are only read). One workspace
        // per group: the steady-state loop allocates only its output traces.
        let mut ws = SolveWorkspace::with_capacity(n * w);
        let mut u_prev = Panel::zeros(n, w);
        fill(&mut u_prev, &base_at(0.0));
        let mut state = Panel::zeros(n, w);
        state.data_mut().copy_from_slice(u_prev.data());
        dc.solve_panel(&mut state, &mut ws);

        let mut traces: Vec<Vec<Vec<f64>>> = state
            .columns()
            .map(|col| {
                let mut series = Vec::with_capacity(times.len());
                series.push(col.to_vec());
                series
            })
            .collect();
        let mut u_next = Panel::zeros(n, w);
        let mut next = Panel::zeros(n, w);
        let two_stage = options.transient.method == crate::transient::IntegrationMethod::TrBdf2;
        let cols_mid = if two_stage { w } else { 0 };
        let mut u_mid = Panel::zeros(n, cols_mid);
        let mut stage = Panel::zeros(n, cols_mid);
        let mut t_prev = times[0];
        for &t in &times[1..] {
            fill(&mut u_next, &base_at(t));
            if two_stage {
                let tm = t_prev + crate::transient::TR_BDF2_GAMMA * (t - t_prev);
                fill(&mut u_mid, &base_at(tm));
                companion.step_tr_bdf2_panel_into(
                    &state, &u_prev, &u_mid, &u_next, &mut stage, &mut next, &mut ws,
                );
            } else {
                companion.step_panel_into(&state, &u_prev, &u_next, &mut next, &mut ws);
            }
            for (series, col) in traces.iter_mut().zip(next.columns()) {
                series.push(col.to_vec());
            }
            std::mem::swap(&mut state, &mut next);
            std::mem::swap(&mut u_prev, &mut u_next);
            t_prev = t;
        }
        Ok(traces)
    })
}

/// One Monte Carlo transient: DC start plus fixed-step integration with the
/// sampled matrices. The output rows are allocated up front and each step
/// writes straight into its row with one reused solver workspace (the
/// per-worker scratch arena of the sample loop), so the steady-state loop
/// performs no per-step solver allocations.
fn transient_sample(
    g: &CsrMatrix,
    c: &CsrMatrix,
    excitation: impl Fn(f64) -> Result<Vec<f64>>,
    times: &[f64],
    options: &TransientOptions,
) -> Result<Vec<Vec<f64>>> {
    let n = g.nrows();
    let u0 = excitation(0.0)?;
    let dc = MatrixFactor::cholesky_or_lu(g)?;
    let v0 = dc.solve(&u0);
    let method = options.method;
    let companion = crate::transient::CompanionSystem::new(g, c, options.time_step, method)?;
    let mut voltages = vec![vec![0.0; n]; times.len()];
    voltages[0] = v0;
    let mut ws = SolveWorkspace::with_capacity(n);
    let mut u_prev = u0;
    let two_stage = method == crate::transient::IntegrationMethod::TrBdf2;
    let mut stage = vec![0.0; if two_stage { n } else { 0 }];
    for (k, &t) in times.iter().enumerate().skip(1) {
        let u_next = excitation(t)?;
        let (done, rest) = voltages.split_at_mut(k);
        if two_stage {
            let t_prev = times[k - 1];
            let u_mid = excitation(t_prev + crate::transient::TR_BDF2_GAMMA * (t - t_prev))?;
            companion.step_tr_bdf2_into(
                &done[k - 1],
                &u_prev,
                &u_mid,
                &u_next,
                &mut stage,
                &mut rest[0],
                &mut ws,
            );
        } else {
            companion.step_into(&done[k - 1], &u_prev, &u_next, &mut rest[0], &mut ws);
        }
        u_prev = u_next;
    }
    Ok(voltages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::{solve, OperaOptions};
    use opera_grid::GridSpec;
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn setup() -> (opera_grid::PowerGrid, StochasticGridModel) {
        let grid = GridSpec::small_test(80).with_seed(21).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        (grid, model)
    }

    #[test]
    fn monte_carlo_matches_opera_mean_and_variance() {
        let (grid, model) = setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let opera = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let mc = run(&model, &MonteCarloOptions::new(200, 1, topts)).unwrap();
        let (node, k, _) = opera.worst_mean_drop(grid.vdd());
        let mean_err = (opera.mean_at(k, node) - mc.mean[k][node]).abs() / grid.vdd();
        assert!(mean_err < 5e-3, "mean error {mean_err}");
        let sigma_opera = opera.std_dev_at(k, node);
        let sigma_mc = mc.std_dev_at(k, node);
        assert!(sigma_mc > 0.0);
        let rel = (sigma_opera - sigma_mc).abs() / sigma_mc;
        assert!(rel < 0.25, "sigma mismatch: {sigma_opera} vs {sigma_mc}");
    }

    #[test]
    fn probe_traces_have_expected_shape() {
        let (_grid, model) = setup();
        let topts = TransientOptions::new(0.25e-9, 1.0e-9);
        let mut opts = MonteCarloOptions::new(5, 3, topts);
        opts.probe_nodes = vec![0, 7];
        let mc = run(&model, &opts).unwrap();
        assert_eq!(mc.probe_traces.len(), 2);
        assert_eq!(mc.probe_traces[0].len(), 5);
        assert_eq!(mc.probe_traces[0][0].len(), mc.times.len());
        let samples = mc.probe_samples_at(7, 1).expect("probe node");
        assert_eq!(samples.len(), 5);
        assert_eq!(mc.samples, 5);
    }

    #[test]
    fn leakage_monte_carlo_records_probe_traces_and_matches_nominal_without_variation() {
        use opera_variation::LeakageModel;
        let grid = GridSpec::small_test(70).with_seed(19).build().unwrap();
        let topts = TransientOptions::new(0.25e-9, 0.5e-9);
        // Zero Vth sigma: every sample is identical, so the variance must be
        // (numerically) zero and the probes all coincide.
        let leakage =
            LeakageModel::uniform_slices(grid.node_count(), 2, 1.0e-5, 0.0, 23.0).unwrap();
        let mut opts = MonteCarloOptions::new(8, 4, topts);
        opts.probe_nodes = vec![3];
        let mc = run_leakage(&grid, &leakage, &opts).unwrap();
        assert_eq!(mc.probe_traces[0].len(), 8);
        let k = mc.times.len() - 1;
        let samples = mc.probe_samples_at(3, k).expect("probe node");
        for s in &samples {
            assert!((s - samples[0]).abs() < 1e-12);
        }
        for n in 0..grid.node_count() {
            assert!(mc.std_dev_at(k, n) < 1e-10);
        }
        let (_, _, worst) = mc.worst_mean_drop(grid.vdd());
        assert!(worst >= 0.0);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let (_grid, model) = setup();
        let topts = TransientOptions::new(0.25e-9, 0.5e-9);
        let a = run(&model, &MonteCarloOptions::new(10, 11, topts)).unwrap();
        let b = run(&model, &MonteCarloOptions::new(10, 11, topts)).unwrap();
        let c = run(&model, &MonteCarloOptions::new(10, 12, topts)).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_ne!(a.mean, c.mean);
    }

    #[test]
    fn zero_samples_is_rejected() {
        let (_grid, model) = setup();
        let opts = MonteCarloOptions::new(0, 1, TransientOptions::new(0.1e-9, 1.0e-9));
        assert!(matches!(
            run(&model, &opts),
            Err(OperaError::InvalidOptions { .. })
        ));
    }
}
