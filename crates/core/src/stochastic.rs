//! The OPERA stochastic transient solver.
//!
//! One transient analysis of the Galerkin-augmented system yields the full
//! polynomial-chaos representation of every node voltage at every time step:
//! the coefficients `a_i(t)` of `x(t, ξ) = Σ_i a_i(t) ψ_i(ξ)`. Mean, variance
//! and distributions then follow in closed form (paper Eq. 23), which is what
//! makes OPERA one to two orders of magnitude faster than Monte Carlo.

use opera_pce::{OrthogonalBasis, PceSeries};
use opera_variation::StochasticGridModel;

use crate::galerkin::GalerkinSystem;
use crate::transient::{CompanionSystem, TransientOptions};
use crate::{OperaError, Result};

/// How the augmented Galerkin system is solved at each time step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AugmentedSolver {
    /// Sparse Cholesky factorisation of the full `(N+1)·n` companion matrix,
    /// factored once and reused for every time step (default).
    #[default]
    Direct,
    /// Conjugate gradient on the augmented system with a block-Jacobi
    /// preconditioner built from a *single* factorisation of the nominal
    /// companion matrix `G_a + C_a/h` (the diagonal blocks of the augmented
    /// matrix are exactly `⟨ψ_i²⟩(G_a + C_a/h)` for symmetric variations).
    /// This is the "iterative block solver with appropriate pre-conditioner"
    /// the paper suggests for very large grids (§5.2) and it keeps the OPERA
    /// cost close to a single deterministic transient.
    PreconditionedCg {
        /// Relative residual tolerance of the CG iteration.
        tolerance: f64,
        /// Maximum CG iterations per solve.
        max_iterations: usize,
    },
}

impl AugmentedSolver {
    /// The preconditioned-CG solver with default settings (1e-10 tolerance).
    pub fn preconditioned_cg() -> Self {
        AugmentedSolver::PreconditionedCg {
            tolerance: 1e-10,
            max_iterations: 2_000,
        }
    }
}

/// Options for the OPERA solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperaOptions {
    /// Truncation order `p` of the polynomial chaos expansion (the paper uses
    /// 2 or 3).
    pub order: u32,
    /// Transient analysis options.
    pub transient: TransientOptions,
    /// How the augmented system is solved.
    pub solver: AugmentedSolver,
}

impl OperaOptions {
    /// Order-2 expansion with the given transient options (the configuration
    /// used for every Table 1 entry in the paper) and the direct solver.
    pub fn order2(transient: TransientOptions) -> Self {
        OperaOptions {
            order: 2,
            transient,
            solver: AugmentedSolver::Direct,
        }
    }

    /// Order-`p` expansion with the given transient options and the direct
    /// solver.
    pub fn with_order(order: u32, transient: TransientOptions) -> Self {
        OperaOptions {
            order,
            transient,
            solver: AugmentedSolver::Direct,
        }
    }

    /// Switches to the block-preconditioned CG solver for the augmented
    /// system.
    pub fn with_iterative_solver(mut self) -> Self {
        self.solver = AugmentedSolver::preconditioned_cg();
        self
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns [`OperaError::InvalidOptions`] for order 0, a non-positive CG
    /// tolerance, or invalid transient options.
    pub fn validate(&self) -> Result<()> {
        if self.order == 0 {
            return Err(OperaError::InvalidOptions {
                reason: "expansion order must be at least 1".to_string(),
            });
        }
        if let AugmentedSolver::PreconditionedCg {
            tolerance,
            max_iterations,
        } = self.solver
        {
            if tolerance <= 0.0 || tolerance.is_nan() || max_iterations == 0 {
                return Err(OperaError::InvalidOptions {
                    reason: "CG tolerance must be positive and max_iterations nonzero".to_string(),
                });
            }
        }
        self.transient.validate()
    }
}

/// The stochastic voltage response: polynomial-chaos coefficients of every
/// node voltage at every time point.
#[derive(Debug, Clone)]
pub struct StochasticSolution {
    basis: OrthogonalBasis,
    times: Vec<f64>,
    node_count: usize,
    /// `coefficients[k][i][n]`: coefficient of basis function `ψ_i` for node
    /// `n` at time `times[k]`.
    coefficients: Vec<Vec<Vec<f64>>>,
}

impl StochasticSolution {
    /// Builds a solution from raw per-time coefficient blocks. Intended for
    /// the solvers in this crate; the lengths must be consistent.
    pub(crate) fn new(
        basis: OrthogonalBasis,
        times: Vec<f64>,
        node_count: usize,
        coefficients: Vec<Vec<Vec<f64>>>,
    ) -> Self {
        debug_assert_eq!(times.len(), coefficients.len());
        StochasticSolution {
            basis,
            times,
            node_count,
            coefficients,
        }
    }

    /// The basis the response is expanded in.
    pub fn basis(&self) -> &OrthogonalBasis {
        &self.basis
    }

    /// Time points of the transient analysis.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of grid nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of basis functions `N + 1`.
    pub fn basis_size(&self) -> usize {
        self.basis.len()
    }

    /// Coefficient of basis function `i` for node `node` at time index `k`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn coefficient(&self, k: usize, i: usize, node: usize) -> f64 {
        self.coefficients[k][i][node]
    }

    /// Mean voltage of `node` at time index `k` (paper Eq. 23: the mean is
    /// the zeroth coefficient).
    pub fn mean_at(&self, k: usize, node: usize) -> f64 {
        self.coefficients[k][0][node]
    }

    /// Variance of the voltage of `node` at time index `k`
    /// (`Σ_{i>0} a_i² ⟨ψ_i²⟩`).
    pub fn variance_at(&self, k: usize, node: usize) -> f64 {
        (1..self.basis.len())
            .map(|i| {
                let a = self.coefficients[k][i][node];
                a * a * self.basis.norm_squared(i)
            })
            .sum()
    }

    /// Standard deviation of the voltage of `node` at time index `k`.
    pub fn std_dev_at(&self, k: usize, node: usize) -> f64 {
        self.variance_at(k, node).sqrt()
    }

    /// The full scalar expansion of one node voltage at one time point.
    ///
    /// # Errors
    ///
    /// Propagates coefficient-length errors (cannot happen for solutions
    /// produced by this crate).
    pub fn node_series(&self, k: usize, node: usize) -> Result<PceSeries> {
        let coeffs: Vec<f64> = (0..self.basis.len())
            .map(|i| self.coefficients[k][i][node])
            .collect();
        Ok(PceSeries::from_coefficients(&self.basis, coeffs)?)
    }

    /// The time index and value of the worst (largest) mean voltage drop of a
    /// given node, measured against `vdd`.
    pub fn worst_mean_drop_of_node(&self, vdd: f64, node: usize) -> (usize, f64) {
        let mut best = (0usize, f64::NEG_INFINITY);
        for k in 0..self.times.len() {
            let drop = vdd - self.mean_at(k, node);
            if drop > best.1 {
                best = (k, drop);
            }
        }
        best
    }

    /// The node, time index and value of the worst mean voltage drop over the
    /// whole grid.
    pub fn worst_mean_drop(&self, vdd: f64) -> (usize, usize, f64) {
        let mut best = (0usize, 0usize, f64::NEG_INFINITY);
        for k in 0..self.times.len() {
            for n in 0..self.node_count {
                let drop = vdd - self.mean_at(k, n);
                if drop > best.2 {
                    best = (n, k, drop);
                }
            }
        }
        best
    }
}

/// Runs the OPERA analysis: assembles the Galerkin system for the model and
/// performs one augmented transient solve.
///
/// # Errors
///
/// Returns [`OperaError::InvalidOptions`] for invalid options and propagates
/// assembly/factorisation errors.
///
/// # Example
///
/// ```
/// use opera::stochastic::{solve, OperaOptions};
/// use opera::transient::TransientOptions;
/// use opera_grid::GridSpec;
/// use opera_variation::{StochasticGridModel, VariationSpec};
///
/// # fn main() -> Result<(), opera::OperaError> {
/// let grid = GridSpec::small_test(100).build()?;
/// let model = StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults())?;
/// let options = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
/// let solution = solve(&model, &options)?;
/// let (node, k, drop) = solution.worst_mean_drop(grid.vdd());
/// assert!(drop > 0.0);
/// assert!(solution.std_dev_at(k, node) > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn solve(model: &StochasticGridModel, options: &OperaOptions) -> Result<StochasticSolution> {
    options.validate()?;
    let basis =
        OrthogonalBasis::total_order_mixed(model.families(), model.n_vars(), options.order)?;
    let system = GalerkinSystem::assemble(model, &basis)?;
    solve_assembled(model, &system, options)
}

/// Runs the OPERA transient on an already assembled Galerkin system (useful
/// when the same system is reused with several transient or solver
/// configurations; the expansion order of `options` is ignored in favour of
/// the system's basis).
///
/// # Errors
///
/// Propagates factorisation errors and invalid transient options.
pub fn solve_assembled(
    model: &StochasticGridModel,
    system: &GalerkinSystem,
    options: &OperaOptions,
) -> Result<StochasticSolution> {
    let transient = &options.transient;
    transient.validate()?;
    match options.solver {
        AugmentedSolver::Direct => solve_direct(model, system, transient),
        AugmentedSolver::PreconditionedCg {
            tolerance,
            max_iterations,
        } => solve_iterative(model, system, transient, tolerance, max_iterations),
    }
}

/// Direct path: one sparse Cholesky (or LU) factorisation of the augmented
/// companion matrix, reused for every time step.
fn solve_direct(
    model: &StochasticGridModel,
    system: &GalerkinSystem,
    transient: &TransientOptions,
) -> Result<StochasticSolution> {
    let times = transient.time_points();
    let n = system.node_count();

    // DC initial condition: G̃ a(0) = Ũ(0).
    let u0 = system.excitation(model, 0.0);
    let a0 = match opera_sparse::CholeskyFactor::factor(system.conductance()) {
        Ok(f) => f.solve(&u0),
        Err(_) => opera_sparse::LuFactor::factor(system.conductance())?.solve(&u0),
    };

    let companion = CompanionSystem::new(
        system.conductance(),
        system.capacitance(),
        transient.time_step,
        transient.method,
    )?;

    let mut coefficients = Vec::with_capacity(times.len());
    coefficients.push(system.split_solution(&a0));
    let mut state = a0;
    let mut u_prev = u0;
    for &t in &times[1..] {
        let u_next = system.excitation(model, t);
        let next = companion.step(&state, &u_prev, &u_next);
        coefficients.push(system.split_solution(&next));
        state = next;
        u_prev = u_next;
    }
    Ok(StochasticSolution::new(
        system.basis().clone(),
        times,
        n,
        coefficients,
    ))
}

/// Block-Jacobi preconditioner for the augmented system: every basis block is
/// preconditioned with a shared factorisation of the nominal matrix, scaled
/// by `1 / ⟨ψ_i²⟩`.
struct BlockNominalPreconditioner {
    factor: opera_sparse::CholeskyFactor,
    inv_norms: Vec<f64>,
    block_size: usize,
}

impl opera_sparse::cg::Preconditioner for BlockNominalPreconditioner {
    fn apply(&self, r: &[f64]) -> Vec<f64> {
        let mut z = Vec::with_capacity(r.len());
        for (i, block) in r.chunks(self.block_size).enumerate() {
            let mut zi = self.factor.solve(block);
            for v in &mut zi {
                *v *= self.inv_norms[i];
            }
            z.extend_from_slice(&zi);
        }
        z
    }
}

/// Preconditioned CG with an initial guess: solves `A·x = b` by iterating on
/// the correction `A·δ = b − A·x₀`, with the tolerance rescaled so that the
/// overall relative residual (with respect to `‖b‖`) matches `tolerance`.
fn cg_with_guess(
    a: &opera_sparse::CsrMatrix,
    b: &[f64],
    guess: &[f64],
    preconditioner: &BlockNominalPreconditioner,
    tolerance: f64,
    max_iterations: usize,
) -> Result<Vec<f64>> {
    let mut residual = b.to_vec();
    a.matvec_acc(guess, -1.0, &mut residual);
    let norm_b = b.iter().map(|v| v * v).sum::<f64>().sqrt();
    let norm_r = residual.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm_r <= tolerance * norm_b.max(f64::MIN_POSITIVE) {
        return Ok(guess.to_vec());
    }
    let effective_tol = (tolerance * norm_b / norm_r).clamp(1e-14, 0.5);
    let correction = opera_sparse::cg::solve(
        a,
        &residual,
        preconditioner,
        opera_sparse::cg::CgOptions {
            max_iterations,
            tolerance: effective_tol,
        },
    )?;
    Ok(guess
        .iter()
        .zip(&correction.x)
        .map(|(g, d)| g + d)
        .collect())
}

/// Iterative path: conjugate gradient on the augmented companion system with
/// the block-nominal preconditioner. Only two factorisations of *nominal*
/// sized matrices are performed (one for the DC start, one for the companion
/// matrix), so the OPERA cost stays close to a single deterministic transient
/// even for very large grids.
fn solve_iterative(
    model: &StochasticGridModel,
    system: &GalerkinSystem,
    transient: &TransientOptions,
    tolerance: f64,
    max_iterations: usize,
) -> Result<StochasticSolution> {
    let times = transient.time_points();
    let n = system.node_count();
    let size = system.basis_size();
    let h = transient.time_step;
    let c_scale = match transient.method {
        crate::transient::IntegrationMethod::BackwardEuler => 1.0 / h,
        crate::transient::IntegrationMethod::Trapezoidal => 2.0 / h,
    };

    let inv_norms: Vec<f64> = (0..size)
        .map(|i| 1.0 / system.coupling().norm_squared(i))
        .collect();

    // Augmented companion matrix (for matvecs only — never factored).
    let c_over_h = system.capacitance().scaled(c_scale);
    let a_hat = system.conductance().add_scaled(&c_over_h, 1.0)?;

    // Preconditioners: nominal G (DC start) and nominal companion (stepping).
    let g_nominal = model.nominal_conductance();
    let nominal_companion =
        g_nominal.add_scaled(&model.nominal_capacitance().scaled(c_scale), 1.0)?;
    let dc_pre = BlockNominalPreconditioner {
        factor: opera_sparse::CholeskyFactor::factor(g_nominal)?,
        inv_norms: inv_norms.clone(),
        block_size: n,
    };
    let step_pre = BlockNominalPreconditioner {
        factor: opera_sparse::CholeskyFactor::factor(&nominal_companion)?,
        inv_norms,
        block_size: n,
    };

    // DC initial condition via CG on G̃ (guess: nominal DC solution in block 0).
    let u0 = system.excitation(model, 0.0);
    let mut guess = vec![0.0; n * size];
    guess[..n].copy_from_slice(&dc_pre.factor.solve(&u0[..n]));
    let a0 = cg_with_guess(
        system.conductance(),
        &u0,
        &guess,
        &dc_pre,
        tolerance,
        max_iterations,
    )?;

    let mut coefficients = Vec::with_capacity(times.len());
    coefficients.push(system.split_solution(&a0));
    let mut state = a0;
    let mut u_prev = u0;
    for &t in &times[1..] {
        let u_next = system.excitation(model, t);
        // Right-hand side of the implicit step.
        let mut rhs = vec![0.0; n * size];
        match transient.method {
            crate::transient::IntegrationMethod::BackwardEuler => {
                c_over_h.matvec_into(&state, &mut rhs);
                for (r, u) in rhs.iter_mut().zip(&u_next) {
                    *r += u;
                }
            }
            crate::transient::IntegrationMethod::Trapezoidal => {
                c_over_h.matvec_into(&state, &mut rhs);
                system.conductance().matvec_acc(&state, -1.0, &mut rhs);
                for ((r, a), b) in rhs.iter_mut().zip(&u_prev).zip(&u_next) {
                    *r += a + b;
                }
            }
        }
        let next = cg_with_guess(&a_hat, &rhs, &state, &step_pre, tolerance, max_iterations)?;
        coefficients.push(system.split_solution(&next));
        state = next;
        u_prev = u_next;
    }
    Ok(StochasticSolution::new(
        system.basis().clone(),
        times,
        n,
        coefficients,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transient::{solve_transient, TransientOptions};
    use opera_grid::GridSpec;
    use opera_variation::{StochasticGridModel, VariationSpec};

    fn small_setup() -> (opera_grid::PowerGrid, StochasticGridModel) {
        let grid = GridSpec::small_test(120).with_seed(9).build().unwrap();
        let model =
            StochasticGridModel::inter_die(&grid, &VariationSpec::paper_defaults()).unwrap();
        (grid, model)
    }

    #[test]
    fn zero_variation_reduces_to_deterministic_transient() {
        let grid = GridSpec::small_test(90).with_seed(4).build().unwrap();
        let model = StochasticGridModel::inter_die(&grid, &VariationSpec::none()).unwrap();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let opera = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let det = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        for k in 0..opera.times().len() {
            for n in 0..grid.node_count() {
                assert!(
                    (opera.mean_at(k, n) - det.voltages[k][n]).abs() < 1e-9,
                    "mean differs at time {k}, node {n}"
                );
                assert!(opera.std_dev_at(k, n) < 1e-9);
            }
        }
    }

    #[test]
    fn variation_produces_nonzero_spread_at_loaded_nodes() {
        let (grid, model) = small_setup();
        let opts = OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9));
        let sol = solve(&model, &opts).unwrap();
        let (node, k, drop) = sol.worst_mean_drop(grid.vdd());
        assert!(drop > 0.0);
        let sigma = sol.std_dev_at(k, node);
        assert!(sigma > 0.0, "expected nonzero spread at the worst node");
        // The ±3σ spread should be a sizeable fraction of the nominal drop
        // (the paper reports ≈ ±35 %), certainly above 5 % for these settings.
        assert!(3.0 * sigma / drop > 0.05, "3σ/µ0 = {}", 3.0 * sigma / drop);
    }

    #[test]
    fn mean_is_close_to_nominal_voltage() {
        // Paper: "the mean voltage drops ... with variations was more or less
        // the same as the nominal voltage drops without variations".
        let (grid, model) = small_setup();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let sol = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let det = solve_transient(
            &grid.conductance_matrix(),
            &grid.capacitance_matrix(),
            |t| grid.excitation(t),
            &topts,
        )
        .unwrap();
        let (node, k, _) = sol.worst_mean_drop(grid.vdd());
        let diff = (sol.mean_at(k, node) - det.voltages[k][node]).abs();
        assert!(
            diff / grid.vdd() < 0.01,
            "mean shift {diff} is larger than 1 % of VDD"
        );
    }

    #[test]
    fn node_series_matches_solution_statistics() {
        let (_grid, model) = small_setup();
        let sol = solve(
            &model,
            &OperaOptions::order2(TransientOptions::new(0.2e-9, 1.0e-9)),
        )
        .unwrap();
        let k = sol.times().len() - 1;
        let series = sol.node_series(k, 3).unwrap();
        assert!((series.mean() - sol.mean_at(k, 3)).abs() < 1e-14);
        assert!((series.variance() - sol.variance_at(k, 3)).abs() < 1e-16);
    }

    #[test]
    fn order_one_and_two_agree_on_the_mean_to_first_order() {
        let (_grid, model) = small_setup();
        let topts = TransientOptions::new(0.2e-9, 1.0e-9);
        let sol1 = solve(&model, &OperaOptions::with_order(1, topts)).unwrap();
        let sol2 = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let k = sol1.times().len() - 1;
        for n in (0..model.node_count()).step_by(7) {
            let d = (sol1.mean_at(k, n) - sol2.mean_at(k, n)).abs();
            assert!(d < 5e-4, "order-1 and order-2 means differ by {d}");
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let (_grid, model) = small_setup();
        let bad = OperaOptions::with_order(0, TransientOptions::new(0.1e-9, 1.0e-9));
        assert!(matches!(
            solve(&model, &bad),
            Err(OperaError::InvalidOptions { .. })
        ));
        let bad_cg = OperaOptions {
            solver: AugmentedSolver::PreconditionedCg {
                tolerance: 0.0,
                max_iterations: 10,
            },
            ..OperaOptions::order2(TransientOptions::new(0.1e-9, 1.0e-9))
        };
        assert!(bad_cg.validate().is_err());
    }

    #[test]
    fn iterative_solver_matches_direct_solver_with_trapezoidal_integration() {
        // Exercises the trapezoidal branch of the iterative stepping code.
        let (grid, model) = small_setup();
        let topts = TransientOptions {
            time_step: 0.1e-9,
            end_time: 1.0e-9,
            method: crate::transient::IntegrationMethod::Trapezoidal,
        };
        let direct = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let iterative =
            solve(&model, &OperaOptions::order2(topts).with_iterative_solver()).unwrap();
        let (node, k, _) = direct.worst_mean_drop(grid.vdd());
        assert!((direct.mean_at(k, node) - iterative.mean_at(k, node)).abs() < 1e-7 * grid.vdd());
        assert!(
            (direct.std_dev_at(k, node) - iterative.std_dev_at(k, node)).abs() < 1e-6 * grid.vdd()
        );
    }

    #[test]
    fn augmented_solver_default_is_direct() {
        assert_eq!(AugmentedSolver::default(), AugmentedSolver::Direct);
        match AugmentedSolver::preconditioned_cg() {
            AugmentedSolver::PreconditionedCg {
                tolerance,
                max_iterations,
            } => {
                assert!(tolerance > 0.0 && max_iterations > 0);
            }
            AugmentedSolver::Direct => panic!("expected the CG variant"),
        }
    }

    #[test]
    fn iterative_solver_matches_direct_solver() {
        let (grid, model) = small_setup();
        let topts = TransientOptions::new(0.1e-9, 1.0e-9);
        let direct = solve(&model, &OperaOptions::order2(topts)).unwrap();
        let iterative =
            solve(&model, &OperaOptions::order2(topts).with_iterative_solver()).unwrap();
        for k in (0..direct.times().len()).step_by(3) {
            for n in (0..direct.node_count()).step_by(9) {
                assert!(
                    (direct.mean_at(k, n) - iterative.mean_at(k, n)).abs() < 1e-7 * grid.vdd(),
                    "mean differs at ({k}, {n})"
                );
                assert!(
                    (direct.std_dev_at(k, n) - iterative.std_dev_at(k, n)).abs()
                        < 1e-6 * grid.vdd(),
                    "sigma differs at ({k}, {n})"
                );
            }
        }
    }
}
